"""Setuptools shim (keeps `pip install -e .` working offline)."""
from setuptools import setup

setup()
