"""E5 — the Section 5 merge-cost analysis.

    "consider two partitions of m members each that merge after repairs.
    This event will result in m view changes in each of the two
    partitions, admitting one new process at a time into the view.
    When in fact, a single view change is all that is really required."

We sweep m and measure, on both stacks, how many view changes the
absorption takes and how long (virtual time) the system needs to settle:

* **partitionable** (this paper's model): two established m-member
  groups, separated by a partition, heal — each process installs ONE
  merged view regardless of m;
* **Isis-style** (one-at-a-time growth): an established m-member primary
  absorbs m processes — the primary installs m successive views, one
  per admitted member.

The paper's claim is the first column staying flat at 1 while the second
grows linearly in m.
"""

from __future__ import annotations

from typing import Any

from repro.isis import isis_stack_config
from repro.bench.harness import Table
from repro.runtime.cluster import Cluster, ClusterConfig
from repro.trace.events import ViewInstallEvent

MS = [1, 2, 4, 8, 16]


def partitionable_merge(m: int) -> dict[str, Any]:
    """Two m-member groups separated at bootstrap, later healed."""
    cluster = Cluster(2 * m, config=ClusterConfig(seed=m), auto_start=False)
    left = list(range(m))
    right = list(range(m, 2 * m))
    cluster.partition([left, right])
    for site in range(2 * m):
        cluster.start_site(site)
    assert cluster.settle(timeout=800), cluster.views()
    merge_start = cluster.now
    pid0 = cluster.stack_at(0).pid
    installs_before = len(cluster.recorder.view_sequence(pid0))
    cluster.heal()
    assert cluster.settle(timeout=800), cluster.views()
    installs_after = len(cluster.recorder.view_sequence(pid0))
    return {
        "view_changes": installs_after - installs_before,
        "settle_time": cluster.now - merge_start,
    }


def isis_merge(m: int) -> dict[str, Any]:
    """An m-member primary and m blocked processes become reachable."""
    config = ClusterConfig(seed=m, stack=isis_stack_config())
    cluster = Cluster(2 * m, config=config, auto_start=False)
    left = list(range(m))
    right = list(range(m, 2 * m))
    cluster.partition([left, right])
    for site in range(2 * m):
        cluster.start_site(site)
    cluster.run_for(100.0 + 80.0 * m)  # let the primary absorb its side
    pid0 = cluster.stack_at(0).pid
    assert len(cluster.stack_at(0).view.members) == m, cluster.views()
    merge_start = cluster.now
    installs_before = len(cluster.recorder.view_sequence(pid0))
    cluster.heal()
    # Run until the primary holds everyone (no settle(): the generic
    # convergence predicate does not apply to blocked minorities).
    deadline = cluster.now + 900.0 + 150.0 * m
    while cluster.now < deadline:
        cluster.run_for(25.0)
        if len(cluster.stack_at(0).view.members) == 2 * m:
            break
    assert len(cluster.stack_at(0).view.members) == 2 * m, cluster.views()
    merged_at = cluster.now
    installs_after = len(cluster.recorder.view_sequence(pid0))
    growths = [
        ev
        for ev in cluster.recorder.view_sequence(pid0)
        if ev.time > merge_start
    ]
    return {
        "view_changes": installs_after - installs_before,
        "settle_time": merged_at - merge_start,
        "growth_installs": len(growths),
    }


def run_experiment() -> list[dict[str, Any]]:
    rows = []
    for m in MS:
        part = partitionable_merge(m)
        isis = isis_merge(m)
        rows.append(
            {
                "m": m,
                "part_changes": part["view_changes"],
                "part_time": part["settle_time"],
                "isis_changes": isis["view_changes"],
                "isis_time": isis["settle_time"],
            }
        )
    return rows


def test_e5_merge_cost(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    table = Table(
        "E5 / Section 5 — view changes to merge two m-member groups",
        [
            "m",
            "partitionable: views",
            "partitionable: settle t",
            "isis-style: views",
            "isis-style: settle t",
        ],
    )
    for row in rows:
        table.add(
            row["m"],
            row["part_changes"],
            row["part_time"],
            row["isis_changes"],
            row["isis_time"],
        )
    table.show()

    for row in rows:
        # Partitionable: one view change absorbs the whole other side
        # (allow +1 for a transient re-install on unlucky seeds).
        assert row["part_changes"] <= 2, row
        # Isis-style: at least m installs to admit m members.
        assert row["isis_changes"] >= row["m"], row
    # The gap must *grow* with m (the paper's "inordinate number").
    first, last = rows[0], rows[-1]
    assert last["isis_changes"] - last["part_changes"] > (
        first["isis_changes"] - first["part_changes"]
    )
    # And the absorption time scales with m for Isis, not for ours.
    assert last["isis_time"] > 2 * rows[1]["isis_time"] * 0.8
