"""E9 — Section 6.2: internal operations run undisturbed across view
changes under enriched views.

    "while an operation is being executed, the set of processes
    participating in it may only shrink — a new view may be delivered
    by view synchrony at arbitrary times but the composition of
    subviews and sv-sets may grow only at the will of the application.
    Therefore, algorithms can be easily designed to run undisturbed
    across view changes."

A flat-view application cannot tell whether a view change affected the
participants of its running reconciliation, so the only safe policy is
to abort and restart.  The enriched-view engine continues whenever the
processes it still waits on survive.  We drive both policies through
identical join-heavy churn (joins arrive while settlements run) and
count session restarts, continuations and total settlement work.
"""

from __future__ import annotations

from typing import Any

from repro.bench.harness import Table
from repro.core.group_object import GroupObject
from repro.core.mode_functions import AlwaysFullModeFunction
from repro.core.modes import Mode
from repro.runtime.cluster import Cluster, ClusterConfig

SEEDS = range(6)
INITIAL_SITES = 4
JOIN_WAVES = 3


class Obj(GroupObject):
    def __init__(self, continuation: bool):
        super().__init__(AlwaysFullModeFunction(), enriched_continuation=continuation)
        self.data = {}

    def snapshot_state(self):
        return dict(self.data)

    def adopt_state(self, state):
        self.data = dict(state)

    def apply_op(self, sender, op, msg_id):
        self.data[op[0]] = op[1]

    def merge_app_states(self, offers):
        merged = {}
        for offer in sorted(offers, key=lambda o: (o.version, o.sender)):
            merged.update(offer.state)
        return merged


def churn_run(continuation: bool, seed: int) -> dict[str, Any]:
    cluster = Cluster(
        INITIAL_SITES,
        app_factory=lambda pid: Obj(continuation),
        config=ClusterConfig(seed=seed),
    )
    assert cluster.settle(timeout=500)
    cluster.run_for(120)
    next_site = INITIAL_SITES
    for wave in range(JOIN_WAVES):
        # Provoke a settlement (a partition/heal) and, while it runs,
        # drop a brand-new member into the group.
        cluster.partition([[0, 1], list(range(2, next_site))])
        assert cluster.settle(timeout=600)
        cluster.run_for(120)
        cluster.heal()
        cluster.run_for(10 + (seed % 4))  # settlement is now in flight
        cluster.join(next_site)
        next_site += 1
        assert cluster.settle(timeout=800), cluster.views()
        cluster.run_for(250)
    restarted = continued = completed = 0
    for app in cluster.apps.values():
        stats = app.settlement.stats
        restarted += stats.sessions_restarted
        continued += stats.sessions_continued
        completed += stats.sessions_completed
    all_normal = all(
        app.mode is Mode.NORMAL
        for site, app in cluster.apps.items()
        if cluster.stacks[site].alive
    )
    return {
        "restarted": restarted,
        "continued": continued,
        "completed": completed,
        "all_normal": all_normal,
    }


def run_experiment() -> dict[str, Any]:
    out: dict[str, Any] = {}
    for label, continuation in (("enriched", True), ("flat", False)):
        totals = {"restarted": 0, "continued": 0, "completed": 0, "normal": 0}
        for seed in SEEDS:
            result = churn_run(continuation, seed)
            totals["restarted"] += result["restarted"]
            totals["continued"] += result["continued"]
            totals["completed"] += result["completed"]
            totals["normal"] += int(result["all_normal"])
        out[label] = totals
    return out


def test_e9_undisturbed_internal_operations(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    table = Table(
        "E9 / Section 6.2 — reconciliation sessions under join churn "
        f"({len(list(SEEDS))} seeds, {JOIN_WAVES} join waves each)",
        [
            "policy",
            "sessions restarted",
            "sessions continued",
            "sessions completed",
            "runs fully reconciled",
        ],
    )
    for label, totals in results.items():
        table.add(
            label,
            totals["restarted"],
            totals["continued"],
            totals["completed"],
            f"{totals['normal']}/{len(list(SEEDS))}",
        )
    table.show()

    enriched, flat = results["enriched"], results["flat"]
    # Both policies must eventually reconcile every run...
    assert enriched["normal"] == len(list(SEEDS))
    assert flat["normal"] == len(list(SEEDS))
    # ...but the flat policy can never continue a session across a view
    # change, while the enriched policy does, and restarts less.
    assert flat["continued"] == 0
    assert enriched["continued"] > 0
    assert enriched["restarted"] <= flat["restarted"]
