"""E2 — Section 2, Properties 2.1-2.3 (view synchrony specification).

The paper *specifies* view synchrony through Agreement, Uniqueness and
Integrity; our reproduction implements the protocol and this experiment
verifies the specification holds mechanically across adversarial runs:
random crash/recovery/partition/heal schedules with concurrent
application traffic, plus message loss and latency jitter.  The table
reports, per property, how many items each checker examined and how
many violations it found (the reproduction target is zero everywhere).
"""

from __future__ import annotations

from typing import Any

from repro.bench.harness import Table, run_with_schedule
from repro.net.latency import UniformLatency
from repro.runtime.cluster import ClusterConfig
from repro.trace.checks import check_enriched_views, check_view_synchrony
from repro.vsync.events import GroupApplication
from repro.workload.generator import RandomFaultGenerator

N_SITES = 5
SEEDS = range(10)


class Chatty(GroupApplication):
    """Multicasts a burst every few simulated seconds."""

    def bind(self, stack) -> None:
        super().bind(stack)
        self._n = 0
        stack.set_periodic(9.0, self._talk)

    def _talk(self) -> None:
        if self.stack is not None and not self.stack.is_flushing:
            self._n += 1
            self.stack.multicast(("chat", self.stack.pid.site, self._n))


def run_experiment() -> dict[str, Any]:
    totals: dict[str, dict[str, int]] = {}
    deliveries = 0
    for seed in SEEDS:
        loss = 0.03 if seed % 2 else 0.0
        gen = RandomFaultGenerator(n_sites=N_SITES, seed=seed, duration=300)
        schedule = gen.generate()
        config = ClusterConfig(
            seed=seed, loss_prob=loss, latency=UniformLatency(0.5, 2.5)
        )
        cluster = run_with_schedule(
            N_SITES,
            schedule,
            app_factory=lambda pid: Chatty(),
            config=config,
            tail=gen.settle_tail + 200,
            settle_timeout=900,
        )
        deliveries += len(cluster.recorder.deliveries())
        reports = check_view_synchrony(cluster.recorder)
        reports += check_enriched_views(cluster.recorder)
        for report in reports:
            entry = totals.setdefault(report.name, {"checked": 0, "violations": 0})
            entry["checked"] += report.checked
            entry["violations"] += len(report.violations)
    return {"totals": totals, "deliveries": deliveries}


def test_e2_view_synchrony_properties(benchmark):
    result = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    table = Table(
        "E2 / Properties 2.1-2.3 (and 6.1-6.3) under adversarial schedules "
        f"({len(list(SEEDS))} seeds, {result['deliveries']} deliveries)",
        ["property", "items checked", "violations"],
    )
    for name, entry in sorted(result["totals"].items()):
        table.add(name, entry["checked"], entry["violations"])
    table.show()

    for name, entry in result["totals"].items():
        assert entry["violations"] == 0, name
    # The run must have been substantial enough to mean something.
    assert result["totals"]["Agreement(2.1)"]["checked"] > 20
    assert result["deliveries"] > 1000
