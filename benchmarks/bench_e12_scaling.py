"""E12 (extension) — protocol cost as the group grows.

Not a claim from the paper, but the engineering context behind its
Section 5 argument: view changes are *expensive* events (the reason an
"inordinate number" of them matters).  We sweep the group size and
measure what one bootstrap convergence and one partition/heal cycle
cost in protocol messages and virtual time, for the partitionable
stack.

Expected shapes: messages per view change grow ~quadratically in the
group size (all-to-all flush traffic), while the *number* of view
changes stays flat — the partitionable model pays per change, but needs
only a constant number of them per membership event (cf. E5).
"""

from __future__ import annotations

from typing import Any

from repro.bench.harness import Table
from repro.runtime.cluster import Cluster, ClusterConfig
from repro.trace.events import ViewInstallEvent

SIZES = [2, 4, 8, 12, 16, 24]


def measure(n: int) -> dict[str, Any]:
    cluster = Cluster(n, config=ClusterConfig(seed=n))
    assert cluster.settle(timeout=1200), cluster.views()
    bootstrap_time = cluster.now
    bootstrap_msgs = cluster.network.stats.sent
    installs_before = len(list(cluster.recorder.of_type(ViewInstallEvent)))

    half = n // 2
    cluster.partition([list(range(half)), list(range(half, n))])
    assert cluster.settle(timeout=1200)
    cluster.heal()
    assert cluster.settle(timeout=1200)
    cycle_msgs = cluster.network.stats.sent - bootstrap_msgs
    installs_cycle = (
        len(list(cluster.recorder.of_type(ViewInstallEvent))) - installs_before
    )
    per_process_installs = installs_cycle / n
    return {
        "n": n,
        "bootstrap_time": bootstrap_time,
        "bootstrap_msgs": bootstrap_msgs,
        "cycle_msgs": cycle_msgs,
        "installs_per_process": per_process_installs,
    }


def run_experiment() -> list[dict[str, Any]]:
    return [measure(n) for n in SIZES]


def test_e12_protocol_scaling(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    table = Table(
        "E12 (extension) / protocol cost vs group size",
        [
            "group size",
            "bootstrap time",
            "bootstrap msgs",
            "partition+heal msgs",
            "installs per process (cycle)",
        ],
    )
    for row in rows:
        table.add(
            row["n"],
            row["bootstrap_time"],
            row["bootstrap_msgs"],
            row["cycle_msgs"],
            row["installs_per_process"],
        )
    table.show()

    # Convergence stays fast (a few heartbeat rounds) at every size.
    assert all(row["bootstrap_time"] < 120 for row in rows)
    # View-change *count* per process stays flat (about 2: split + merge,
    # plus occasional transients)...
    assert all(row["installs_per_process"] <= 5 for row in rows)
    # ...while message cost grows superlinearly with the group size.
    small, large = rows[0], rows[-1]
    ratio = large["cycle_msgs"] / max(1, small["cycle_msgs"])
    assert ratio > (large["n"] / small["n"]) * 1.5
