"""E3 — Figure 2: views, subviews and sv-sets across view changes.

Figure 2 shows a view whose subview/sv-set structure survives a
partition and a merger.  This experiment (a) replays that exact
scenario on six sites and prints the structures the way the figure
draws them, and (b) measures, across random runs, the fraction of
view transitions that preserve co-subview and co-sv-set relations
(Property 6.3) — the reproduction target is 1.0.
"""

from __future__ import annotations

from typing import Any

from repro.bench.harness import Table, run_with_schedule
from repro.runtime.cluster import Cluster, ClusterConfig
from repro.trace.checks import check_structure
from repro.workload.generator import RandomFaultGenerator

SEEDS = range(8)


def figure2_replay() -> list[tuple[str, str]]:
    """Six sites; the application groups {0,1},{2,3} into subviews of
    one sv-set and leaves {4,5} alone; then the net splits and heals."""
    stages: list[tuple[str, str]] = []
    cluster = Cluster(6, config=ClusterConfig(seed=0))
    assert cluster.settle(timeout=500)
    lead = cluster.stack_at(0)

    def snap(label: str) -> None:
        eview = lead.eview
        svs = " ".join(
            "{" + ",".join(str(p) for p in sorted(sv.members)) + "}"
            for sv in sorted(eview.structure.subviews, key=lambda s: min(s.members))
        )
        stages.append((label, f"seq={eview.seq} subviews: {svs}"))

    snap("initial view (all singletons)")
    structure = lead.eview.structure
    lead.sv_set_merge([structure.svset_of(p).ssid for p in sorted(lead.eview.members)][:4])
    cluster.run_for(15)
    structure = lead.eview.structure
    sids = [structure.subview_of(p).sid for p in sorted(lead.eview.members)]
    lead.subview_merge(sids[:2])
    cluster.run_for(15)
    lead.subview_merge([structure.subview_of(p).sid for p in sorted(lead.eview.members)][2:4])
    cluster.run_for(15)
    snap("after application merges")
    cluster.partition([[0, 1, 2, 3], [4, 5]])
    assert cluster.settle(timeout=500)
    snap("after partition {0,1,2,3} | {4,5}")
    cluster.heal()
    assert cluster.settle(timeout=500)
    snap("after repair (merged view)")
    report = check_structure(cluster.recorder)
    assert report.ok, report.violations[:5]
    return stages


def preservation_rate() -> dict[str, Any]:
    checked = violations = 0
    for seed in SEEDS:
        gen = RandomFaultGenerator(n_sites=5, seed=seed, duration=300)
        cluster = run_with_schedule(
            5, gen.generate(), config=ClusterConfig(seed=seed), tail=gen.settle_tail
        )
        report = check_structure(cluster.recorder)
        checked += report.checked
        violations += len(report.violations)
    return {"checked": checked, "violations": violations}


def run_experiment() -> dict[str, Any]:
    return {"stages": figure2_replay(), "rate": preservation_rate()}


def test_e3_structure_preservation(benchmark):
    result = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    table = Table("E3 / Figure 2 — scripted replay", ["stage", "structure at p0"])
    for label, description in result["stages"]:
        table.add(label, description)
    table.show()

    rate = result["rate"]
    preserved = 1.0 - (rate["violations"] / rate["checked"] if rate["checked"] else 0)
    table2 = Table(
        "E3 / Property 6.3 across random runs",
        ["transitions checked", "violations", "preservation rate"],
    )
    table2.add(rate["checked"], rate["violations"], preserved)
    table2.show()

    # The merged view must preserve the application's groupings intact
    # across the partition/repair, exactly as Figure 2 draws it: the
    # merged subviews {0,1} and {2,3} survive, the never-merged 4 and 5
    # stay singletons.
    final_stage = result["stages"][-1][1].replace(" ", "")
    for group in ("{p0.0,p1.0}", "{p2.0,p3.0}", "{p4.0}", "{p5.0}"):
        assert group in final_stage, final_stage
    assert rate["violations"] == 0
    assert rate["checked"] > 50