"""E6 — Sections 4 & 6.2: classifying the shared-state problem locally.

The paper's central claim pair:

* with **flat views**, a process entering S-mode "is not able to
  distinguish between a state transfer or a state creation problem" —
  its local information admits several diagnoses (the Section 6.2 lock
  example's scenarios (i), (ii), (iii) all look alike);
* with **enriched views**, the same process classifies the situation
  exactly by inspecting subviews and sv-sets.

Part 1 replays the lock-manager scenarios (i)/(ii)/(iii) and prints
what each classifier concludes.  Part 2 runs randomized fault schedules
over the majority lock manager and scores, for every S-mode entry
against the omniscient ground truth: how often the flat candidate set
is ambiguous (>1 label) vs how often the enriched verdict is exactly
right.
"""

from __future__ import annotations

from typing import Any

from repro.apps.lock_manager import MajorityLockManager
from repro.bench.harness import Table, run_with_schedule
from repro.core.classify import classify_enriched, classify_flat, ground_truth
from repro.core.cuts import cut_at_install
from repro.evs.eview import EView, EViewStructure, Subview, SvSet
from repro.gms.view import View
from repro.runtime.cluster import ClusterConfig
from repro.trace.events import EViewChangeEvent
from repro.types import ProcessId, SubviewId, SvSetId, ViewId
from repro.workload.generator import RandomFaultGenerator

N_SITES = 5
SEEDS = range(10)


def majority(members) -> bool:
    return 2 * len(members) > N_SITES


def _eview(groups, svset_grouping=None) -> EView:
    epoch = 10
    subviews = tuple(
        Subview(SubviewId(epoch, ProcessId(g[0]), i), frozenset(ProcessId(s) for s in g))
        for i, g in enumerate(groups)
    )
    if svset_grouping is None:
        svset_grouping = [[i] for i in range(len(subviews))]
    svsets = tuple(
        SvSet(
            SvSetId(epoch, ProcessId(groups[idxs[0]][0]), i),
            frozenset(subviews[j].sid for j in idxs),
        )
        for i, idxs in enumerate(svset_grouping)
    )
    members = frozenset(p for sv in subviews for p in sv.members)
    return EView(View(ViewId(epoch, min(members)), members), EViewStructure(subviews, svsets))


def scripted_scenarios() -> list[dict[str, Any]]:
    """The three §6.2 scenarios, from the view of a process that was in
    R-mode and now installs a majority view."""
    scenarios = [
        (
            "(i) majority survived elsewhere",
            _eview([(0, 1, 2), (3,)]),
            "transfer",
        ),
        (
            "(ii) creation was in progress",
            _eview([(0,), (1,), (2,), (3,)], svset_grouping=[[0, 1, 2], [3]]),
            "creation",
        ),
        (
            "(iii) majority reborn from scratch",
            _eview([(0,), (1,), (2,), (3,)]),
            "creation",
        ),
    ]
    rows = []
    for label, eview, truth in scenarios:
        flat = classify_flat("R", len(eview.members), exclusive_full=True)
        enriched = classify_enriched(eview, majority)
        detail = enriched.label
        if enriched.label == "creation":
            detail += (
                " (in progress)" if enriched.in_progress_svset else " (from scratch)"
            )
        rows.append(
            {
                "scenario": label,
                "truth": truth,
                "flat": sorted(flat),
                "enriched": detail,
                "flat_ambiguous": len(flat) > 1,
                "enriched_exact": enriched.label == truth,
            }
        )
    return rows


def randomized_score() -> dict[str, Any]:
    """Aggregate the shared-state problem log over random runs using
    the library's analysis module (repro.analysis)."""
    from repro.analysis import diagnose_run

    entries = []
    for seed in SEEDS:
        gen = RandomFaultGenerator(n_sites=N_SITES, seed=seed, duration=300)
        cluster = run_with_schedule(
            N_SITES,
            gen.generate(),
            app_factory=lambda pid: MajorityLockManager(range(N_SITES)),
            config=ClusterConfig(seed=seed),
            tail=gen.settle_tail + 150,
        )
        entries.extend(diagnose_run(cluster.recorder, majority))
    return {
        "events": len(entries),
        "flat_exact": sum(e.flat_exact for e in entries),
        "enriched_exact": sum(e.enriched_exact for e in entries),
        "avg_flat_candidates": (
            sum(len(e.flat_candidates) for e in entries) / max(1, len(entries))
        ),
    }


def run_experiment() -> dict[str, Any]:
    return {"scripted": scripted_scenarios(), "random": randomized_score()}


def test_e6_local_classification(benchmark):
    result = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    table = Table(
        "E6 / Section 6.2 scenarios (i)-(iii): what each classifier concludes",
        ["scenario", "ground truth", "flat-view candidates", "enriched verdict"],
    )
    for row in result["scripted"]:
        table.add(row["scenario"], row["truth"], ",".join(row["flat"]), row["enriched"])
    table.show()

    random_part = result["random"]
    table2 = Table(
        "E6 / randomized lock-manager runs: exact classification rate",
        [
            "S-mode entries",
            "flat exact",
            "enriched exact",
            "avg flat candidates",
        ],
    )
    table2.add(
        random_part["events"],
        f"{random_part['flat_exact']}/{random_part['events']}",
        f"{random_part['enriched_exact']}/{random_part['events']}",
        random_part["avg_flat_candidates"],
    )
    table2.show()

    # Scripted claims: flat is ambiguous in all three; enriched nails each.
    for row in result["scripted"]:
        assert row["flat_ambiguous"], row
        assert row["enriched_exact"], row
    # Cases (ii) and (iii) produce the same label but different advice.
    assert "(in progress)" in result["scripted"][1]["enriched"]
    assert "(from scratch)" in result["scripted"][2]["enriched"]
    # Randomized: enriched strictly beats flat and is near-perfect.
    assert random_part["events"] >= 20
    assert random_part["enriched_exact"] > random_part["flat_exact"]
    assert random_part["enriched_exact"] / random_part["events"] >= 0.9
    assert random_part["avg_flat_candidates"] > 1.5
