"""E8 — Section 5's state-transfer discussion.

    "if the application involved very large amounts of data ... the
    strategy of blocking view installations while state transfer is in
    progress might be infeasible.  In such a situation, it will be
    desirable to split the state into two parts: a (small) piece that
    needs to be transferred in synchrony with the join event; another
    (large) piece that can be transferred concurrently with application
    activity in the new view."

We sweep the application state size (in transfer chunks) and measure,
for a join into an established group:

* **blocking (Isis tool)**: how long the pending view is withheld —
  this is unavailability for the *whole group* and must grow linearly
  with the state size;
* **two-piece**: how long until the view could install (one small-piece
  round trip — constant), and separately how long until the joiner is
  fully current (linear, but off the critical path).
"""

from __future__ import annotations

from typing import Any

from repro.bench.harness import Table
from repro.core.state_transfer import TAck, TChunk, TSmallPiece, TwoPieceTransfer
from repro.isis import isis_stack_config
from repro.runtime.cluster import Cluster, ClusterConfig

SIZES = [1, 10, 40, 100, 200]


def blocking_join_latency(size: int) -> float:
    """Average time the Isis tool blocks a joining view change."""
    config = ClusterConfig(
        seed=size, stack=isis_stack_config(blocking_transfer=True, size_of=lambda app: size)
    )
    cluster = Cluster(3, config=config)
    cluster.run_for(1200 + 6 * size)
    agreement = cluster.stack_at(0).membership
    tool = agreement.transfer_tool
    assert tool is not None and tool.transfers_completed >= 2, (
        tool.transfers_started,
        tool.transfers_completed,
    )
    return tool.blocked_time / tool.transfers_completed


def two_piece_latencies(size: int) -> tuple[float, float]:
    """(time to small piece, time to full sync) for a two-piece
    transfer between two established processes."""
    cluster = Cluster(2, config=ClusterConfig(seed=size))
    assert cluster.settle(timeout=500)
    donor, joiner = cluster.stack_at(0), cluster.stack_at(1)
    marks: dict[str, float] = {}

    from repro.core.state_transfer import ChunkReceiver

    receiver = ChunkReceiver(
        joiner, on_complete=lambda _: marks.setdefault("full", cluster.now)
    )

    def joiner_direct(src, payload):
        if isinstance(payload, TSmallPiece):
            marks.setdefault("small", cluster.now)
        elif isinstance(payload, TChunk):
            receiver.on_chunk(src, payload)

    transfer = TwoPieceTransfer(
        donor, joiner.pid, small={"meta": True}, large_chunks=[0] * size
    )
    donor.app.on_direct = lambda src, p: (
        transfer.sender.on_ack(p) if isinstance(p, TAck) else None
    )
    joiner.app.on_direct = joiner_direct
    start = cluster.now
    transfer.start()
    cluster.run_for(50 + 4 * size)
    return marks["small"] - start, marks["full"] - start


def run_experiment() -> list[dict[str, Any]]:
    rows = []
    for size in SIZES:
        blocking = blocking_join_latency(size)
        small, full = two_piece_latencies(size)
        rows.append(
            {
                "size": size,
                "blocking_install": blocking,
                "two_piece_install": small,
                "two_piece_full": full,
            }
        )
    return rows


def test_e8_blocking_vs_two_piece_transfer(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    table = Table(
        "E8 / Section 5 — state-transfer discipline vs state size (chunks)",
        [
            "state size",
            "blocking: view withheld",
            "two-piece: view-ready after",
            "two-piece: fully current after",
        ],
    )
    for row in rows:
        table.add(
            row["size"],
            row["blocking_install"],
            row["two_piece_install"],
            row["two_piece_full"],
        )
    table.show()

    first, last = rows[0], rows[-1]
    # Blocking unavailability grows with state size (roughly linearly).
    assert last["blocking_install"] > 20 * first["blocking_install"] * 0.5
    # The two-piece view-ready latency is flat: one message, any size.
    assert last["two_piece_install"] <= first["two_piece_install"] * 1.5 + 1.0
    # But the full catch-up is linear for both disciplines: the
    # two-piece trick moves it off the critical path, it does not
    # make the bytes cheaper.
    assert last["two_piece_full"] > 20 * max(1.0, first["two_piece_full"]) * 0.5
    # Crossover: for tiny state, blocking is fine; for large state the
    # blocked window dwarfs the two-piece install latency.
    assert last["blocking_install"] > 10 * last["two_piece_install"]
