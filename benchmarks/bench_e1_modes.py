"""E1 — Figure 1: the mode-transition diagram.

Regenerates, from live executions under random fault schedules, the
transition matrix of the three-mode automaton and checks it is exactly
the six labelled edges of Figure 1 (plus the initial Join pseudo-edge).
Every one of the six edges must actually be exercised, including the
S -> S Reconfigure that models overlapping reconstruction instances.
"""

from __future__ import annotations

from repro.analysis import FIGURE_1_EDGES, TransitionMatrix, transition_matrix
from repro.apps.replicated_file import ReplicatedFile
from repro.bench.harness import Table, run_with_schedule
from repro.runtime.cluster import ClusterConfig
from repro.workload.generator import RandomFaultGenerator

N_SITES = 5
SEEDS = range(12)


def run_experiment() -> dict[tuple[str, str, str], int]:
    matrix = TransitionMatrix()
    votes = {s: 1 for s in range(N_SITES)}
    for seed in SEEDS:
        gen = RandomFaultGenerator(n_sites=N_SITES, seed=seed, duration=350)
        schedule = gen.generate()
        cluster = run_with_schedule(
            N_SITES,
            schedule,
            app_factory=lambda pid: ReplicatedFile(votes),
            config=ClusterConfig(seed=seed),
            tail=gen.settle_tail,
        )
        cluster.run_for(200)
        matrix = matrix.merge(transition_matrix(cluster.recorder))
    return matrix.counts


def test_e1_mode_transitions(benchmark):
    counts = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    table = Table(
        "E1 / Figure 1 — observed mode transitions "
        f"({N_SITES} sites, {len(list(SEEDS))} random schedules)",
        ["transition", "edge", "count", "in Figure 1?"],
    )
    for (label, old, new), count in sorted(counts.items()):
        edge = f"{old or '-'} -> {new}"
        legal = (label, old, new) in FIGURE_1_EDGES or label == "Join"
        table.add(label, edge, count, "yes" if legal else "NO")
    table.show()

    observed_edges = {k for k in counts if k[0] != "Join"}
    # Soundness: nothing outside Figure 1 ever happens.
    assert observed_edges <= FIGURE_1_EDGES, observed_edges - FIGURE_1_EDGES
    # Coverage: the schedules exercised every edge of the figure.
    missing = FIGURE_1_EDGES - observed_edges
    assert not missing, f"edges never exercised: {missing}"
