"""E4 — Figure 3 and Properties 6.1/6.2: e-view changes within a view.

Figure 3 shows two e-view changes inside one view: an SV-SetMerge of
three sv-sets followed by a SubviewMerge of two of the subviews.  This
experiment replays that sequence and prints the three structures, then
stresses the ordering properties with concurrent merge-request storms
from every member: all members must apply the identical totally
ordered sequence of changes (6.1), and no multicast may overtake an
e-view change (6.2).
"""

from __future__ import annotations

from typing import Any

from repro.bench.harness import Table
from repro.runtime.cluster import Cluster, ClusterConfig
from repro.trace.checks import (
    check_causal_order,
    check_cut_consistency,
    check_total_order,
)
from repro.trace.events import EViewChangeEvent


def figure3_replay() -> list[tuple[str, str]]:
    """Three processes, three sv-sets -> one; then two subviews -> one."""
    stages = []
    cluster = Cluster(3, config=ClusterConfig(seed=0))
    assert cluster.settle(timeout=500)
    lead = cluster.stack_at(0)

    def snap(label):
        eview = lead.eview
        svs = " ".join(
            "{" + ",".join(str(p) for p in sorted(sv.members)) + "}"
            for sv in sorted(eview.structure.subviews, key=lambda s: min(s.members))
        )
        stages.append(
            (label, f"seq={eview.seq} svsets={len(eview.structure.svsets)} subviews: {svs}")
        )

    snap("view v (three singleton sv-sets)")
    lead.sv_set_merge([ss.ssid for ss in lead.eview.structure.svsets])
    cluster.run_for(15)
    snap("after SV-SetMerge")
    structure = lead.eview.structure
    sids = sorted((sv.sid for sv in structure.subviews), key=str)[:2]
    lead.subview_merge(sids)
    cluster.run_for(15)
    snap("after SubviewMerge")
    return stages


def merge_storm(seed: int) -> dict[str, Any]:
    """Every member fires merge requests concurrently; measure order."""
    cluster = Cluster(6, config=ClusterConfig(seed=seed))
    assert cluster.settle(timeout=500)
    # Round 1: everyone asks to merge a different pair of sv-sets.
    for round_no in range(3):
        for site in range(6):
            stack = cluster.stack_at(site)
            structure = stack.eview.structure
            ssids = sorted((ss.ssid for ss in structure.svsets), key=str)
            if len(ssids) >= 2:
                pick = [ssids[site % len(ssids)], ssids[(site + 1) % len(ssids)]]
                if pick[0] != pick[1]:
                    stack.sv_set_merge(pick)
            # Interleave multicasts so deliveries race the e-view
            # changes and the 6.2 gate actually gets exercised.
            stack.multicast(("storm", round_no, site))
        cluster.run_for(25)
    # Then merge subviews inside the (by now single) sv-set.
    lead = cluster.stack_at(0)
    structure = lead.eview.structure
    if len(structure.svsets) == 1 and len(structure.subviews) >= 2:
        lead.subview_merge([sv.sid for sv in structure.subviews])
        cluster.run_for(25)
    total = check_total_order(cluster.recorder)
    causal = check_causal_order(cluster.recorder)
    cuts = check_cut_consistency(cluster.recorder)
    applied = max(
        (e.eview_seq for e in cluster.recorder.of_type(EViewChangeEvent)),
        default=0,
    )
    return {
        "changes": applied,
        "total_checked": total.checked,
        "total_violations": len(total.violations),
        "causal_checked": causal.checked,
        "causal_violations": len(causal.violations) + len(cuts.violations),
        "cut_checked": cuts.checked,
    }


def run_experiment() -> dict[str, Any]:
    storms = [merge_storm(seed) for seed in range(6)]
    return {"stages": figure3_replay(), "storms": storms}


def test_e4_eview_change_ordering(benchmark):
    result = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    table = Table("E4 / Figure 3 — scripted replay", ["stage", "structure at p0"])
    for label, description in result["stages"]:
        table.add(label, description)
    table.show()

    table2 = Table(
        "E4 / Properties 6.1 (Total Order) & 6.2 (Causal Order) under merge storms",
        ["seed", "max e-view seq", "6.1 checked", "6.1 viol", "6.2 checked", "6.2 viol"],
    )
    for seed, storm in enumerate(result["storms"]):
        table2.add(
            seed,
            storm["changes"],
            storm["total_checked"],
            storm["total_violations"],
            storm["causal_checked"],
            storm["causal_violations"],
        )
    table2.show()

    # Figure 3 shape: seq 0 -> 1 (sv-sets merged) -> 2 (two subviews merged).
    assert "seq=1" in result["stages"][1][1]
    assert "seq=2" in result["stages"][2][1]
    assert "{p0.0,p1.0}" in result["stages"][2][1].replace(" ", "")
    for storm in result["storms"]:
        assert storm["total_violations"] == 0
        assert storm["causal_violations"] == 0
        assert storm["changes"] >= 2  # the storm really sequenced merges
        assert storm["causal_checked"] > 50  # deliveries raced the changes
        assert storm["cut_checked"] >= storm["changes"]  # HB cuts verified
