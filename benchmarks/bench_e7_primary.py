"""E7 — Section 4: "in applications that are structured around the
primary partition paradigm, state merging can never arise since primary
partitions are totally ordered and, therefore, there can never be more
than one cluster in S_N."

We histogram the number of S_N clusters at every installed view, for
three configurations driven by identical partition/heal schedules:

* partitionable stack + always-available object (weak consistency:
  every partition keeps serving) — multi-cluster events MUST occur;
* partitionable stack + majority-quorum object — quorum intersection
  already keeps S_N to one cluster (at most one concurrent FULL view);
* Isis-style primary-partition stack + majority object — merging is
  impossible *by construction*, the paper's claim.

The flip side of the claim is also measured: the primary-partition run
pays with availability — the minority performs no operations at all.
"""

from __future__ import annotations

from typing import Any

from repro.bench.harness import Table
from repro.core.group_object import GroupObject
from repro.core.classify import ground_truth
from repro.core.mode_functions import (
    AlwaysFullModeFunction,
    DynamicPrimaryModeFunction,
    StaticMajorityModeFunction,
)
from repro.isis import isis_stack_config
from repro.runtime.cluster import Cluster, ClusterConfig

N_SITES = 5
SEEDS = range(5)


class Obj(GroupObject):
    def __init__(self, fn):
        super().__init__(fn)
        self.data = {}

    def snapshot_state(self):
        return dict(self.data)

    def adopt_state(self, state):
        self.data = dict(state)

    def apply_op(self, sender, op, msg_id):
        self.data[op[0]] = op[1]

    def merge_app_states(self, offers):
        merged = {}
        for offer in sorted(offers, key=lambda o: (o.version, o.sender)):
            merged.update(offer.state)
        return merged


def drive(cluster: Cluster, seed: int) -> None:
    """A partition/heal cycle with writes wherever writes are possible."""
    cluster.run_for(250)
    groups = ([0, 1, 2], [3, 4]) if seed % 2 else ([0, 1], [2, 3, 4])
    cluster.partition(groups)
    cluster.run_for(250)
    for site in range(N_SITES):
        app = cluster.apps[site]
        if app.can_submit((f"k{site}", seed)):
            app.submit_op((f"k{site}", seed))
    cluster.run_for(60)
    cluster.heal()
    cluster.run_for(400)


def cluster_histogram(kind: str, seed: int) -> dict[str, Any]:
    if kind == "partitionable+weak":
        config = ClusterConfig(seed=seed)
        factory = lambda pid: Obj(AlwaysFullModeFunction())
    elif kind == "partitionable+quorum":
        config = ClusterConfig(seed=seed)
        factory = lambda pid: Obj(StaticMajorityModeFunction(range(N_SITES)))
    else:  # isis: primary-aware apps block outside the primary
        config = ClusterConfig(seed=seed, stack=isis_stack_config())
        factory = lambda pid: Obj(DynamicPrimaryModeFunction(range(N_SITES)))
    cluster = Cluster(N_SITES, app_factory=factory, config=config)
    drive(cluster, seed)
    histogram: dict[int, int] = {}
    ops = 0
    for view_id in cluster.recorder.installed_views():
        truth = ground_truth(cluster.recorder, view_id)
        clusters = len(truth.clusters)
        histogram[clusters] = histogram.get(clusters, 0) + 1
    ops = sum(app.ops_applied for app in cluster.apps.values())
    return {"histogram": histogram, "ops": ops}


def run_experiment() -> dict[str, Any]:
    results: dict[str, Any] = {}
    for kind in ("partitionable+weak", "partitionable+quorum", "isis+quorum"):
        merged: dict[int, int] = {}
        ops = 0
        for seed in SEEDS:
            out = cluster_histogram(kind, seed)
            for clusters, count in out["histogram"].items():
                merged[clusters] = merged.get(clusters, 0) + count
            ops += out["ops"]
        results[kind] = {"histogram": merged, "ops": ops}
    return results


def test_e7_primary_partition_excludes_merging(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    table = Table(
        "E7 / S_N cluster count at installed views "
        f"({N_SITES} sites, {len(list(SEEDS))} partition/heal cycles)",
        ["configuration", "0 clusters", "1 cluster", ">=2 clusters", "ops applied"],
    )
    for kind, data in results.items():
        h = data["histogram"]
        multi = sum(v for k, v in h.items() if k >= 2)
        table.add(kind, h.get(0, 0), h.get(1, 0), multi, data["ops"])
    table.show()

    weak = results["partitionable+weak"]["histogram"]
    quorum = results["partitionable+quorum"]["histogram"]
    isis = results["isis+quorum"]["histogram"]

    # Weak-consistency partitionable apps DO hit state merging.
    assert sum(v for k, v in weak.items() if k >= 2) > 0
    # Quorum exclusivity keeps S_N to at most one cluster...
    assert sum(v for k, v in quorum.items() if k >= 2) == 0
    # ...and the primary-partition baseline can never produce one either.
    assert sum(v for k, v in isis.items() if k >= 2) == 0
    # The price of the primary partition (Section 5): strictly less
    # progress than the weak-consistency configuration.
    assert results["isis+quorum"]["ops"] < results["partitionable+weak"]["ops"]
