"""E11 (extension) — the availability trade-off, quantified.

The paper argues the trade-off qualitatively: the primary-partition
model buys freedom from state merging at the price of "the inability to
support applications with weak consistency requirements that could make
progress in multiple concurrent partitions" (Section 5).  This
extension experiment puts numbers on it: identical partition-heavy
churn, three configurations, and we sample every process at a fixed
cadence asking *can you serve an external operation right now?*

Expected shape: weak-consistency objects over the partitionable model
stay available almost everywhere; quorum-gated objects (both stacks)
lose the minority during partitions and sit well below.  The two
quorum-gated configurations land close together on this workload — the
baseline's real extra price shows up as *absorption latency* (E5) and
lost operations (E7), not steady-state churn availability.
"""

from __future__ import annotations

from typing import Any

from repro.bench.harness import Table
from repro.core.group_object import GroupObject
from repro.core.mode_functions import (
    AlwaysFullModeFunction,
    DynamicPrimaryModeFunction,
    StaticMajorityModeFunction,
)
from repro.core.modes import Mode
from repro.isis import isis_stack_config
from repro.runtime.cluster import Cluster, ClusterConfig

N_SITES = 5
SEEDS = range(4)
SAMPLE_EVERY = 10.0


class Obj(GroupObject):
    def __init__(self, fn):
        super().__init__(fn)
        self.data = {}

    def snapshot_state(self):
        return dict(self.data)

    def adopt_state(self, state):
        self.data = dict(state)

    def apply_op(self, sender, op, msg_id):
        self.data[op[0]] = op[1]

    def merge_app_states(self, offers):
        merged = {}
        for offer in sorted(offers, key=lambda o: (o.version, o.sender)):
            merged.update(offer.state)
        return merged


def measure(kind: str, seed: int) -> dict[str, Any]:
    if kind == "partitionable+weak":
        config = ClusterConfig(seed=seed)
        factory = lambda pid: Obj(AlwaysFullModeFunction())
    elif kind == "partitionable+quorum":
        config = ClusterConfig(seed=seed)
        factory = lambda pid: Obj(StaticMajorityModeFunction(range(N_SITES)))
    else:
        config = ClusterConfig(seed=seed, stack=isis_stack_config())
        factory = lambda pid: Obj(DynamicPrimaryModeFunction(range(N_SITES)))
    cluster = Cluster(N_SITES, app_factory=factory, config=config)
    cluster.run_for(250)

    samples = 0
    available = 0

    def sample() -> None:
        nonlocal samples, available
        for site in range(N_SITES):
            stack = cluster.stacks.get(site)
            if stack is None or not stack.alive:
                continue
            samples += 1
            if cluster.apps[site].mode is Mode.NORMAL:
                available += 1

    plan = [
        ("partition", [[0, 1, 2], [3, 4]]),
        ("heal", None),
        ("partition", [[0, 1], [2, 3, 4]]),
        ("heal", None),
    ]
    for action, groups in plan:
        for _ in range(20):
            cluster.run_for(SAMPLE_EVERY)
            sample()
        if action == "partition":
            cluster.partition(groups)
        else:
            cluster.heal()
    for _ in range(30):
        cluster.run_for(SAMPLE_EVERY)
        sample()
    return {"availability": available / samples, "samples": samples}


def run_experiment() -> dict[str, Any]:
    out: dict[str, Any] = {}
    for kind in ("partitionable+weak", "partitionable+quorum", "isis+primary"):
        rates = [measure(kind, seed) for seed in SEEDS]
        out[kind] = {
            "availability": sum(r["availability"] for r in rates) / len(rates),
            "samples": sum(r["samples"] for r in rates),
        }
    return out


def test_e11_availability_tradeoff(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    table = Table(
        "E11 (extension) / process-time availability under partition churn",
        ["configuration", "availability", "samples"],
    )
    for kind, data in results.items():
        table.add(kind, data["availability"], data["samples"])
    table.show()

    weak = results["partitionable+weak"]["availability"]
    quorum = results["partitionable+quorum"]["availability"]
    isis = results["isis+primary"]["availability"]
    # The paper's ordering: weak-consistency progress everywhere beats
    # every quorum-gated configuration.
    assert weak > quorum and weak > isis
    assert weak > 0.9  # weak consistency serves through partitions
    assert quorum < 0.9 and isis < 0.9  # the majority gate visibly pays
