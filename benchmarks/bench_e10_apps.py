"""E10 — Section 3's example group objects keep their invariants.

The paper states the correctness criteria for its two motivating
objects; Section 6.2 adds the lock manager.  This experiment drives all
three through randomized fault schedules with client traffic and
verifies the stated criteria on the recorded executions:

* **replicated file** — "with respect to write operations, the group
  object should behave exactly as if there were only one copy of the
  file; with respect to read operations, it is allowable to return
  stale data": every committed write is durable (the final converged
  value of a file is never older than its newest committed write), and
  all replicas converge to identical contents;
* **parallel-lookup database** — the division of responsibility is
  exact in every settled view ("some portion of the database not being
  searched at all or being searched multiple times" never happens), and
  completed lookups return exactly the matching records;
* **lock manager** — at most one process holds the write lock at any
  instant, across all partitions.
"""

from __future__ import annotations

from typing import Any

from repro.apps.lock_manager import MajorityLockManager
from repro.apps.replicated_db import ParallelLookupDatabase
from repro.apps.replicated_file import ReplicatedFile
from repro.bench.harness import Table, run_with_schedule
from repro.core.modes import Mode
from repro.runtime.cluster import Cluster, ClusterConfig
from repro.workload.generator import RandomFaultGenerator

N_SITES = 5
SEEDS = range(5)


def file_run(seed: int) -> dict[str, Any]:
    votes = {s: 1 for s in range(N_SITES)}
    gen = RandomFaultGenerator(n_sites=N_SITES, seed=seed, duration=250)
    cluster = Cluster(
        N_SITES,
        app_factory=lambda pid: ReplicatedFile(votes),
        config=ClusterConfig(seed=seed),
    )
    schedule = gen.generate()
    schedule.arm(cluster.scheduler, cluster)
    committed: dict[str, list] = {}
    writes = 0
    deadline = schedule.horizon + gen.settle_tail
    rng_names = ["a", "b", "c"]
    step = 0
    while cluster.now < deadline:
        cluster.run_for(20)
        step += 1
        for site in range(N_SITES):
            stack = cluster.stacks.get(site)
            if stack is None or not stack.alive:
                continue
            app = cluster.apps[site]
            name = rng_names[(site + step) % len(rng_names)]
            handle = app.write(name, f"{seed}-{site}-{step}")
            if handle.msg_id is not None:
                committed.setdefault(name, []).append(handle)
                writes += 1
    cluster.settle(timeout=700)
    cluster.run_for(400)
    cluster.settle(timeout=400)
    live_apps = [
        cluster.apps[s] for s in cluster.apps if cluster.stacks[s].alive
    ]
    listings = [app.listing() for app in live_apps]
    converged = all(listing == listings[0] for listing in listings)
    # Durability of committed writes: per file, the surviving stamp is
    # at least the newest committed stamp.
    durable = True
    reference = live_apps[0]
    for name, handles in committed.items():
        done = [h for h in handles if h.status == "committed"]
        if not done:
            continue
        newest = max(h.msg_id for h in done)
        entry = reference.files.get(name)
        if entry is None or entry[1] < newest:
            durable = False
    committed_count = sum(
        1 for handles in committed.values() for h in handles if h.status == "committed"
    )
    return {
        "writes": writes,
        "committed": committed_count,
        "converged": converged,
        "durable": durable,
    }


def db_run(seed: int) -> dict[str, Any]:
    predicates = {"all": lambda k, v: True}
    gen = RandomFaultGenerator(n_sites=N_SITES, seed=seed + 100, duration=250)
    cluster = run_with_schedule(
        N_SITES,
        gen.generate(),
        app_factory=lambda pid: ParallelLookupDatabase(predicates),
        config=ClusterConfig(seed=seed),
        tail=gen.settle_tail + 250,
    )
    cluster.run_for(250)
    cluster.settle(timeout=500)
    live = [s for s in cluster.apps if cluster.stacks[s].alive]
    # Insert from everyone, then check partition exactness + lookups.
    for site in live:
        if cluster.apps[site].can_submit(("k", site)):
            cluster.apps[site].insert(f"k{site}", site)
    cluster.run_for(40)
    slices = [
        cluster.apps[s].responsibility()
        for s in live
        if cluster.apps[s].mode is Mode.NORMAL
    ]
    union = set().union(*slices) if slices else set()
    exact = union == set(range(64)) and sum(len(s) for s in slices) == 64
    handle = cluster.apps[live[0]].lookup("all")
    cluster.run_for(60)
    complete = handle.status == "complete"
    expected = {
        (k, v) for k, v in cluster.apps[live[0]].records.items()
    }
    correct = not complete or handle.results == expected
    return {"exact_partition": exact, "lookup_ok": complete and correct}


def lock_run(seed: int) -> dict[str, Any]:
    gen = RandomFaultGenerator(n_sites=N_SITES, seed=seed + 200, duration=250)
    cluster = Cluster(
        N_SITES,
        app_factory=lambda pid: MajorityLockManager(range(N_SITES)),
        config=ClusterConfig(seed=seed),
    )
    schedule = gen.generate()
    schedule.arm(cluster.scheduler, cluster)
    deadline = schedule.horizon + gen.settle_tail
    violations = 0
    grants = 0
    while cluster.now < deadline:
        cluster.run_for(15)
        holders = {
            app.holder
            for site, app in cluster.apps.items()
            if cluster.stacks[site].alive and app.holder is not None
            and app.mode is Mode.NORMAL
        }
        if len(holders) > 1:
            violations += 1
        for site, app in cluster.apps.items():
            stack = cluster.stacks.get(site)
            if stack is None or not stack.alive:
                continue
            if app.mode is Mode.NORMAL:
                if app.i_hold_lock():
                    app.release()
                else:
                    app.acquire()
    grants = sum(
        app.grants for site, app in cluster.apps.items()
        if cluster.stacks[site].alive
    )
    return {"violations": violations, "grants": grants}


def run_experiment() -> dict[str, Any]:
    files = [file_run(seed) for seed in SEEDS]
    dbs = [db_run(seed) for seed in SEEDS]
    locks = [lock_run(seed) for seed in SEEDS]
    return {"file": files, "db": dbs, "lock": locks}


def test_e10_application_invariants(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    table = Table(
        f"E10 / example-object invariants under random faults ({len(list(SEEDS))} seeds each)",
        ["object", "criterion", "result"],
    )
    files, dbs, locks = results["file"], results["db"], results["lock"]
    total_writes = sum(r["writes"] for r in files)
    total_committed = sum(r["committed"] for r in files)
    table.add(
        "replicated file",
        "replicas converge to identical contents",
        f"{sum(r['converged'] for r in files)}/{len(files)} runs",
    )
    table.add(
        "replicated file",
        f"committed writes durable ({total_committed}/{total_writes} committed)",
        f"{sum(r['durable'] for r in files)}/{len(files)} runs",
    )
    table.add(
        "parallel-lookup db",
        "responsibility partition exact (no gap/overlap)",
        f"{sum(r['exact_partition'] for r in dbs)}/{len(dbs)} runs",
    )
    table.add(
        "parallel-lookup db",
        "completed lookups return exactly the matches",
        f"{sum(r['lookup_ok'] for r in dbs)}/{len(dbs)} runs",
    )
    total_grants = sum(r["grants"] for r in locks)
    table.add(
        "lock manager",
        f"at most one holder system-wide ({total_grants} grants)",
        f"{sum(r['violations'] == 0 for r in locks)}/{len(locks)} runs",
    )
    table.show()

    assert all(r["converged"] for r in files)
    assert all(r["durable"] for r in files)
    assert total_committed > 50
    assert all(r["exact_partition"] for r in dbs)
    assert all(r["lookup_ok"] for r in dbs)
    assert all(r["violations"] == 0 for r in locks)
    assert total_grants > 30
