"""Ablations — which mechanism carries which guarantee.

DESIGN.md calls out three load-bearing design choices; each ablation
disables exactly one of them and shows the corresponding paper property
actually fail, while the guarded configuration stays clean on the same
workload:

* **A1 — the e-view delivery gate** (messages carry the sender's e-view
  sequence number; receivers delay past-the-cut deliveries).  Without
  it, Property 6.2 (Causal Order) breaks under latency jitter.
* **A2 — flush-time e-view suspension** (a member stops applying e-view
  changes once its flush report fixed its position; the authority's log
  is replayed at install).  Without it, members leave a view at
  positions the coordinator never saw, and Properties 6.1/6.3 break.
* **A3 — the linear-membership guards of the Isis baseline** (sticky
  one-coordinator-per-view endorsement plus stale-primary freshness
  deference).  Without them, racing coordinators assemble overlapping
  "majorities" and install *concurrent primaries* — the
  linear-membership invariant breaks.
"""

from __future__ import annotations

from typing import Any

from repro.bench.harness import Table
from repro.isis import IsisConfig, isis_stack_config
from repro.net.latency import UniformLatency
from repro.runtime.cluster import Cluster, ClusterConfig
from repro.trace.checks import (
    check_causal_order,
    check_structure,
    check_total_order,
)
from repro.trace.events import ViewInstallEvent
from repro.vsync.stack import StackConfig


from repro.vsync.events import GroupApplication


class _Reactor(GroupApplication):
    """Multicasts the instant an e-view change applies — the message is
    tagged with the new sequence number while peers may not have applied
    it yet, which is exactly the race the 6.2 gate exists to close."""

    def on_eview(self, eview) -> None:
        if self.stack is not None and not self.stack.is_flushing:
            self.stack.multicast(("react", str(eview.view_id), eview.seq))


def _merge_pump(cluster: Cluster) -> None:
    """Keep requesting merges (one per pump tick) from rotating members
    so e-view changes flow continuously while structure allows."""
    state = {"turn": 0}

    def pump() -> None:
        state["turn"] += 1
        site = state["turn"] % 5
        stack = cluster.stacks.get(site)
        if stack is None or not stack.alive or stack.eview is None:
            return
        structure = stack.eview.structure
        ssids = sorted((ss.ssid for ss in structure.svsets), key=str)
        if len(ssids) >= 2:
            stack.sv_set_merge(ssids[:2])
            return
        sids = sorted((sv.sid for sv in structure.subviews), key=str)
        if len(sids) >= 2:
            stack.subview_merge(sids[:2])

    start = cluster.now
    for tick in range(1, 200):
        cluster.scheduler.at(start + 2.0 * tick, pump)


def ablation_gate(disabled: bool) -> int:
    """A1: total Causal Order (6.2) violations over jittery runs."""
    violations = 0
    for seed in range(5):
        config = ClusterConfig(
            seed=seed,
            latency=UniformLatency(0.3, 4.0),
            stack=StackConfig(unsafe_disable_eview_gate=disabled),
        )
        cluster = Cluster(5, app_factory=lambda pid: _Reactor(), config=config)
        cluster.run_for(60)  # group forms
        _merge_pump(cluster)
        # Periodic partition/heal cycles reset the structure so merges
        # (and hence race windows) keep occurring.
        base = cluster.now
        cluster.scheduler.at(base + 90.0, cluster.partition, [[0, 1, 2], [3, 4]])
        cluster.scheduler.at(base + 180.0, cluster.heal)
        cluster.run(until=base + 440.0)
        violations += len(check_causal_order(cluster.recorder).violations)
    return violations


def ablation_suspension(disabled: bool) -> int:
    """A2: 6.1 + 6.3 violations when merges race view changes."""
    violations = 0
    for seed in range(5):
        config = ClusterConfig(
            seed=seed,
            latency=UniformLatency(0.3, 4.0),
            stack=StackConfig(unsafe_disable_eview_suspension=disabled),
        )
        cluster = Cluster(5, config=config)
        cluster.run_for(60)
        _merge_pump(cluster)
        # View changes racing the merge stream: crash/recover and
        # partition/heal while merges are in flight.
        base = cluster.now
        cluster.scheduler.at(base + 41.0, cluster.partition, [[0, 1, 2], [3, 4]])
        cluster.scheduler.at(base + 121.0, cluster.heal)
        cluster.scheduler.at(base + 201.0, cluster.crash, 4)
        cluster.scheduler.at(base + 261.0, cluster.recover, 4)
        cluster.run(until=base + 440.0)
        violations += len(check_total_order(cluster.recorder).violations)
        violations += len(check_structure(cluster.recorder).violations)
    return violations


def ablation_endorsement(disabled: bool) -> int:
    """A3: concurrent-primary anomalies (same-epoch multi-member views
    with different identifiers, or overlapping concurrent memberships)."""
    anomalies = 0
    for seed in (0, 2, 4):
        isis = IsisConfig(sticky_endorsement=not disabled)
        config = ClusterConfig(
            seed=seed, stack=isis_stack_config(isis_config=isis)
        )
        cluster = Cluster(5, config=config)
        cluster.run_for(250)
        cluster.partition([[0, 1], [2, 3, 4]])
        cluster.run_for(250)
        cluster.heal()
        cluster.run_for(400)
        by_epoch: dict[int, set] = {}
        for ev in cluster.recorder.of_type(ViewInstallEvent):
            if len(ev.members) > 1:
                by_epoch.setdefault(ev.view_id.epoch, set()).add(ev.view_id)
        anomalies += sum(1 for ids in by_epoch.values() if len(ids) > 1)
    return anomalies


def run_experiment() -> dict[str, Any]:
    return {
        "A1 e-view gate (6.2)": (ablation_gate(False), ablation_gate(True)),
        "A2 flush suspension (6.1+6.3)": (
            ablation_suspension(False),
            ablation_suspension(True),
        ),
        "A3 isis linear-membership guards": (
            ablation_endorsement(False),
            ablation_endorsement(True),
        ),
    }


def test_ablations(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    table = Table(
        "Ablations — violations with the mechanism ON vs OFF",
        ["mechanism (property it carries)", "violations ON", "violations OFF"],
    )
    for name, (on, off) in results.items():
        table.add(name, on, off)
    table.show()

    for name, (on, off) in results.items():
        assert on == 0, f"{name}: guarded configuration must be clean"
        assert off > 0, f"{name}: ablation must expose the failure"
