"""Execution modes and the transition automaton of Figure 1.

A group-object process is always in one of three modes (Section 3):

* **NORMAL** — serves all external operations;
* **REDUCED** — serves only a subset of the external operations;
* **SETTLING** — serves internal operations only (state reconstruction).

The automaton admits exactly the six labelled transitions of Figure 1:

====================  ==========  =========================================
transition            edge        cause
====================  ==========  =========================================
``Failure``           N -> R      view no longer supports external ops
``Failure``           S -> R      ditto, during reconstruction
``Repair``            R -> S      view supports external ops again
``Reconfigure``       N -> S      view expanded; state must be rebuilt
``Reconfigure``       S -> S      overlapping reconstruction instances
``Reconcile``         S -> N      reconstruction completed (synchronous!)
====================  ==========  =========================================

``Reconcile`` is the only transition that is *synchronous with the
computation*: it fires when the application reports that the global
state has been successfully reconstructed, not when the environment does
something (Section 4).  The automaton therefore exposes it as a method
(:meth:`ModeAutomaton.reconcile`) rather than deriving it from views.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable

from repro.core.mode_functions import Capability, ModeFunction
from repro.errors import ApplicationError
from repro.evs.eview import EView
from repro.trace.events import ModeChangeEvent
from repro.types import MessageId, ProcessId
from repro.vsync.events import GroupApplication


class Mode(str, enum.Enum):
    NORMAL = "N"
    REDUCED = "R"
    SETTLING = "S"

    def __str__(self) -> str:
        return self.value


class Transition(str, enum.Enum):
    """Edge labels of Figure 1, plus the initial pseudo-transition."""

    JOIN = "Join"  # entering the first view; not an edge of Figure 1
    FAILURE = "Failure"
    REPAIR = "Repair"
    RECONFIGURE = "Reconfigure"
    RECONCILE = "Reconcile"

    def __str__(self) -> str:
        return self.value


#: The legal (old_mode, new_mode) pairs per transition, exactly Figure 1.
LEGAL_TRANSITIONS: dict[Transition, set[tuple[Mode, Mode]]] = {
    Transition.FAILURE: {(Mode.NORMAL, Mode.REDUCED), (Mode.SETTLING, Mode.REDUCED)},
    Transition.REPAIR: {(Mode.REDUCED, Mode.SETTLING)},
    Transition.RECONFIGURE: {
        (Mode.NORMAL, Mode.SETTLING),
        (Mode.SETTLING, Mode.SETTLING),
    },
    Transition.RECONCILE: {(Mode.SETTLING, Mode.NORMAL)},
}


@dataclass(frozen=True)
class ModeChange:
    """One transition taken by the automaton."""

    old: Mode | None
    new: Mode
    transition: Transition


class ModeAutomaton:
    """Per-process mode tracker driven by view changes and reconciles."""

    def __init__(
        self,
        mode_function: ModeFunction,
        on_change: Callable[[ModeChange, EView], None] | None = None,
    ) -> None:
        self.mode_function = mode_function
        self.on_change = on_change
        self.mode: Mode | None = None
        self.eview: EView | None = None
        self.changes: list[ModeChange] = []

    # -- environment-driven transitions ----------------------------------

    def on_view(self, eview: EView) -> ModeChange | None:
        """Re-evaluate the mode for a newly installed view.

        Mirrors the paper's simplifying assumption: the mode function
        depends on the current view composition (and, through the mode
        function object, on local permanent flags), so all members of
        the new view compute the same next mode along the install cut.
        """
        old_eview, self.eview = self.eview, eview
        capability = self.mode_function.capability(eview)
        if self.mode is None:
            initial = (
                Mode.SETTLING if capability is Capability.FULL else Mode.REDUCED
            )
            return self._take(None, initial, Transition.JOIN)
        if capability is Capability.REDUCED:
            if self.mode is Mode.REDUCED:
                return None  # still reduced; no edge taken
            return self._take(self.mode, Mode.REDUCED, Transition.FAILURE)
        # The new view supports all external operations.
        if self.mode is Mode.REDUCED:
            return self._take(self.mode, Mode.SETTLING, Transition.REPAIR)
        if self.mode_function.needs_settling(old_eview, eview):
            return self._take(self.mode, Mode.SETTLING, Transition.RECONFIGURE)
        return None  # N stays N (pure shrink), S stays S (keep settling)

    # -- application-driven transition -------------------------------------

    def reconcile(self) -> ModeChange:
        """The application finished reconstructing the global state."""
        if self.mode is not Mode.SETTLING:
            raise ApplicationError(
                f"Reconcile is only legal from SETTLING, not {self.mode}"
            )
        return self._take(Mode.SETTLING, Mode.NORMAL, Transition.RECONCILE)

    # -- internals -----------------------------------------------------------

    def _take(self, old: Mode | None, new: Mode, transition: Transition) -> ModeChange:
        if transition is not Transition.JOIN:
            legal = LEGAL_TRANSITIONS[transition]
            if (old, new) not in legal:
                raise ApplicationError(
                    f"illegal transition {transition}: {old} -> {new}"
                )
        self.mode = new
        change = ModeChange(old, new, transition)
        self.changes.append(change)
        if self.on_change is not None and self.eview is not None:
            self.on_change(change, self.eview)
        return change


class ModeTrackingApp(GroupApplication):
    """A :class:`GroupApplication` that runs a mode automaton.

    Applications subclass this instead of ``GroupApplication`` and get:
    ``self.mode``, mode-change trace events, and the
    :meth:`on_mode_change` hook.  They call :meth:`reconcile` when their
    internal operations complete.
    """

    def __init__(self, mode_function: ModeFunction) -> None:
        super().__init__()
        self.automaton = ModeAutomaton(mode_function, self._record_change)

    @property
    def mode(self) -> Mode | None:
        return self.automaton.mode

    def on_view(self, eview: EView) -> None:
        self.automaton.on_view(eview)

    def reconcile(self) -> None:
        if self.automaton.mode is Mode.SETTLING:
            self.automaton.reconcile()

    def _record_change(self, change: ModeChange, eview: EView) -> None:
        if self.stack is not None:
            self.stack.recorder.record(
                ModeChangeEvent(
                    time=self.stack.now,
                    pid=self.stack.pid,
                    old_mode=str(change.old) if change.old is not None else "",
                    new_mode=str(change.new),
                    transition=str(change.transition),
                    view_id=eview.view_id,
                )
            )
            obs = self.stack.obs
            if obs is not None:
                obs.mode_changed(
                    self.stack.pid, change.new, change.transition, self.stack.now
                )
        self.on_mode_change(change, eview)

    def on_mode_change(self, change: ModeChange, eview: EView) -> None:
        """Hook for subclasses."""

    def on_message(self, sender: ProcessId, payload, msg_id: MessageId) -> None:
        """Hook for subclasses."""
