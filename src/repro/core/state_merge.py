"""State-merging policies (Section 4).

"When the conditions leading to the partition are repaired, an
application-specific decision has to be taken in defining a new global
state that somehow reconciles the divergence."  These are the stock
decisions; applications plug one into
:meth:`~repro.core.group_object.GroupObject.merge_app_states`.

All policies operate on dictionary-shaped states (``key -> value``),
the natural shape for the paper's replicated-file and database
examples; :class:`VersionVectorMerge` additionally expects values
wrapped as :class:`Versioned`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

from repro.core.group_object import AppStateOffer
from repro.errors import ApplicationError


class LastWriterWins:
    """Keep, per key, the value from the offer with the highest version
    (ties broken by last_epoch then sender, so the result is the same at
    every process)."""

    def merge(self, offers: Sequence[AppStateOffer]) -> dict:
        if not offers:
            raise ApplicationError("nothing to merge")
        ranked = sorted(
            offers, key=lambda o: (o.version, o.last_epoch, o.sender)
        )
        merged: dict = {}
        for offer in ranked:  # later (higher-version) offers overwrite
            merged.update(offer.state)
        return merged


class SetUnionMerge:
    """Union of all offers; values must themselves be sets.

    The grow-only shape makes merging trivially convergent — the classic
    "weak consistency requirement" application the paper says the
    primary-partition model cannot support (Section 5).
    """

    def merge(self, offers: Sequence[AppStateOffer]) -> dict:
        merged: dict[Any, set] = {}
        for offer in offers:
            for key, values in offer.state.items():
                merged.setdefault(key, set()).update(values)
        return merged


@dataclass(frozen=True)
class Versioned:
    """A value with a version vector (site -> update count)."""

    value: Any
    vv: tuple[tuple[int, int], ...] = ()

    def clock(self) -> dict[int, int]:
        return dict(self.vv)

    def bump(self, site: int) -> "Versioned":
        clock = self.clock()
        clock[site] = clock.get(site, 0) + 1
        return Versioned(self.value, tuple(sorted(clock.items())))

    def with_value(self, value: Any) -> "Versioned":
        return Versioned(value, self.vv)

    def dominates(self, other: "Versioned") -> bool:
        """Reflexive version-vector dominance: pointwise >= on clocks."""
        mine, theirs = self.clock(), other.clock()
        return all(mine.get(s, 0) >= c for s, c in theirs.items())

    def concurrent_with(self, other: "Versioned") -> bool:
        return not self.dominates(other) and not other.dominates(self)


@dataclass
class VersionVectorMerge:
    """Per-key version-vector reconciliation.

    Dominant versions win outright; genuinely concurrent updates go to
    ``resolver`` (default: deterministic pick of the lexicographically
    larger value representation) and are counted in ``conflicts`` so
    experiments can report divergence.
    """

    resolver: Callable[[Any, Versioned, Versioned], Versioned] | None = None
    conflicts: list[Any] = field(default_factory=list)

    def merge(self, offers: Sequence[AppStateOffer]) -> dict:
        merged: dict[Any, Versioned] = {}
        for offer in offers:
            state: Mapping[Any, Versioned] = offer.state
            for key, incoming in state.items():
                if key not in merged:
                    merged[key] = incoming
                    continue
                current = merged[key]
                if incoming.dominates(current):
                    merged[key] = incoming
                elif current.dominates(incoming):
                    pass
                else:
                    merged[key] = self._resolve(key, current, incoming)
        return merged

    def _resolve(self, key: Any, a: Versioned, b: Versioned) -> Versioned:
        self.conflicts.append(key)
        if self.resolver is not None:
            return self.resolver(key, a, b)
        winner = a if repr(a.value) >= repr(b.value) else b
        joined = winner.clock()
        for site, count in (b if winner is a else a).clock().items():
            joined[site] = max(joined.get(site, 0), count)
        return Versioned(winner.value, tuple(sorted(joined.items())))


def divergence(offers: Sequence[AppStateOffer]) -> dict[str, int]:
    """Quick report of how far the offered states drifted apart:
    keys present everywhere with equal values, keys with conflicting
    values, and keys missing somewhere."""
    if not offers:
        return {"agree": 0, "conflict": 0, "partial": 0}
    all_keys = set().union(*(set(o.state) for o in offers))
    agree = conflict = partial = 0
    for key in all_keys:
        present = [o.state[key] for o in offers if key in o.state]
        if len(present) < len(offers):
            partial += 1
        elif all(v == present[0] for v in present):
            agree += 1
        else:
            conflict += 1
    return {"agree": agree, "conflict": conflict, "partial": partial}
