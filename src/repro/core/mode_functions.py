"""Mode functions.

"The actual mode function associated with a group object depends on both
the invariants of the application and on the implementation technique
used to attain them" (Section 3).  We keep the paper's simplifying
assumptions: the function may depend on the whole delivery history but,
with respect to view changes, only on the *current view*; and all
processes of a group share the same function.

A mode function here answers two questions:

* :meth:`ModeFunction.capability` — can this view support *all* external
  operations (FULL) or only a subset (REDUCED)?
* :meth:`ModeFunction.needs_settling` — does moving from the old view to
  this new one require reconstructing global state before serving
  external operations again?  The default says yes exactly when the
  view *expanded* (joins, merges) — the Reconfigure causes of Figure 1.
"""

from __future__ import annotations

import enum
from typing import Iterable, Mapping, Protocol, runtime_checkable

from repro.evs.eview import EView
from repro.types import ProcessId, SiteId


class Capability(enum.Enum):
    FULL = "full"
    REDUCED = "reduced"


def _expanded(old: EView | None, new: EView) -> bool:
    if old is None:
        return True
    return not new.members <= old.members


@runtime_checkable
class ModeFunction(Protocol):
    """What the mode automaton needs from an application's mode logic."""

    def capability(self, eview: EView) -> Capability: ...

    def needs_settling(self, old: EView | None, new: EView) -> bool: ...

    def n_capable(self, members: frozenset[ProcessId]) -> bool:
        """Could a group with exactly these members support FULL mode?

        Used by the enriched-view classifier (Section 6.2) to recognise
        a subview or sv-set "defining a majority".
        """
        ...


class QuorumModeFunction:
    """Weighted-vote quorum (the replicated-file example of Section 3).

    Each site carries a number of votes; FULL capability requires a
    strict majority of the total votes in the view, which guarantees at
    most one concurrent view can be FULL.
    """

    def __init__(self, votes: Mapping[SiteId, int]) -> None:
        if not votes or any(v < 0 for v in votes.values()):
            raise ValueError("votes must be a non-empty non-negative mapping")
        self.votes = dict(votes)
        self.total = sum(self.votes.values())

    @classmethod
    def uniform(cls, sites: Iterable[SiteId]) -> "QuorumModeFunction":
        return cls({s: 1 for s in sites})

    def _vote_sum(self, members: frozenset[ProcessId]) -> int:
        return sum(self.votes.get(pid.site, 0) for pid in members)

    def n_capable(self, members: frozenset[ProcessId]) -> bool:
        return 2 * self._vote_sum(members) > self.total

    def capability(self, eview: EView) -> Capability:
        if self.n_capable(eview.members):
            return Capability.FULL
        return Capability.REDUCED

    def needs_settling(self, old: EView | None, new: EView) -> bool:
        return _expanded(old, new)


class StaticMajorityModeFunction(QuorumModeFunction):
    """Plain majority of a static universe (the Section 6.2 lock example)."""

    def __init__(self, universe: Iterable[SiteId]) -> None:
        super().__init__({s: 1 for s in universe})


class DynamicPrimaryModeFunction(StaticMajorityModeFunction):
    """Primary-partition awareness for the Isis-style baseline.

    A process blocked outside the primary receives *no further views*
    (linear membership), so a purely view-dependent mode function would
    leave it in N-mode forever on the strength of a stale view.  Real
    Isis applications block as soon as they cannot assemble a majority
    of acknowledgements; this function models that by requiring, in
    addition to the view naming a universe majority, that a universe
    majority of the view's members is *currently reachable* per the
    failure detector.

    Setting ``dynamic = True`` makes :class:`~repro.core.group_object.
    GroupObject` re-evaluate the mode periodically (not only at view
    changes) — the Failure transition it fires is still *caused* by the
    partition, merely detected by timeout, exactly as an Isis
    application would experience it.
    """

    dynamic = True

    def __init__(self, universe: Iterable[SiteId]) -> None:
        super().__init__(universe)
        self.stack = None

    def bind_stack(self, stack) -> None:
        self.stack = stack

    def capability(self, eview: EView) -> Capability:
        if super().capability(eview) is Capability.REDUCED:
            return Capability.REDUCED
        if self.stack is None:
            return Capability.FULL
        operational = self.stack.fd.reachable() & eview.members
        if self.n_capable(frozenset(operational)):
            return Capability.FULL
        return Capability.REDUCED


class AlwaysFullModeFunction:
    """Every view supports the external interface; every view change
    settles (the parallel-lookup database example of Section 3, where
    "R-mode does not exist" and any view change forces redistribution of
    lookup responsibility)."""

    def capability(self, eview: EView) -> Capability:
        return Capability.FULL

    def needs_settling(self, old: EView | None, new: EView) -> bool:
        if old is None:
            return True
        return old.members != new.members

    def n_capable(self, members: frozenset[ProcessId]) -> bool:
        return bool(members)
