"""Three classifiers for the shared-state problem.

The paper's central observation (Section 4): *occurrence* of a shared
state problem is locally deducible (the mode function evaluates to
S-mode), but *classifying* it is not, because flat views "do not contain
information regarding S_R, S_N and possible clusters".  Section 6.2 then
shows the enriched structure restores classifiability.

We implement all three points of that argument:

* :func:`ground_truth` — omniscient: reads ``S_R``/``S_N``/clusters off
  the recorded trace at the install cut;
* :func:`classify_flat` — a process reasoning only from its own previous
  mode and the new view composition; returns the *set* of diagnoses
  consistent with that knowledge (usually more than one — the paper's
  scenarios (i)/(ii)/(iii));
* :func:`classify_enriched` — the Section 6.2 reasoning over subviews
  and sv-sets; returns a single verdict, exact for applications that
  follow the enriched-view methodology.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.cuts import cut_at_install
from repro.core.shared_state import Diagnosis, Problem, diagnose, problems_from_sets
from repro.errors import ClassificationError
from repro.evs.eview import EView, Subview, SvSet
from repro.trace.recorder import TraceRecorder
from repro.types import ProcessId, ViewId

NCapable = Callable[[frozenset[ProcessId]], bool]


# ---------------------------------------------------------------------------
# Ground truth (omniscient)
# ---------------------------------------------------------------------------


def ground_truth(rec: TraceRecorder, view_id: ViewId) -> Diagnosis:
    """The actual ``S_R`` / ``S_N`` / cluster decomposition at the
    installation of ``view_id``, from the recorded trace."""
    cut = cut_at_install(rec, view_id)
    if not cut:
        raise ClassificationError(f"nobody installed {view_id}")
    prev_modes = {pid: (st.prev_mode or "R") for pid, st in cut.items()}
    prev_views: dict[ProcessId, ViewId] = {}
    for pid, state in cut.items():
        if state.prev_view_id is not None:
            prev_views[pid] = state.prev_view_id
        else:
            # A process with no predecessor view cannot be in S_N anyway.
            prev_modes[pid] = "R"
    return diagnose(view_id, prev_modes, prev_views)


# ---------------------------------------------------------------------------
# Flat-view local reasoning
# ---------------------------------------------------------------------------


def classify_flat(
    my_prev_mode: str,
    n_members: int,
    exclusive_full: bool = True,
) -> frozenset[str]:
    """All diagnosis labels consistent with flat-view local knowledge.

    A process knows its own previous mode and the new view composition,
    nothing else; every assignment of previous modes (and clusterings)
    to the other ``n_members - 1`` members is possible.
    ``exclusive_full`` encodes the one deduction a quorum-style mode
    function allows: at most one concurrent view can be FULL, so
    ``S_N`` can never span two clusters and state merging is excluded.

    The return value is a frozenset of canonical labels (see
    :attr:`~repro.core.shared_state.Diagnosis.label`); a singleton means
    the situation was locally classifiable, which the paper argues is
    rare — that claim is experiment E6.
    """
    if my_prev_mode not in ("N", "R", "S"):
        raise ClassificationError(f"bad mode {my_prev_mode!r}")
    if n_members < 1:
        raise ClassificationError("a view has at least one member")
    others = n_members - 1
    i_am_n = my_prev_mode == "N"
    labels: set[str] = set()
    for others_in_n in range(others + 1):
        n_count = others_in_n + (1 if i_am_n else 0)
        r_count = (others - others_in_n) + (0 if i_am_n else 1)
        if n_count == 0:
            cluster_options = [0]
        elif exclusive_full:
            cluster_options = [1]
        else:
            cluster_options = sorted({1, min(2, n_count), n_count})
        for n_clusters in cluster_options:
            problems = problems_from_sets(n_count > 0, r_count > 0, n_clusters)
            if not problems:
                label = "none"
            else:
                label = "+".join(sorted(str(p) for p in problems))
            labels.add(label)
    return frozenset(labels)


# ---------------------------------------------------------------------------
# Enriched-view local reasoning (Section 6.2)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class EnrichedVerdict:
    """What a process can conclude from the new e-view alone.

    ``donor_subviews`` are the subviews whose composition satisfies the
    mode function's N-condition — under the Section 6.2 methodology
    their members *are* ``S_N`` and each is one cluster, and they "know
    how to obtain an up-to-date shared state".  When no subview
    qualifies, ``in_progress_svset`` distinguishes the paper's scenarios
    (ii) and (iii): an sv-set satisfying the N-condition marks a state
    creation that was already running at the view change (wait for it /
    join it), while no qualifying sv-set means creation must start from
    scratch.
    """

    view_id: ViewId
    label: str
    s_n: frozenset[ProcessId]
    s_r: frozenset[ProcessId]
    donor_subviews: tuple[Subview, ...]
    in_progress_svset: SvSet | None

    @property
    def problems(self) -> frozenset[Problem]:
        if self.label == "none":
            return frozenset()
        return frozenset(Problem(part) for part in self.label.split("+"))


def classify_enriched(eview: EView, n_capable: NCapable) -> EnrichedVerdict:
    """Section 6.2 local reasoning over the new e-view's structure."""
    structure = eview.structure
    donors = tuple(
        sv for sv in structure.subviews if n_capable(sv.members)
    )
    if donors:
        s_n = frozenset().union(*(sv.members for sv in donors))
        s_r = eview.members - s_n
        problems = problems_from_sets(True, bool(s_r), len(donors))
        label = (
            "+".join(sorted(str(p) for p in problems)) if problems else "none"
        )
        return EnrichedVerdict(
            eview.view_id, label, s_n, s_r, donors, in_progress_svset=None
        )
    # No subview is N-capable: some flavour of state creation.
    in_progress = None
    for svset in structure.svsets:
        if n_capable(structure.svset_members(svset.ssid)):
            in_progress = svset
            break
    return EnrichedVerdict(
        eview.view_id,
        label=str(Problem.STATE_CREATION),
        s_n=frozenset(),
        s_r=eview.members,
        donor_subviews=(),
        in_progress_svset=in_progress,
    )
