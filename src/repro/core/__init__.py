"""The paper's application model and shared-state machinery.

This package is the reproduction of Sections 3, 4 and 6.2:

* :mod:`repro.core.modes` — the NORMAL / REDUCED / SETTLING execution
  modes and the transition automaton of Figure 1;
* :mod:`repro.core.mode_functions` — pluggable mode functions (quorum
  voting, static majority, always-available);
* :mod:`repro.core.history` / :mod:`repro.core.cuts` — process histories
  and consistent cuts over recorded traces;
* :mod:`repro.core.shared_state` — the taxonomy: state transfer, state
  creation, state merging, with the paper's necessary conditions over
  ``S_R``, ``S_N`` and clusters;
* :mod:`repro.core.classify` — three classifiers: omniscient ground
  truth, flat-view local reasoning (returns ambiguity sets), and
  enriched-view local reasoning (Section 6.2);
* :mod:`repro.core.group_object` — a group-object framework implementing
  the Section 6.2 methodology (external operations within a subview,
  internal operations across the subviews of one sv-set, merge on
  success);
* :mod:`repro.core.state_transfer`, :mod:`repro.core.state_merge`,
  :mod:`repro.core.state_creation` — the three repair protocols.
"""

from repro.core.modes import Mode, ModeAutomaton, ModeTrackingApp, Transition
from repro.core.mode_functions import (
    AlwaysFullModeFunction,
    Capability,
    ModeFunction,
    QuorumModeFunction,
    StaticMajorityModeFunction,
)
from repro.core.shared_state import Diagnosis, Problem, diagnose
from repro.core.classify import (
    EnrichedVerdict,
    classify_enriched,
    classify_flat,
    ground_truth,
)

__all__ = [
    "Mode",
    "Transition",
    "ModeAutomaton",
    "ModeTrackingApp",
    "Capability",
    "ModeFunction",
    "QuorumModeFunction",
    "StaticMajorityModeFunction",
    "AlwaysFullModeFunction",
    "Problem",
    "Diagnosis",
    "diagnose",
    "ground_truth",
    "classify_flat",
    "classify_enriched",
    "EnrichedVerdict",
]
