"""Consistent cuts at view installations.

Section 4 reasons about "any consistent cut of the computation that
includes the ``vchg(p, v)`` events for each process ``p`` in ``v``".
For a recorded trace, the state of each member *just before* it installs
``v`` — its predecessor view and its mode at that instant — is exactly
what the ground-truth classifier needs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.trace.events import ModeChangeEvent, ViewInstallEvent
from repro.trace.recorder import TraceRecorder
from repro.types import ProcessId, ViewId


@dataclass(frozen=True)
class PreInstallState:
    """A member's situation immediately before installing a view."""

    pid: ProcessId
    prev_view_id: ViewId | None
    prev_mode: str  # "N", "R", "S", or "" for a fresh process


def cut_at_install(rec: TraceRecorder, view_id: ViewId) -> dict[ProcessId, PreInstallState]:
    """Per-member pre-install state for every installer of ``view_id``.

    Walks the trace in order, tracking each process's current view and
    mode; snapshots them at the instant the process installs
    ``view_id``.  Only processes that actually installed the view appear
    in the result (a member that crashed before installing never reached
    the cut).
    """
    current_view: dict[ProcessId, ViewId] = {}
    current_mode: dict[ProcessId, str] = {}
    result: dict[ProcessId, PreInstallState] = {}
    for event in rec.events:
        if isinstance(event, ViewInstallEvent):
            if event.view_id == view_id and event.pid not in result:
                result[event.pid] = PreInstallState(
                    pid=event.pid,
                    prev_view_id=current_view.get(event.pid),
                    prev_mode=current_mode.get(event.pid, ""),
                )
            current_view[event.pid] = event.view_id
        elif isinstance(event, ModeChangeEvent):
            current_mode[event.pid] = event.new_mode
    return result


def s_mode_entries(rec: TraceRecorder) -> list[tuple[ProcessId, ViewId]]:
    """Every (process, view) pair where a view change put the process
    into S-mode — the events at which a shared-state problem must be
    classified."""
    entries: list[tuple[ProcessId, ViewId]] = []
    for event in rec.events:
        if isinstance(event, ModeChangeEvent) and event.new_mode == "S":
            if event.transition in ("Repair", "Reconfigure", "Join"):
                entries.append((event.pid, event.view_id))
    return entries
