"""Group objects (Section 3) over enriched view synchrony.

A *group object* is an instance of an abstract data type whose logical
state is simulated by a global state distributed over the group members,
with invariants that must survive view changes.  :class:`GroupObject`
packages the machinery every such object needs:

* an operation log: external operations are multicast; members with
  fresh state apply them immediately, members still settling buffer them
  and replay after adopting (so a transfer never loses concurrent
  updates — the two-piece discipline of Section 5's discussion);
* a :class:`~repro.core.settlement.SettlementEngine` running the
  Section 6.2 methodology to solve whatever shared-state problem a view
  change produces;
* freshness tracking and the synchronous Reconcile transition back to
  N-mode;
* persistence hooks for state creation (view epochs and versions go to
  the site's stable storage, supporting last-process-to-fail selection).

Subclasses implement the abstract-data-type half: ``snapshot_state`` /
``adopt_state`` / ``apply_op`` plus, optionally, ``merge_states`` and
``choose_creation_state`` policies.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any

from repro.core.mode_functions import ModeFunction
from repro.core.modes import Mode, ModeTrackingApp
from repro.core.settlement import (
    SettlementEngine,
    StateAdopt,
    StateOffer,
    StateRequest,
)
from repro.core.state_creation import choose_by_last_to_fail
from repro.core.state_transfer import (
    IncrementalReceiver,
    IncrementalSender,
    TAck,
    TChunk,
    TOffer,
    TResume,
    assemble_snapshot,
    op_digest,
    snapshot_chunks,
)
from repro.errors import ApplicationError
from repro.evs.eview import EView
from repro.types import MessageId, ProcessId

_VERSION_KEY = "groupobject.version"
_EPOCH_KEY = "groupobject.last_epoch"


from dataclasses import dataclass


@dataclass(frozen=True)
class AppStateOffer:
    """A donor cluster's state as seen by application merge policies."""

    sender: ProcessId
    state: Any
    version: int
    last_epoch: int


@dataclass(frozen=True, slots=True)
class _OpMsg:
    """Envelope for an external operation multicast.

    A frozen dataclass so the realnet codec can carry it across real
    sockets (only dataclasses are wire-registrable); ``slots`` keeps
    the envelope as cheap as the hand-rolled ``__slots__`` class the
    simulator hot path used.
    """

    op: Any


class GroupObject(ModeTrackingApp):
    """Base class for replicated abstract data types."""

    def __init__(
        self,
        mode_function: ModeFunction,
        enriched_continuation: bool = True,
        creation_requires_all_sites: bool = False,
        transfer_chunk_size: int | None = None,
        delta_log_cap: int = 512,
    ) -> None:
        super().__init__(mode_function)
        self.settlement = SettlementEngine(self, enriched_continuation)
        # Skeen-safe state creation: wait for every site before
        # recreating, so the last process to fail is certainly heard.
        self.creation_requires_all_sites = creation_requires_all_sites
        # Incremental state transfer (repro.core.state_transfer): None
        # keeps the legacy whole-blob StateOffer exchange; an int turns
        # settlement replies into announced chunk streams of that many
        # entries per chunk, with version-range diffs when the
        # requester's lineage is a prefix of the donor's.
        self.transfer_chunk_size = transfer_chunk_size
        self.delta_log_cap = delta_log_cap
        self.fresh = False
        self.version = 0
        self._prev_members: frozenset[ProcessId] | None = None
        self._buffered_ops: list[tuple[ProcessId, Any, MessageId]] = []
        self._applied_ops: set[MessageId] = set()
        # Lineage digest of the applied set (order independent, see
        # op_digest) and the recent-operation log that backs diff
        # streams: (version-after-apply, sender, op, msg_id) tuples.
        self._ops_digest = 0
        self._delta_log: list[tuple[int, ProcessId, Any, MessageId]] = []
        self._inc_senders: dict[Any, IncrementalSender] = {}
        self._transfer_rx: IncrementalReceiver | None = None
        self.ops_applied = 0
        self.ops_rejected = 0

    @property
    def pid(self) -> ProcessId:
        if self.stack is None:
            raise ApplicationError("application not bound to a stack yet")
        return self.stack.pid

    def bind(self, stack) -> None:
        super().bind(stack)
        # A recovered incarnation resumes its persisted operation-count
        # lineage: offers must not claim version 0 over restored state —
        # last-process-to-fail selection breaks ties by version, and the
        # stale-transfer detector compares offer versions.
        self.version = int(stack.storage.read(_VERSION_KEY, 0))
        self._transfer_rx = IncrementalReceiver(stack, self._on_transfer_complete)
        fn = self.automaton.mode_function
        if getattr(fn, "dynamic", False):
            fn.bind_stack(stack)
            stack.set_periodic(10.0, self._reevaluate_mode)

    def _reevaluate_mode(self) -> None:
        """Dynamic mode functions (see :class:`~repro.core.
        mode_functions.DynamicPrimaryModeFunction`) are re-run between
        view changes: a process stuck outside the primary partition must
        notice it lost FULL capability even though no view arrives."""
        eview = self.stack.eview if self.stack is not None else None
        if eview is not None and self.mode is not None:
            self.automaton.on_view(eview)

    # ------------------------------------------------------------------
    # Abstract-data-type interface (override in subclasses)
    # ------------------------------------------------------------------

    def snapshot_state(self) -> Any:
        """Return a copyable snapshot of the object state."""
        raise NotImplementedError

    def adopt_state(self, state: Any) -> None:
        """Replace the object state with ``state``."""
        raise NotImplementedError

    def apply_op(self, sender: ProcessId, op: Any, msg_id: MessageId) -> None:
        """Apply one delivered external operation to the local state."""
        raise NotImplementedError

    def merge_app_states(self, states: list["AppStateOffer"]) -> Any:
        """Reconcile divergent application states after a partition merge.

        Called with one entry per donor cluster.  The default refuses:
        an application that can experience state merging must choose a
        policy (see :mod:`repro.core.state_merge`).
        """
        raise ApplicationError(
            f"{type(self).__name__} got a state-merging problem but "
            "defines no merge_app_states policy"
        )

    def choose_creation_offer(self, offers: list[StateOffer]) -> StateOffer:
        """Pick the offer to recreate from after a total failure.

        Default: last-process-to-fail selection on persisted view epochs
        (Skeen-style), breaking ties by version then process identifier.
        """
        return choose_by_last_to_fail(offers)

    # The two methods below keep the settlement engine ignorant of the
    # (state, applied-ops, version) envelope this class transports.

    def merge_states(self, offers: list[StateOffer]) -> Any:
        app_offers = [
            AppStateOffer(o.sender, o.snapshot[0], o.version, o.last_epoch)
            for o in offers
        ]
        merged = self.merge_app_states(app_offers)
        applied = frozenset().union(*(o.snapshot[1] for o in offers))
        version = max(o.version for o in offers)
        return (merged, applied, version)

    def choose_creation_state(self, offers: list[StateOffer]) -> Any:
        return self.choose_creation_offer(offers).snapshot

    def op_allowed(self, op: Any, mode: Mode) -> bool:
        """Which external operations the current mode admits.

        Default: everything in NORMAL, nothing otherwise.  Objects with
        a REDUCED repertoire (e.g. read-only) override this.
        """
        return mode is Mode.NORMAL

    # ------------------------------------------------------------------
    # External operations
    # ------------------------------------------------------------------

    def submit_op(self, op: Any, trace: Any = None) -> MessageId | None:
        """Multicast an external operation to the group.

        Raises :class:`ApplicationError` if the current mode does not
        admit it (callers can pre-check with :meth:`can_submit`).
        ``trace`` optionally names the causal parent of the multicast
        (e.g. a client request's root span; tracing only).
        """
        if self.stack is None or self.mode is None:
            raise ApplicationError("object not running yet")
        if not self.op_allowed(op, self.mode):
            self.ops_rejected += 1
            raise ApplicationError(
                f"operation {op!r} not allowed in mode {self.mode}"
            )
        return self.stack.multicast(_OpMsg(op), trace)

    def can_submit(self, op: Any) -> bool:
        return (
            self.stack is not None
            and self.mode is not None
            and self.op_allowed(op, self.mode)
        )

    # ------------------------------------------------------------------
    # Plumbing: deliveries
    # ------------------------------------------------------------------

    def on_message(self, sender: ProcessId, payload: Any, msg_id: MessageId) -> None:
        if isinstance(payload, _OpMsg):
            self._on_op(sender, payload.op, msg_id)
        elif isinstance(payload, StateAdopt):
            self._on_adopt(payload)
        else:
            self.on_app_message(sender, payload, msg_id)

    def on_app_message(self, sender: ProcessId, payload: Any, msg_id: MessageId) -> None:
        """Hook for subclasses that multicast their own payloads."""

    def _on_op(self, sender: ProcessId, op: Any, msg_id: MessageId) -> None:
        if self.fresh:
            self._apply(sender, op, msg_id)
        else:
            self._buffered_ops.append((sender, op, msg_id))

    def _apply(self, sender: ProcessId, op: Any, msg_id: MessageId) -> None:
        if msg_id in self._applied_ops:
            return
        self._applied_ops.add(msg_id)
        self.version += 1
        self._ops_digest = op_digest(self._ops_digest, msg_id)
        self._delta_log.append((self.version, sender, op, msg_id))
        if len(self._delta_log) > self.delta_log_cap:
            del self._delta_log[: -self.delta_log_cap]
        self.apply_op(sender, op, msg_id)
        self.ops_applied += 1
        self._persist_meta()

    def _on_adopt(self, adopt: StateAdopt) -> None:
        eview = self.stack.eview if self.stack is not None else None
        if (
            adopt.view_id is not None
            and eview is not None
            and adopt.view_id != eview.view_id
        ):
            # Decided under another view's structure (the multicast
            # straddled a view change): not installable here — see
            # StateAdopt.  The session covering this view re-issues.
            return
        obs = self.stack.obs if self.stack is not None else None
        if obs is not None and adopt.trace is not None:
            obs.settle_adopt(self.pid, self.stack.now, adopt.trace)
        state, applied, version = adopt.state
        self.adopt_state(state)
        self._applied_ops = set(applied)
        self.version = max(self.version, version)
        # The adopted state starts a fresh lineage segment: the digest
        # is recomputed from the applied set (op_digest is order
        # independent) and the delta log restarts — diffs can only be
        # served for operations applied after this point.
        digest = 0
        for mid in self._applied_ops:
            digest = op_digest(digest, mid)
        self._ops_digest = digest
        self._delta_log.clear()
        self.fresh = True
        self._persist_meta()
        # Replay concurrent operations the snapshot predates.
        buffered, self._buffered_ops = self._buffered_ops, []
        for sender, op, msg_id in sorted(buffered, key=lambda t: t[2]):
            self._apply(sender, op, msg_id)
        self.settlement.on_adopt_delivered()
        self._maybe_reconcile()

    # ------------------------------------------------------------------
    # Plumbing: views, e-views, settlement
    # ------------------------------------------------------------------

    def on_view(self, eview: EView) -> None:
        super().on_view(eview)  # drive the mode automaton first
        if self.mode is Mode.NORMAL:
            # Pure shrink while fresh: nothing to rebuild.
            self.fresh = True
        if self.mode is not Mode.NORMAL and not self._i_am_donor(eview):
            self.fresh = False
        self.stack.storage.write(_EPOCH_KEY, eview.view.epoch)
        # On a non-expanding view change, reconcile *before* driving
        # settlement: a single subview of fresh members needs no
        # settlement, and the synchronous Reconcile completes (and
        # clears) any session carried over from the churn window —
        # driving settlement first would let it re-issue its adopt into
        # this view, clobbering operations applied after the donor's
        # snapshot was taken.  An expansion must settle first: under
        # flat views the joiners share our subview while unfresh, so an
        # early reconcile would strand them in S-mode.
        expanded = (
            self._prev_members is None
            or not eview.members <= self._prev_members
        )
        self._prev_members = eview.members
        if not expanded:
            self._maybe_reconcile()
        self.settlement.on_view(eview)
        self._maybe_reconcile()

    def on_eview(self, eview: EView) -> None:
        self.settlement.on_eview(eview)
        self._maybe_reconcile()

    def _i_am_donor(self, eview: EView) -> bool:
        """Fresh state survives a view change iff our subview is
        N-capable (we come from the group that was serving externals)."""
        if not self.fresh:
            return False
        subview = eview.structure.subview_of(self.pid)
        return self.automaton.mode_function.n_capable(subview.members)

    def _maybe_reconcile(self) -> None:
        """The synchronous Reconcile transition (Section 4): fire when
        the structure shows a single subview spanning the view and our
        state is fresh."""
        if self.mode is not Mode.SETTLING or not self.fresh:
            return
        eview = self.stack.eview if self.stack else None
        if eview is None:
            return
        if len(eview.structure.subviews) == 1:
            self.reconcile()
            self.settlement.on_reconciled()

    # ------------------------------------------------------------------
    # Settlement support
    # ------------------------------------------------------------------

    def make_offer(self, session) -> StateOffer:
        return StateOffer(
            session=session,
            sender=self.pid,
            snapshot=(
                self.snapshot_state(),
                frozenset(self._applied_ops),
                self.version,
            ),
            version=self.version,
            last_epoch=int(self.stack.storage.read(_EPOCH_KEY, 0)),
        )

    def build_state_request(self, session) -> StateRequest:
        """The request this leader sends responders in phase 2.

        With chunked transfer enabled it advertises that capability and
        our operation lineage, so donors can reply with a version-range
        diff; otherwise the legacy whole-blob request.
        """
        if self.transfer_chunk_size is None:
            return StateRequest(session)
        return StateRequest(
            session,
            accepts_chunks=True,
            have_version=self.version,
            have_digest=self._ops_digest,
        )

    def answer_state_request(self, src: ProcessId, request: StateRequest) -> None:
        """Donor side of phase 2: whole blob or announced chunk stream."""
        obs = self.stack.obs
        if obs is not None and request.trace is not None:
            obs.settle_offer(self.pid, self.stack.now, request.trace)
        size = self.transfer_chunk_size
        if not request.accepts_chunks or size is None:
            # Either side predates (or disabled) chunked transfer: the
            # legacy single-message StateOffer keeps mixed clusters
            # interoperable in both directions.
            offer = self.make_offer(request.session)
            if request.trace is not None:
                offer = replace(offer, trace=request.trace)
            self.stack.send_direct(src, offer)
            return
        kind, chunks, base_version = self._plan_stream(request, size)
        last_epoch = int(self.stack.storage.read(_EPOCH_KEY, 0))
        target_version = self.version
        session = request.session
        trace = request.trace
        sender = IncrementalSender(
            self.stack,
            src,
            offer_of=lambda tid: TOffer(
                transfer=tid,
                session=session,
                kind=kind,
                total_chunks=len(chunks),
                base_version=base_version,
                target_version=target_version,
                sender=self.pid,
                last_epoch=last_epoch,
                trace=trace,
            ),
            chunks=chunks,
        )
        sender.on_done = lambda: self._inc_senders.pop(sender.transfer_id, None)
        self._inc_senders[sender.transfer_id] = sender
        sender.start()

    def _plan_stream(
        self, request: StateRequest, size: int
    ) -> tuple[str, list[Any], int]:
        """Decide diff vs snapshot for one requester.

        A diff is safe iff the requester's ``(version, digest)`` names a
        state this donor's delta log can extend to its current one: the
        log must cover exactly the missing version range, and XOR-ing
        those operations back out of our digest must land on the
        requester's — i.e. their applied set is precisely ours minus the
        log tail.  Anything else (log trimmed, lineage diverged after a
        partition, requester ahead) falls back to a chunked snapshot.
        """
        have = request.have_version
        if 0 <= have <= self.version:
            entries = [e for e in self._delta_log if e[0] > have]
            if len(entries) == self.version - have:
                expected = self._ops_digest
                for entry in entries:
                    expected = op_digest(expected, entry[3])
                if expected == request.have_digest:
                    chunks = [
                        tuple(entries[i : i + size])
                        for i in range(0, len(entries), size)
                    ]
                    return "diff", chunks, have
        snapshot = (
            self.snapshot_state(),
            frozenset(self._applied_ops),
            self.version,
        )
        return "snapshot", snapshot_chunks(snapshot, size), -1

    def _on_transfer_complete(self, offer: TOffer, payloads: list[Any]) -> None:
        """A chunk stream finished: reconstruct the donor's StateOffer.

        Diff streams replay the missed operations onto our own state
        (the digest handshake proved it is the donor's state at
        ``base_version``), after which *we* hold the donor's snapshot;
        snapshot streams reassemble the envelope from the chunks.
        Either way settlement proceeds exactly as if the donor had sent
        the single-message offer.
        """
        if offer.kind == "diff":
            for chunk in payloads:
                for _version, sender, op, msg_id in chunk:
                    self._apply(sender, op, msg_id)
            snapshot = (
                self.snapshot_state(),
                frozenset(self._applied_ops),
                self.version,
            )
            version = self.version
        else:
            snapshot = assemble_snapshot(payloads, offer.target_version)
            version = offer.target_version
        self.settlement.on_offer(
            offer.sender,
            StateOffer(
                session=offer.session,
                sender=offer.sender,
                snapshot=snapshot,
                version=version,
                last_epoch=offer.last_epoch,
                trace=offer.trace,
            ),
        )

    def on_direct(self, sender: ProcessId, payload: Any) -> None:
        if isinstance(payload, StateRequest):
            self.settlement.on_request(sender, payload)
        elif isinstance(payload, StateOffer):
            self.settlement.on_offer(sender, payload)
        elif isinstance(payload, TOffer):
            if self._transfer_rx is not None:
                self._transfer_rx.on_offer(sender, payload)
        elif isinstance(payload, TResume) and payload.transfer in self._inc_senders:
            self._inc_senders[payload.transfer].on_resume(payload)
        elif (
            isinstance(payload, TChunk)
            and self._transfer_rx is not None
            and self._transfer_rx.owns(payload.transfer)
        ):
            self._transfer_rx.on_chunk(sender, payload)
        elif isinstance(payload, TAck) and payload.transfer in self._inc_senders:
            self._inc_senders[payload.transfer].on_ack(payload)
        else:
            self.on_app_direct(sender, payload)

    def on_app_direct(self, sender: ProcessId, payload: Any) -> None:
        """Hook for subclasses using point-to-point messages."""

    def _persist_meta(self) -> None:
        if self.stack is not None:
            self.stack.storage.write(_VERSION_KEY, self.version)
