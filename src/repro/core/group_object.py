"""Group objects (Section 3) over enriched view synchrony.

A *group object* is an instance of an abstract data type whose logical
state is simulated by a global state distributed over the group members,
with invariants that must survive view changes.  :class:`GroupObject`
packages the machinery every such object needs:

* an operation log: external operations are multicast; members with
  fresh state apply them immediately, members still settling buffer them
  and replay after adopting (so a transfer never loses concurrent
  updates — the two-piece discipline of Section 5's discussion);
* a :class:`~repro.core.settlement.SettlementEngine` running the
  Section 6.2 methodology to solve whatever shared-state problem a view
  change produces;
* freshness tracking and the synchronous Reconcile transition back to
  N-mode;
* persistence hooks for state creation (view epochs and versions go to
  the site's stable storage, supporting last-process-to-fail selection).

Subclasses implement the abstract-data-type half: ``snapshot_state`` /
``adopt_state`` / ``apply_op`` plus, optionally, ``merge_states`` and
``choose_creation_state`` policies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.core.mode_functions import ModeFunction
from repro.core.modes import Mode, ModeTrackingApp
from repro.core.settlement import (
    SettlementEngine,
    StateAdopt,
    StateOffer,
    StateRequest,
)
from repro.core.state_creation import choose_by_last_to_fail
from repro.errors import ApplicationError
from repro.evs.eview import EView
from repro.types import MessageId, ProcessId

_VERSION_KEY = "groupobject.version"
_EPOCH_KEY = "groupobject.last_epoch"


from dataclasses import dataclass


@dataclass(frozen=True)
class AppStateOffer:
    """A donor cluster's state as seen by application merge policies."""

    sender: ProcessId
    state: Any
    version: int
    last_epoch: int


@dataclass(frozen=True, slots=True)
class _OpMsg:
    """Envelope for an external operation multicast.

    A frozen dataclass so the realnet codec can carry it across real
    sockets (only dataclasses are wire-registrable); ``slots`` keeps
    the envelope as cheap as the hand-rolled ``__slots__`` class the
    simulator hot path used.
    """

    op: Any


class GroupObject(ModeTrackingApp):
    """Base class for replicated abstract data types."""

    def __init__(
        self,
        mode_function: ModeFunction,
        enriched_continuation: bool = True,
        creation_requires_all_sites: bool = False,
    ) -> None:
        super().__init__(mode_function)
        self.settlement = SettlementEngine(self, enriched_continuation)
        # Skeen-safe state creation: wait for every site before
        # recreating, so the last process to fail is certainly heard.
        self.creation_requires_all_sites = creation_requires_all_sites
        self.fresh = False
        self.version = 0
        self._buffered_ops: list[tuple[ProcessId, Any, MessageId]] = []
        self._applied_ops: set[MessageId] = set()
        self.ops_applied = 0
        self.ops_rejected = 0

    @property
    def pid(self) -> ProcessId:
        if self.stack is None:
            raise ApplicationError("application not bound to a stack yet")
        return self.stack.pid

    def bind(self, stack) -> None:
        super().bind(stack)
        fn = self.automaton.mode_function
        if getattr(fn, "dynamic", False):
            fn.bind_stack(stack)
            stack.set_periodic(10.0, self._reevaluate_mode)

    def _reevaluate_mode(self) -> None:
        """Dynamic mode functions (see :class:`~repro.core.
        mode_functions.DynamicPrimaryModeFunction`) are re-run between
        view changes: a process stuck outside the primary partition must
        notice it lost FULL capability even though no view arrives."""
        eview = self.stack.eview if self.stack is not None else None
        if eview is not None and self.mode is not None:
            self.automaton.on_view(eview)

    # ------------------------------------------------------------------
    # Abstract-data-type interface (override in subclasses)
    # ------------------------------------------------------------------

    def snapshot_state(self) -> Any:
        """Return a copyable snapshot of the object state."""
        raise NotImplementedError

    def adopt_state(self, state: Any) -> None:
        """Replace the object state with ``state``."""
        raise NotImplementedError

    def apply_op(self, sender: ProcessId, op: Any, msg_id: MessageId) -> None:
        """Apply one delivered external operation to the local state."""
        raise NotImplementedError

    def merge_app_states(self, states: list["AppStateOffer"]) -> Any:
        """Reconcile divergent application states after a partition merge.

        Called with one entry per donor cluster.  The default refuses:
        an application that can experience state merging must choose a
        policy (see :mod:`repro.core.state_merge`).
        """
        raise ApplicationError(
            f"{type(self).__name__} got a state-merging problem but "
            "defines no merge_app_states policy"
        )

    def choose_creation_offer(self, offers: list[StateOffer]) -> StateOffer:
        """Pick the offer to recreate from after a total failure.

        Default: last-process-to-fail selection on persisted view epochs
        (Skeen-style), breaking ties by version then process identifier.
        """
        return choose_by_last_to_fail(offers)

    # The two methods below keep the settlement engine ignorant of the
    # (state, applied-ops, version) envelope this class transports.

    def merge_states(self, offers: list[StateOffer]) -> Any:
        app_offers = [
            AppStateOffer(o.sender, o.snapshot[0], o.version, o.last_epoch)
            for o in offers
        ]
        merged = self.merge_app_states(app_offers)
        applied = frozenset().union(*(o.snapshot[1] for o in offers))
        version = max(o.version for o in offers)
        return (merged, applied, version)

    def choose_creation_state(self, offers: list[StateOffer]) -> Any:
        return self.choose_creation_offer(offers).snapshot

    def op_allowed(self, op: Any, mode: Mode) -> bool:
        """Which external operations the current mode admits.

        Default: everything in NORMAL, nothing otherwise.  Objects with
        a REDUCED repertoire (e.g. read-only) override this.
        """
        return mode is Mode.NORMAL

    # ------------------------------------------------------------------
    # External operations
    # ------------------------------------------------------------------

    def submit_op(self, op: Any) -> MessageId | None:
        """Multicast an external operation to the group.

        Raises :class:`ApplicationError` if the current mode does not
        admit it (callers can pre-check with :meth:`can_submit`).
        """
        if self.stack is None or self.mode is None:
            raise ApplicationError("object not running yet")
        if not self.op_allowed(op, self.mode):
            self.ops_rejected += 1
            raise ApplicationError(
                f"operation {op!r} not allowed in mode {self.mode}"
            )
        return self.stack.multicast(_OpMsg(op))

    def can_submit(self, op: Any) -> bool:
        return (
            self.stack is not None
            and self.mode is not None
            and self.op_allowed(op, self.mode)
        )

    # ------------------------------------------------------------------
    # Plumbing: deliveries
    # ------------------------------------------------------------------

    def on_message(self, sender: ProcessId, payload: Any, msg_id: MessageId) -> None:
        if isinstance(payload, _OpMsg):
            self._on_op(sender, payload.op, msg_id)
        elif isinstance(payload, StateAdopt):
            self._on_adopt(payload)
        else:
            self.on_app_message(sender, payload, msg_id)

    def on_app_message(self, sender: ProcessId, payload: Any, msg_id: MessageId) -> None:
        """Hook for subclasses that multicast their own payloads."""

    def _on_op(self, sender: ProcessId, op: Any, msg_id: MessageId) -> None:
        if self.fresh:
            self._apply(sender, op, msg_id)
        else:
            self._buffered_ops.append((sender, op, msg_id))

    def _apply(self, sender: ProcessId, op: Any, msg_id: MessageId) -> None:
        if msg_id in self._applied_ops:
            return
        self._applied_ops.add(msg_id)
        self.version += 1
        self.apply_op(sender, op, msg_id)
        self.ops_applied += 1
        self._persist_meta()

    def _on_adopt(self, adopt: StateAdopt) -> None:
        state, applied, version = adopt.state
        self.adopt_state(state)
        self._applied_ops = set(applied)
        self.version = max(self.version, version)
        self.fresh = True
        self._persist_meta()
        # Replay concurrent operations the snapshot predates.
        buffered, self._buffered_ops = self._buffered_ops, []
        for sender, op, msg_id in sorted(buffered, key=lambda t: t[2]):
            self._apply(sender, op, msg_id)
        self.settlement.on_adopt_delivered()
        self._maybe_reconcile()

    # ------------------------------------------------------------------
    # Plumbing: views, e-views, settlement
    # ------------------------------------------------------------------

    def on_view(self, eview: EView) -> None:
        super().on_view(eview)  # drive the mode automaton first
        if self.mode is Mode.NORMAL:
            # Pure shrink while fresh: nothing to rebuild.
            self.fresh = True
        if self.mode is not Mode.NORMAL and not self._i_am_donor(eview):
            self.fresh = False
        self.stack.storage.write(_EPOCH_KEY, eview.view.epoch)
        self.settlement.on_view(eview)
        self._maybe_reconcile()

    def on_eview(self, eview: EView) -> None:
        self.settlement.on_eview(eview)
        self._maybe_reconcile()

    def _i_am_donor(self, eview: EView) -> bool:
        """Fresh state survives a view change iff our subview is
        N-capable (we come from the group that was serving externals)."""
        if not self.fresh:
            return False
        subview = eview.structure.subview_of(self.pid)
        return self.automaton.mode_function.n_capable(subview.members)

    def _maybe_reconcile(self) -> None:
        """The synchronous Reconcile transition (Section 4): fire when
        the structure shows a single subview spanning the view and our
        state is fresh."""
        if self.mode is not Mode.SETTLING or not self.fresh:
            return
        eview = self.stack.eview if self.stack else None
        if eview is None:
            return
        if len(eview.structure.subviews) == 1:
            self.reconcile()
            self.settlement.on_reconciled()

    # ------------------------------------------------------------------
    # Settlement support
    # ------------------------------------------------------------------

    def make_offer(self, session) -> StateOffer:
        return StateOffer(
            session=session,
            sender=self.pid,
            snapshot=(
                self.snapshot_state(),
                frozenset(self._applied_ops),
                self.version,
            ),
            version=self.version,
            last_epoch=int(self.stack.storage.read(_EPOCH_KEY, 0)),
        )

    def on_direct(self, sender: ProcessId, payload: Any) -> None:
        if isinstance(payload, StateRequest):
            self.settlement.on_request(sender, payload)
        elif isinstance(payload, StateOffer):
            self.settlement.on_offer(sender, payload)
        else:
            self.on_app_direct(sender, payload)

    def on_app_direct(self, sender: ProcessId, payload: Any) -> None:
        """Hook for subclasses using point-to-point messages."""

    def _persist_meta(self) -> None:
        if self.stack is not None:
            self.stack.storage.write(_VERSION_KEY, self.version)
