"""State-transfer machinery (Section 4 / Section 5 discussion).

Two disciplines from the paper:

* **blocking** (Isis-style): the new view is not installed until the
  joiner holds the state.  Simple for the application — everyone in a
  view is always up to date — but the installation latency grows with
  the state size (see :mod:`repro.isis.transfer_tool` and E8).
* **two-piece**: "split the state into two parts: a (small) piece that
  needs to be transferred in synchrony with the join event; another
  (large) piece that can be transferred concurrently with application
  activity in the new view".  The view installs after one round trip;
  the bulk streams in the background over point-to-point messages,
  which need no view synchrony.

Both are built on the chunked transfer protocol here: one chunk per
message, next chunk on acknowledgement, so transferring ``n`` chunks
costs ``n`` round trips of simulated latency — the linear cost that E8
sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable

from repro.errors import ApplicationError
from repro.types import ProcessId

if TYPE_CHECKING:  # pragma: no cover
    from repro.vsync.stack import GroupStack

TransferId = tuple[ProcessId, int]


@dataclass(frozen=True)
class TChunk:
    """One chunk of a bulk transfer."""

    transfer: TransferId
    index: int
    payload: Any
    last: bool


@dataclass(frozen=True)
class TAck:
    """Receiver acknowledgement enabling the next chunk."""

    transfer: TransferId
    index: int


@dataclass(frozen=True)
class TSmallPiece:
    """The synchronous (small) half of a two-piece transfer."""

    transfer: TransferId
    payload: Any
    large_chunks: int


class ChunkSender:
    """Donor side: streams chunks to one peer, one per acknowledgement."""

    _counter = 0

    def __init__(
        self,
        stack: "GroupStack",
        peer: ProcessId,
        chunks: list[Any],
        on_done: Callable[[], None] | None = None,
    ) -> None:
        if not chunks:
            raise ApplicationError("transfer needs at least one chunk")
        ChunkSender._counter += 1
        self.transfer_id: TransferId = (stack.pid, ChunkSender._counter)
        self.stack = stack
        self.peer = peer
        self.chunks = chunks
        self.on_done = on_done
        self._next = 0
        self.done = False

    def start(self) -> TransferId:
        obs = self.stack.obs
        if obs is not None:
            obs.transfer_started(self.stack.pid, self.peer, self.stack.now)
        self._send(0)
        return self.transfer_id

    def _send(self, index: int) -> None:
        last = index == len(self.chunks) - 1
        self.stack.send_direct(
            self.peer, TChunk(self.transfer_id, index, self.chunks[index], last)
        )

    def on_ack(self, ack: TAck) -> None:
        if ack.transfer != self.transfer_id or self.done:
            return
        if ack.index == len(self.chunks) - 1:
            self.done = True
            obs = self.stack.obs
            if obs is not None:
                obs.transfer_done(self.stack.pid, self.peer, self.stack.now)
            if self.on_done is not None:
                self.on_done()
            return
        self._send(ack.index + 1)


class ChunkReceiver:
    """Joiner side: collects chunks, acks each, reports completion."""

    def __init__(
        self,
        stack: "GroupStack",
        on_complete: Callable[[list[Any]], None],
    ) -> None:
        self.stack = stack
        self.on_complete = on_complete
        self._collected: dict[TransferId, dict[int, Any]] = {}
        self.completed: list[TransferId] = []

    def on_chunk(self, src: ProcessId, chunk: TChunk) -> None:
        store = self._collected.setdefault(chunk.transfer, {})
        store[chunk.index] = chunk.payload
        self.stack.send_direct(src, TAck(chunk.transfer, chunk.index))
        if chunk.last and len(store) == chunk.index + 1:
            self.completed.append(chunk.transfer)
            payloads = [store[i] for i in range(len(store))]
            del self._collected[chunk.transfer]
            self.on_complete(payloads)


class TwoPieceTransfer:
    """Donor-side driver of the Section 5 two-piece discipline.

    ``small`` goes immediately (the receiver can enter the view after
    this single message); ``large_chunks`` then stream in the background.
    The receiver distinguishes the phases by message type.
    """

    def __init__(
        self,
        stack: "GroupStack",
        peer: ProcessId,
        small: Any,
        large_chunks: list[Any],
        on_done: Callable[[], None] | None = None,
    ) -> None:
        self.stack = stack
        self.peer = peer
        self.small = small
        self.sender = ChunkSender(stack, peer, large_chunks or [None], on_done)

    def start(self) -> TransferId:
        self.stack.send_direct(
            self.peer,
            TSmallPiece(
                self.sender.transfer_id,
                self.small,
                len(self.sender.chunks),
            ),
        )
        return self.sender.start()


def split_state(state: dict, small_keys: set, chunk_size: int) -> tuple[dict, list[dict]]:
    """Partition a dict state into (small piece, large chunks)."""
    small = {k: v for k, v in state.items() if k in small_keys}
    rest = sorted((k, v) for k, v in state.items() if k not in small_keys)
    chunks: list[dict] = []
    for start in range(0, len(rest), max(1, chunk_size)):
        chunks.append(dict(rest[start:start + max(1, chunk_size)]))
    return small, chunks or [{}]
