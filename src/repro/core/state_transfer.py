"""State-transfer machinery (Section 4 / Section 5 discussion).

Two disciplines from the paper:

* **blocking** (Isis-style): the new view is not installed until the
  joiner holds the state.  Simple for the application — everyone in a
  view is always up to date — but the installation latency grows with
  the state size (see :mod:`repro.isis.transfer_tool` and E8).
* **two-piece**: "split the state into two parts: a (small) piece that
  needs to be transferred in synchrony with the join event; another
  (large) piece that can be transferred concurrently with application
  activity in the new view".  The view installs after one round trip;
  the bulk streams in the background over point-to-point messages,
  which need no view synchrony.

Both are built on the chunked transfer protocol here: one chunk per
message, next chunk on acknowledgement, so transferring ``n`` chunks
costs ``n`` round trips of simulated latency — the linear cost that E8
sweeps.

The *incremental* layer below (:class:`IncrementalSender` /
:class:`IncrementalReceiver`, the ``TOffer`` / ``TResume`` messages)
extends the same chunk stream with what settlement at scale needs:

* **version-range diffs** — a donor that recognises the requester's
  ``(version, lineage digest)`` as a prefix of its own history ships
  only the missed operations, not the whole snapshot;
* **fixed-size snapshot chunking** — large snapshots split into
  ``chunk_size``-entry chunks (:func:`snapshot_chunks`) instead of one
  blob message;
* **a resumable cursor** — the receiver persists arrived chunks and the
  next expected index in the site's stable storage, so a crashed
  receiver's next incarnation resumes mid-stream (``TResume``) instead
  of starting over.

Everything here is announcement-first: the donor sends a ``TOffer``
describing the stream and waits for the receiver's ``TResume`` cursor
before the first chunk, so resumption costs one round trip and an empty
diff (receiver already current) costs zero chunks.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

from repro.errors import ApplicationError
from repro.types import ProcessId

if TYPE_CHECKING:  # pragma: no cover
    from repro.vsync.stack import GroupStack

TransferId = tuple[ProcessId, int]


def op_digest(digest: int, msg_id: Any) -> int:
    """Fold one applied operation into a lineage digest.

    XOR of a stable per-operation hash: order independent (adopt-time
    recomputation from the applied set needs no order), incremental (one
    XOR per apply), and *reversible* — a donor can compute what the
    requester's digest should be at an older version by XOR-ing its own
    log tail back out.  Uses crc32 over the repr, not ``hash()``, so the
    value agrees across realnet processes with randomised hash seeds.
    """
    return digest ^ zlib.crc32(repr(msg_id).encode())


@dataclass(frozen=True)
class TChunk:
    """One chunk of a bulk transfer."""

    transfer: TransferId
    index: int
    payload: Any
    last: bool


@dataclass(frozen=True)
class TAck:
    """Receiver acknowledgement enabling the next chunk."""

    transfer: TransferId
    index: int


@dataclass(frozen=True)
class TSmallPiece:
    """The synchronous (small) half of a two-piece transfer."""

    transfer: TransferId
    payload: Any
    large_chunks: int


class ChunkSender:
    """Donor side: streams chunks to one peer, one per acknowledgement."""

    _counter = 0

    def __init__(
        self,
        stack: "GroupStack",
        peer: ProcessId,
        chunks: list[Any],
        on_done: Callable[[], None] | None = None,
    ) -> None:
        if not chunks:
            raise ApplicationError("transfer needs at least one chunk")
        ChunkSender._counter += 1
        self.transfer_id: TransferId = (stack.pid, ChunkSender._counter)
        self.stack = stack
        self.peer = peer
        self.chunks = chunks
        self.on_done = on_done
        self._next = 0
        self.done = False

    def start(self) -> TransferId:
        obs = self.stack.obs
        if obs is not None:
            obs.transfer_started(self.stack.pid, self.peer, self.stack.now)
        self._send(0)
        return self.transfer_id

    def _send(self, index: int) -> None:
        last = index == len(self.chunks) - 1
        self.stack.send_direct(
            self.peer, TChunk(self.transfer_id, index, self.chunks[index], last)
        )

    def on_ack(self, ack: TAck) -> None:
        if ack.transfer != self.transfer_id or self.done:
            return
        if ack.index == len(self.chunks) - 1:
            self.done = True
            obs = self.stack.obs
            if obs is not None:
                obs.transfer_done(self.stack.pid, self.peer, self.stack.now)
            if self.on_done is not None:
                self.on_done()
            return
        self._send(ack.index + 1)


class ChunkReceiver:
    """Joiner side: collects chunks, acks each, reports completion."""

    def __init__(
        self,
        stack: "GroupStack",
        on_complete: Callable[[list[Any]], None],
    ) -> None:
        self.stack = stack
        self.on_complete = on_complete
        self._collected: dict[TransferId, dict[int, Any]] = {}
        self.completed: list[TransferId] = []

    def on_chunk(self, src: ProcessId, chunk: TChunk) -> None:
        store = self._collected.setdefault(chunk.transfer, {})
        store[chunk.index] = chunk.payload
        self.stack.send_direct(src, TAck(chunk.transfer, chunk.index))
        if chunk.last and len(store) == chunk.index + 1:
            self.completed.append(chunk.transfer)
            payloads = [store[i] for i in range(len(store))]
            del self._collected[chunk.transfer]
            self.on_complete(payloads)


class TwoPieceTransfer:
    """Donor-side driver of the Section 5 two-piece discipline.

    ``small`` goes immediately (the receiver can enter the view after
    this single message); ``large_chunks`` then stream in the background.
    The receiver distinguishes the phases by message type.
    """

    def __init__(
        self,
        stack: "GroupStack",
        peer: ProcessId,
        small: Any,
        large_chunks: list[Any],
        on_done: Callable[[], None] | None = None,
    ) -> None:
        self.stack = stack
        self.peer = peer
        self.small = small
        self.sender = ChunkSender(stack, peer, large_chunks or [None], on_done)

    def start(self) -> TransferId:
        self.stack.send_direct(
            self.peer,
            TSmallPiece(
                self.sender.transfer_id,
                self.small,
                len(self.sender.chunks),
            ),
        )
        return self.sender.start()


# -- incremental transfer (version diffs, chunking, resumable cursor) ------


@dataclass(frozen=True)
class TOffer:
    """Donor → requester: announcement of an incremental stream.

    ``kind`` is ``"diff"`` (chunks carry delta-log entries to replay on
    top of ``base_version``) or ``"snapshot"`` (chunks carry
    :func:`snapshot_chunks` pieces; ``base_version`` is -1).  The
    receiver answers with its :class:`TResume` cursor — 0 for a fresh
    stream, higher when resuming persisted progress, ``total_chunks``
    when it already holds everything (notably the empty diff).
    """

    transfer: TransferId
    session: Any
    kind: str
    total_chunks: int
    base_version: int
    target_version: int
    sender: ProcessId
    last_epoch: int
    #: Causal context the stream runs under (the settlement round's
    #: span when the transfer serves a settlement; tracing only).
    trace: Any = None


@dataclass(frozen=True)
class TResume:
    """Requester → donor: start (or restart) streaming at this index."""

    transfer: TransferId
    next_index: int


class IncrementalSender:
    """Donor side of one announced stream: offer, then ack-paced chunks
    from wherever the receiver's cursor says to start."""

    _counter = 0

    def __init__(
        self,
        stack: "GroupStack",
        peer: ProcessId,
        offer_of: Callable[[TransferId], TOffer],
        chunks: list[Any],
        on_done: Callable[[], None] | None = None,
    ) -> None:
        IncrementalSender._counter += 1
        self.transfer_id: TransferId = (stack.pid, IncrementalSender._counter)
        self.stack = stack
        self.peer = peer
        self.offer = offer_of(self.transfer_id)
        self.chunks = chunks
        self.on_done = on_done
        self.done = False

    def start(self) -> TransferId:
        obs = self.stack.obs
        if obs is not None:
            obs.transfer_started(self.stack.pid, self.peer, self.stack.now)
        self.stack.send_direct(self.peer, self.offer)
        return self.transfer_id

    def on_resume(self, msg: TResume) -> None:
        if msg.transfer != self.transfer_id or self.done:
            return
        if msg.next_index >= len(self.chunks):
            self._finish()
            return
        self._send(msg.next_index)

    def on_ack(self, ack: TAck) -> None:
        if ack.transfer != self.transfer_id or self.done:
            return
        if ack.index >= len(self.chunks) - 1:
            self._finish()
            return
        self._send(ack.index + 1)

    def _send(self, index: int) -> None:
        last = index == len(self.chunks) - 1
        self.stack.send_direct(
            self.peer, TChunk(self.transfer_id, index, self.chunks[index], last)
        )
        obs = self.stack.obs
        if obs is not None:
            obs.transfer_chunk_sent(self.stack.pid, self.offer.kind)

    def _finish(self) -> None:
        self.done = True
        obs = self.stack.obs
        if obs is not None:
            obs.transfer_done(
                self.stack.pid, self.peer, self.stack.now, trace=self.offer.trace
            )
        if self.on_done is not None:
            self.on_done()


@dataclass
class _RxStream:
    """Receiver-side state of one active incoming stream."""

    offer: TOffer
    donor: ProcessId
    chunks: dict[int, Any] = field(default_factory=dict)
    next_index: int = 0


def _partial_key(donor_site: Any) -> str:
    return f"transfer.partial.{donor_site}"


class IncrementalReceiver:
    """Requester side: answers offers with a cursor, persists progress.

    Progress (arrived chunks + next expected index) goes to the site's
    stable storage keyed by donor site, so the next incarnation of a
    crashed requester resumes where this one stopped — provided the
    donor re-offers the *same* stream (same kind and target version);
    any mismatch discards the partial and restarts from chunk 0.
    """

    def __init__(
        self,
        stack: "GroupStack",
        on_complete: Callable[[TOffer, list[Any]], None],
    ) -> None:
        self.stack = stack
        self.on_complete = on_complete
        self._active: dict[TransferId, _RxStream] = {}

    def owns(self, transfer: TransferId) -> bool:
        return transfer in self._active

    def on_offer(self, src: ProcessId, offer: TOffer) -> None:
        stream = _RxStream(offer=offer, donor=src)
        saved = self.stack.storage.read(_partial_key(src.site))
        if (
            isinstance(saved, dict)
            and saved.get("kind") == offer.kind
            and saved.get("target_version") == offer.target_version
            and saved.get("total") == offer.total_chunks
        ):
            stream.chunks = dict(saved["chunks"])
            stream.next_index = saved["next"]
            obs = self.stack.obs
            if obs is not None:
                obs.transfer_resumed(self.stack.pid)
        if stream.next_index >= offer.total_chunks:
            # Nothing left to stream — the empty diff, or a partial that
            # was fully persisted before the crash.  A cursor at the end
            # finishes the donor without a single chunk.
            self.stack.send_direct(src, TResume(offer.transfer, stream.next_index))
            self._finish(stream)
            return
        self._active[offer.transfer] = stream
        self.stack.send_direct(src, TResume(offer.transfer, stream.next_index))

    def on_chunk(self, src: ProcessId, chunk: TChunk) -> None:
        stream = self._active.get(chunk.transfer)
        if stream is None:
            return
        stream.chunks[chunk.index] = chunk.payload
        stream.next_index = max(stream.next_index, chunk.index + 1)
        self.stack.storage.write(
            _partial_key(stream.donor.site),
            {
                "kind": stream.offer.kind,
                "target_version": stream.offer.target_version,
                "total": stream.offer.total_chunks,
                "next": stream.next_index,
                "chunks": dict(stream.chunks),
            },
        )
        self.stack.send_direct(src, TAck(chunk.transfer, chunk.index))
        if stream.next_index >= stream.offer.total_chunks:
            # The ack of the last chunk finishes the donor side.
            del self._active[chunk.transfer]
            self._finish(stream)

    def _finish(self, stream: _RxStream) -> None:
        self.stack.storage.write(_partial_key(stream.donor.site), None)
        payloads = [stream.chunks[i] for i in range(stream.offer.total_chunks)]
        self.on_complete(stream.offer, payloads)


def snapshot_chunks(snapshot: Any, chunk_size: int) -> list[Any]:
    """Split a ``(state, applied-ops, version)`` settlement envelope into
    fixed-size chunks.

    Dict states large enough split item-wise alongside the applied-op
    identifiers; anything else rides whole as chunk 0.  Inverse:
    :func:`assemble_snapshot`.
    """
    state, applied, _version = snapshot
    size = max(1, chunk_size)
    chunks: list[Any] = []
    if isinstance(state, dict) and len(state) > size:
        items = sorted(state.items(), key=lambda kv: repr(kv[0]))
        for start in range(0, len(items), size):
            chunks.append(("state_part", tuple(items[start:start + size])))
    else:
        chunks.append(("state", state))
    ops = sorted(applied)
    for start in range(0, len(ops), size):
        chunks.append(("ops", tuple(ops[start:start + size])))
    return chunks


def assemble_snapshot(payloads: list[Any], version: int) -> Any:
    """Rebuild the settlement envelope from :func:`snapshot_chunks`."""
    state: Any = None
    parts: dict = {}
    split_state_seen = False
    ops: set = set()
    for tag, payload in payloads:
        if tag == "state":
            state = payload
        elif tag == "state_part":
            split_state_seen = True
            parts.update(dict(payload))
        elif tag == "ops":
            ops.update(payload)
    if split_state_seen:
        state = parts
    return (state, frozenset(ops), version)


def split_state(state: dict, small_keys: set, chunk_size: int) -> tuple[dict, list[dict]]:
    """Partition a dict state into (small piece, large chunks)."""
    small = {k: v for k, v in state.items() if k in small_keys}
    rest = sorted((k, v) for k, v in state.items() if k not in small_keys)
    chunks: list[dict] = []
    for start in range(0, len(rest), max(1, chunk_size)):
        chunks.append(dict(rest[start:start + max(1, chunk_size)]))
    return small, chunks or [{}]
