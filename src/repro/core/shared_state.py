"""The shared-state problem taxonomy (Section 4).

When a new view makes every member switch to S-mode, the members split
into two sets along the install cut:

* ``S_N`` — members that were in N-mode just before switching.  Their
  notion of the shared state is up to date.  ``S_N`` decomposes into
  *clusters*: members of the same cluster were in the same view while in
  N-mode; different clusters come from concurrent partitions.
* ``S_R`` — members that were *not* in N-mode (the paper says R-mode; we
  also place still-SETTLING and freshly joined processes here, since
  like R-mode processes their state is not known to be up to date).

The paper's necessary conditions, implemented by :func:`diagnose`:

* **state transfer**: ``S_R`` and ``S_N`` both non-empty;
* **state creation**: ``S_N`` empty, ``S_R`` non-empty;
* **state merging**: ``S_N`` has at least two clusters (may co-occur
  with transfer).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.types import ProcessId, ViewId


class Problem(str, enum.Enum):
    STATE_TRANSFER = "transfer"
    STATE_CREATION = "creation"
    STATE_MERGING = "merging"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class Diagnosis:
    """The shared-state situation at one S-mode entry.

    ``clusters`` partitions ``s_n`` by predecessor view; ``problems`` is
    the (possibly empty) set of applicable problem classes.
    """

    view_id: ViewId
    s_n: frozenset[ProcessId]
    s_r: frozenset[ProcessId]
    clusters: tuple[frozenset[ProcessId], ...]
    problems: frozenset[Problem]

    @property
    def label(self) -> str:
        """Canonical human-readable label, e.g. ``"transfer+merging"``."""
        if not self.problems:
            return "none"
        return "+".join(sorted(str(p) for p in self.problems))

    def __str__(self) -> str:
        return (
            f"Diagnosis({self.view_id}: {self.label}, "
            f"|S_N|={len(self.s_n)}, |S_R|={len(self.s_r)}, "
            f"clusters={len(self.clusters)})"
        )


def problems_from_sets(
    s_n_nonempty: bool, s_r_nonempty: bool, n_clusters: int
) -> frozenset[Problem]:
    """Apply the paper's necessary conditions to set cardinalities."""
    problems: set[Problem] = set()
    if s_r_nonempty and s_n_nonempty:
        problems.add(Problem.STATE_TRANSFER)
    if s_r_nonempty and not s_n_nonempty:
        problems.add(Problem.STATE_CREATION)
    if n_clusters >= 2:
        problems.add(Problem.STATE_MERGING)
    return frozenset(problems)


def diagnose(
    view_id: ViewId,
    prev_modes: dict[ProcessId, str],
    prev_views: dict[ProcessId, ViewId],
) -> Diagnosis:
    """Build the ground-truth diagnosis for one S-mode entry.

    ``prev_modes`` maps each member of the new view to the mode it was
    in just before the install cut ("N", "R" or "S"); ``prev_views``
    maps each member to its predecessor view.
    """
    s_n = frozenset(p for p, m in prev_modes.items() if m == "N")
    s_r = frozenset(p for p in prev_modes if p not in s_n)
    by_view: dict[ViewId, set[ProcessId]] = {}
    for pid in s_n:
        by_view.setdefault(prev_views[pid], set()).add(pid)
    clusters = tuple(
        frozenset(group) for _, group in sorted(by_view.items(), key=lambda kv: kv[0])
    )
    problems = problems_from_sets(bool(s_n), bool(s_r), len(clusters))
    return Diagnosis(view_id, s_n, s_r, clusters, problems)


@dataclass
class DiagnosisStats:
    """Aggregate of many diagnoses (used by E6/E7)."""

    total: int = 0
    by_label: dict[str, int] = field(default_factory=dict)
    max_clusters: int = 0

    def add(self, diagnosis: Diagnosis) -> None:
        self.total += 1
        self.by_label[diagnosis.label] = self.by_label.get(diagnosis.label, 0) + 1
        self.max_clusters = max(self.max_clusters, len(diagnosis.clusters))
