"""Run-time invariant monitoring for group objects.

The paper defines group-object correctness "through invariants over the
internal state" (Section 3).  This module lets an experiment or test
declare those invariants once and have them evaluated continuously over
a running cluster — catching violations at the instant they occur
instead of only at the end of a run.

Monitors attach to any :class:`~repro.ports.ClusterPort` — the sampling
loop arms on the port's timer surface and reads state through its
introspection methods, so the same invariants watch a simulated run and
a real-socket run.  ``interval`` is scenario units (scaled by the
cluster's ``time_scale`` like every workload cadence).

Two kinds of predicate:

* **global** — sees the whole cluster (all live applications at once);
  used for cross-replica properties such as "at most one lock holder".
  Global predicates may legitimately fail *while the group is
  settling*; monitors therefore support a ``settled_only`` flag that
  samples the predicate only when the cluster's membership has
  converged.
* **eventual** — checked once, by :meth:`InvariantMonitor.assert_eventually`,
  after the caller decides the system has quiesced (e.g. replica
  convergence after a repair).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import InvariantViolation
from repro.ports import ClusterPort


@dataclass
class Violation:
    """One observed invariant failure."""

    name: str
    time: float
    detail: Any = None

    def __str__(self) -> str:
        return f"[{self.name}] violated at t={self.time}: {self.detail}"


@dataclass
class _Invariant:
    name: str
    predicate: Callable[[ClusterPort], Any]
    settled_only: bool = False
    samples: int = 0
    failures: list[Violation] = field(default_factory=list)


class InvariantMonitor:
    """Samples declared invariants on a cluster at a fixed cadence.

    A predicate returns a truthy value when the invariant holds; a falsy
    value (or a raised AssertionError) records a violation with the
    returned/raised detail.  Other exceptions propagate — a crashing
    predicate is a bug in the experiment, not a violation.
    """

    def __init__(self, cluster: ClusterPort, interval: float = 10.0) -> None:
        self.cluster = cluster
        self.interval = interval
        self._invariants: list[_Invariant] = []
        self._started = False

    def declare(
        self,
        name: str,
        predicate: Callable[[ClusterPort], Any],
        settled_only: bool = False,
    ) -> "InvariantMonitor":
        """Register an invariant; chainable."""
        self._invariants.append(_Invariant(name, predicate, settled_only))
        return self

    def start(self) -> "InvariantMonitor":
        """Arm the sampling loop on the cluster's scheduler."""
        if not self._started:
            self._started = True
            self._arm()
        return self

    def _arm(self) -> None:
        self.cluster.after(self.interval * self.cluster.time_scale, self._sample)

    def _sample(self) -> None:
        settled = None
        for invariant in self._invariants:
            if invariant.settled_only:
                if settled is None:
                    settled = self.cluster.is_settled()
                if not settled:
                    continue
            invariant.samples += 1
            self._evaluate(invariant)
        self._arm()

    def _evaluate(self, invariant: _Invariant) -> None:
        try:
            result = invariant.predicate(self.cluster)
        except AssertionError as exc:
            result = False
            detail: Any = str(exc)
        else:
            detail = result
        if not result:
            invariant.failures.append(
                Violation(invariant.name, self.cluster.now, detail)
            )

    # -- results -----------------------------------------------------------

    @property
    def violations(self) -> list[Violation]:
        return [v for inv in self._invariants for v in inv.failures]

    def samples(self, name: str) -> int:
        for invariant in self._invariants:
            if invariant.name == name:
                return invariant.samples
        raise KeyError(name)

    def assert_clean(self) -> None:
        """Raise :class:`InvariantViolation` if anything ever failed."""
        if self.violations:
            first = self.violations[0]
            raise InvariantViolation(
                f"{len(self.violations)} invariant violations; first: {first}"
            )

    def assert_eventually(self, name: str, predicate: Callable[[ClusterPort], Any]) -> None:
        """One-shot check for quiescent-state properties."""
        if not predicate(self.cluster):
            raise InvariantViolation(f"eventual invariant {name!r} does not hold")


# ---------------------------------------------------------------------------
# Stock predicates for the example objects
# ---------------------------------------------------------------------------


def _live_apps(cluster: ClusterPort) -> list[Any]:
    """Applications hosted on currently-live members, in site order."""
    return [
        cluster.app_at(stack.pid.site)
        for stack in sorted(cluster.live_stacks(), key=lambda s: s.pid.site)
    ]


def replicas_converged(state_of: Callable[[Any], Any]) -> Callable[[ClusterPort], Any]:
    """All live, fresh, NORMAL-mode replicas expose identical state."""

    def predicate(cluster: ClusterPort) -> bool:
        from repro.core.modes import Mode

        states = [
            state_of(app)
            for app in _live_apps(cluster)
            if getattr(app, "mode", None) is Mode.NORMAL
        ]
        return all(state == states[0] for state in states) if states else True

    return predicate


def at_most_one_lock_holder(cluster: ClusterPort) -> bool:
    """Global mutual exclusion over :class:`MajorityLockManager` apps."""
    from repro.core.modes import Mode

    holders = {
        app.holder
        for app in _live_apps(cluster)
        if getattr(app, "mode", None) is Mode.NORMAL and app.holder is not None
    }
    return len(holders) <= 1


def responsibility_exact(cluster: ClusterPort) -> bool:
    """Parallel-lookup DBs: settled slices partition the bucket space."""
    from repro.apps.replicated_db import _BUCKETS
    from repro.core.modes import Mode

    slices = [
        app.responsibility()
        for app in _live_apps(cluster)
        if app.mode is Mode.NORMAL
    ]
    if not slices:
        return True
    union: set[int] = set().union(*slices)
    return union == set(range(_BUCKETS)) and sum(map(len, slices)) == _BUCKETS
