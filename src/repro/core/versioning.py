"""Op-log versioning helpers shared by the group-object applications.

Three concerns every replicated abstract data type in ``repro.apps``
kept reimplementing privately are extracted here so the versioned
record store, the quorum file and the lock manager consume one
implementation:

* **Provenance** — the ``(view_epoch, writer, seq)`` coordinate of one
  applied external operation, derived from its :class:`~repro.types.
  MessageId`.  Provenance totally orders writes system-wide (epochs
  grow along every history; within an epoch the writer identifier and
  its per-view sequence number break ties) and names them stably across
  partitions, merges and state transfers.
* **Version chains** — append-only per-key histories of
  :class:`VersionEntry` records.  :func:`merge_chains` is the
  deterministic provenance-union reconciliation used when divergent
  partitions repair: every entry from every donor survives exactly
  once, ordered by provenance.
* **Quorum tallies** — the acknowledgement bookkeeping of
  quorum-acked writes (pending handles, vote counting, the early-ack
  race with synchronous self-delivery), previously private to
  ``replicated_file``.

:func:`newest_incarnations` addresses a subtle state-merge hazard: a
site that crashed, recovered and then partitioned can appear in the
offer set *twice* — once through a donor cluster that still carries the
retired incarnation's state and once as its live incarnation.  Merge
policies that fold offers in ``(version, sender)`` order would let the
retired copy shadow the newer one.  Filtering to the newest incarnation
per site first makes any downstream fold safe.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable, Mapping

from repro.types import MessageId, ProcessId, SiteId

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.group_object import AppStateOffer

__all__ = [
    "Provenance",
    "VersionEntry",
    "QuorumTally",
    "provenance_of",
    "merge_chains",
    "newest_incarnations",
]


@dataclass(frozen=True, order=True)
class Provenance:
    """Where one write came from: ``(view_epoch, writer, seq)``.

    The triple is a projection of the write's :class:`MessageId` that
    drops the view coordinator: coordinators differ between concurrent
    partitions with equal epochs, and provenance must order such writes
    the same way at every site, so only writer identity breaks the tie.
    """

    view_epoch: int
    writer: ProcessId
    seq: int

    def __str__(self) -> str:
        return f"w{self.view_epoch}/{self.writer}/{self.seq}"


def provenance_of(msg_id: MessageId) -> Provenance:
    """The provenance coordinate of the operation multicast ``msg_id``."""
    return Provenance(msg_id.view.epoch, msg_id.sender, msg_id.seqno)


@dataclass(frozen=True)
class VersionEntry:
    """One link of a per-key version chain.

    ``client``/``client_seq`` identify the external request that caused
    the write (empty for writes submitted by the group members
    themselves); they are what makes client retries after a view change
    idempotent.
    """

    value: Any
    prov: Provenance
    client: str = ""
    client_seq: int = 0


def merge_chains(
    chains: Iterable[tuple[VersionEntry, ...]]
) -> tuple[VersionEntry, ...]:
    """Provenance-union of divergent version chains for one key.

    Every entry from every chain survives exactly once (entries are
    identical iff their provenance is — a write has one coordinate no
    matter which partition's chain carried it here), ordered by
    provenance.  Deterministic in the set of input entries, so every
    member of a merging view computes the same chain.
    """
    by_prov: dict[Provenance, VersionEntry] = {}
    for chain in chains:
        for entry in chain:
            by_prov.setdefault(entry.prov, entry)
    return tuple(by_prov[p] for p in sorted(by_prov))


def newest_incarnations(offers: list["AppStateOffer"]) -> list["AppStateOffer"]:
    """Drop state offers attributed to retired incarnations.

    For each site represented in ``offers`` keep only the offers whose
    sender is that site's newest incarnation present; among several
    offers from the same incarnation (possible when donor clusters
    overlap) keep the highest-version one.  The result preserves the
    input's deterministic usability: equal inputs give equal outputs.
    """
    newest: dict[SiteId, ProcessId] = {}
    for offer in offers:
        pid = offer.sender
        cur = newest.get(pid.site)
        if cur is None or pid.incarnation > cur.incarnation:
            newest[pid.site] = pid
    best: dict[ProcessId, "AppStateOffer"] = {}
    for offer in offers:
        if newest[offer.sender.site] != offer.sender:
            continue
        cur = best.get(offer.sender)
        if cur is None or offer.version > cur.version:
            best[offer.sender] = offer
    return [best[pid] for pid in sorted(best)]


@dataclass
class _PendingAck:
    """Tally-internal view of one pending quorum-acked operation."""

    handle: Any
    ackers: set[ProcessId] = field(default_factory=set)
    votes: int = 0


class QuorumTally:
    """Acknowledgement bookkeeping for quorum-acked writes.

    The owning group object multicasts an operation, registers the
    returned message identifier with :meth:`open`, counts replica
    acknowledgements with :meth:`ack` and aborts everything still
    pending on a view change with :meth:`abort_all`.  The tally also
    handles the *early-ack* race: self-delivery is synchronous inside
    ``multicast``, so our own replica's acknowledgement can arrive
    before ``open`` registers the handle; it parks until then.

    Handles are duck-typed: they must expose mutable ``status``
    (``"pending"`` until the tally sets ``"committed"``/``"aborted"``),
    ``ackers`` (set of replicas counted) and ``acked_votes`` fields.
    """

    def __init__(self, votes: Mapping[SiteId, int]) -> None:
        self.votes = dict(votes)
        self._total = sum(self.votes.values())
        self._pending: dict[MessageId, Any] = {}
        self._early: dict[MessageId, set[ProcessId]] = {}

    def __len__(self) -> int:
        return len(self._pending)

    def open(self, msg_id: MessageId, handle: Any, my_pid: ProcessId) -> Any | None:
        """Track ``handle`` until quorum; drain parked early acks.

        Returns the handle if the drained acks already commit it (a
        single-site quorum), else ``None``.
        """
        self._pending[msg_id] = handle
        committed = None
        for replica in sorted(self._early.pop(msg_id, set())):
            done = self.ack(msg_id, replica, my_pid)
            if done is not None:
                committed = done
        return committed

    def ack(
        self, msg_id: MessageId, replica: ProcessId, my_pid: ProcessId
    ) -> Any | None:
        """Count one replica's acknowledgement.

        Returns the handle when this acknowledgement commits it, else
        ``None``.  Acks for an unknown message we ourselves sent are
        parked for :meth:`open`; anything else is a stale ack for an
        operation already committed or aborted and is dropped.
        """
        handle = self._pending.get(msg_id)
        if handle is None:
            if msg_id.sender == my_pid:
                self._early.setdefault(msg_id, set()).add(replica)
            return None
        if handle.done or replica in handle.ackers:
            return None
        handle.ackers.add(replica)
        handle.acked_votes += self.votes.get(replica.site, 0)
        if 2 * handle.acked_votes > self._total:
            handle.status = "committed"
            del self._pending[msg_id]
            return handle
        return None

    def abort_all(self) -> list[Any]:
        """Abort every pending handle (view change: the quorum can no
        longer be certified in the view the write was issued in)."""
        aborted = list(self._pending.values())
        for handle in aborted:
            handle.status = "aborted"
        self._pending.clear()
        self._early.clear()
        return aborted
