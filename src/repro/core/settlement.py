"""The Section 6.2 settlement protocol.

This is the internal-operations engine behind
:class:`~repro.core.group_object.GroupObject`, implementing the paper's
methodology: *external operations are performed within a subview;
internal operations are performed across subviews belonging to the same
sv-set; upon successful completion of an internal operation, the
corresponding subviews are merged into a single one.*

One settlement session, led by the least view member:

1. **mark** — merge all sv-sets into one, marking every member as a
   participant of the internal operation;
2. **collect** — classify the situation from the e-view structure
   (:func:`~repro.core.classify.classify_enriched`) and request state
   from the responders it identifies: one representative per donor
   subview, or everybody for state creation;
3. **decide** — a single donor's snapshot is adopted as-is; multiple
   donors go through the application's ``merge_states``; creation goes
   through ``choose_creation_state``;
4. **adopt** — the decision is multicast view-synchronously; every
   member installs it;
5. **collapse** — all subviews are merged into one; each member seeing
   a single subview spanning the view, with fresh state, performs the
   (synchronous) Reconcile transition back to N-mode.

The *continuation rule* is the paper's §6.2 punchline: because subview
and sv-set composition can only shrink underneath a running internal
operation, the session survives a view change whenever the processes it
is still waiting on survive — with ``enriched_continuation=False`` the
engine instead restarts on every view change, which is all a flat-view
application can safely do.  Experiment E9 measures the difference.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Any

from repro.core.classify import classify_enriched
from repro.core.mode_functions import Capability
from repro.evs.eview import EView
from repro.fuzz import bugs as _fuzz_bugs
from repro.trace.events import AppEvent
from repro.types import ProcessId

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.group_object import GroupObject

SessionId = tuple[ProcessId, int]


@dataclass(frozen=True)
class StateRequest:
    """Leader -> responder: please offer your state.

    The three incremental-transfer fields default to the legacy
    whole-blob protocol, so old peers interoperate in both directions:
    ``accepts_chunks`` advertises that the requester understands
    ``TOffer``-announced chunk streams, and ``have_version`` /
    ``have_digest`` describe the requester's current operation lineage
    (:func:`repro.core.state_transfer.op_digest`) so a donor can answer
    with a version-range diff instead of a snapshot.
    """

    session: SessionId
    accepts_chunks: bool = False
    have_version: int = -1
    have_digest: int = 0
    #: Causal context of the leader's settle.round span (tracing only).
    trace: Any = None


@dataclass(frozen=True)
class StateOffer:
    """Responder -> leader: snapshot plus selection metadata."""

    session: SessionId
    sender: ProcessId
    snapshot: Any
    version: int
    last_epoch: int  # highest view epoch persisted before this offer
    trace: Any = None  # settle.round context, echoed from the request


@dataclass(frozen=True)
class StateAdopt:
    """Leader -> view (view-synchronous): the reconstructed state.

    ``view_id`` names the view whose e-view structure the decision was
    made under.  A decision is only installable in that view: a
    multicast straddling a view change can be reassigned to the next
    view by the membership layer, where the donor set may have grown
    (a healed branch, a recovered incarnation) — installing it there
    would overwrite state the decision never merged.  Receivers drop
    such strays; the session re-issues (or restarts and re-decides)
    under the new view.
    """

    session: SessionId
    state: Any
    view_id: Any = None
    trace: Any = None  # settle.round context (tracing only)


@dataclass
class _Session:
    session_id: SessionId
    responders: frozenset[ProcessId]
    offers: dict[ProcessId, StateOffer] = field(default_factory=dict)
    kind: str = "transfer"
    adopted_sent: bool = False

    @property
    def pending(self) -> frozenset[ProcessId]:
        return self.responders - frozenset(self.offers)


@dataclass
class SettlementStats:
    """Counters for E9."""

    sessions_started: int = 0
    sessions_restarted: int = 0
    sessions_continued: int = 0
    sessions_completed: int = 0


class SettlementEngine:
    """Leader-side driver plus member-side hooks of the protocol."""

    def __init__(self, obj: "GroupObject", enriched_continuation: bool = True) -> None:
        self.obj = obj
        self.enriched_continuation = enriched_continuation
        self.session: _Session | None = None
        self._counter = 0
        self.stats = SettlementStats()
        self._retry_interval = 20.0
        self._retry_timer = None

    # -- leadership --------------------------------------------------------

    def _i_lead(self, eview: EView) -> bool:
        return min(eview.members) == self.obj.pid

    def _needed(self, eview: EView) -> bool:
        fn = self.obj.automaton.mode_function
        if fn.capability(eview) is not Capability.FULL:
            return False  # cannot reach N-mode anyway; wait for repair
        if len(eview.structure.subviews) > 1:
            return True
        return self.obj.mode is not None and str(self.obj.mode) == "S"

    # -- events from the group object -------------------------------------------

    def _session_valid(self, eview: EView) -> bool:
        """Whether the running session may keep driving this e-view.

        The continuation rule is only sound while the donor structure
        *shrinks*: a view change that surfaces a donor subview the
        session is not collecting from (a healed partition branch, a
        recovered incarnation carrying state) must restart the session,
        or the adopt would overwrite that branch's state without ever
        merging it.  Likewise a creation session must restart when a
        donor appears or a new member (a potential last-to-fail
        candidate) joins, and any session is moot once the view lost
        FULL capability.
        """
        session = self.session
        assert session is not None
        fn = self.obj.automaton.mode_function
        if fn.capability(eview) is not Capability.FULL:
            return False
        verdict = classify_enriched(eview, fn.n_capable)
        if session.kind == "creation":
            return (
                not verdict.donor_subviews
                and eview.members <= session.responders
            )
        if not verdict.donor_subviews:
            return False
        reps = {min(sv.members) for sv in verdict.donor_subviews}
        return reps <= session.responders

    def on_view(self, eview: EView) -> None:
        """A view change: continue the session if allowed, else restart."""
        self._arm_retry()
        if self.session is not None:
            survivors_ok = (
                self.session.pending <= eview.members
                and self._session_valid(eview)
            )
            if self.enriched_continuation and survivors_ok and self._i_lead(eview):
                self.stats.sessions_continued += 1
                # The new view invalidates the previous adopt multicast:
                # members that entered without fresh state (the view
                # change may have demoted donors) need the decision
                # re-issued, and StateAdopt application is idempotent.
                self.session.adopted_sent = False
                self._progress(eview)
                return
            self._abandon()
        self.maybe_start(eview)

    def on_eview(self, eview: EView) -> None:
        self._progress(eview)

    def maybe_start(self, eview: EView) -> None:
        if not self._i_lead(eview) or not self._needed(eview):
            return
        if self.session is not None:
            return
        self._counter += 1
        verdict = classify_enriched(
            eview, self.obj.automaton.mode_function.n_capable
        )
        if verdict.donor_subviews and _fuzz_bugs.active("lost_settlement"):
            # Planted bug (test-only): the leader silently never starts
            # transfer/merge sessions, so a process that joined after
            # the initial creation never reconciles back to N-mode.
            return
        if verdict.donor_subviews:
            responders = frozenset(
                min(sv.members) for sv in verdict.donor_subviews
            )
            kind = "merge" if len(verdict.donor_subviews) > 1 else "transfer"
        else:
            if getattr(self.obj, "creation_requires_all_sites", False):
                # Skeen-safe creation: recreating from a subset of the
                # group risks missing the true last process to fail;
                # wait until every site of the universe has recovered.
                present = {p.site for p in eview.members}
                expected = set(self.obj.stack.universe_sites())
                if not expected <= present:
                    self._record(
                        "settle_wait_all_sites",
                        {"present": len(present), "expected": len(expected)},
                    )
                    return
            responders = eview.members
            kind = "creation"
        session = _Session(
            session_id=(self.obj.pid, self._counter),
            responders=responders,
            kind=kind,
        )
        self.session = session
        self.stats.sessions_started += 1
        self._record("settle_start", {"kind": kind, "responders": len(responders)})
        self._progress(eview)
        self._arm_retry()

    # -- the protocol ----------------------------------------------------------------

    def _progress(self, eview: EView) -> None:
        """Drive whichever phase is currently incomplete."""
        session = self.session
        if session is None or not self._i_lead(eview):
            return
        if not session.adopted_sent and not self._session_valid(eview):
            # The structure changed underneath the session (see
            # _session_valid); restart so the new donor set is heard.
            # A session whose adopt is already out keeps driving its
            # collapse phase — the decision was made under a structure
            # the adopt's view-synchronous delivery matches.
            self._abandon()
            self.maybe_start(eview)
            return
        stack = self.obj.stack
        assert stack is not None
        # Phase 1: mark -- collapse sv-sets into one.
        ssids = [ss.ssid for ss in eview.structure.svsets]
        if len(ssids) > 1:
            stack.sv_set_merge(ssids)
            return  # resume from on_eview when the change lands
        obs = stack.obs
        ctx = obs.settle_ctx(self.obj.pid) if obs is not None else None
        # Phase 2: collect.
        if session.pending:
            request = self.obj.build_state_request(session.session_id)
            if ctx is not None:
                request = replace(request, trace=ctx)
            for responder in session.pending:
                if responder == self.obj.pid:
                    self._offer_locally(request)
                else:
                    stack.send_direct(responder, request)
            return
        # Phase 3 + 4: decide and adopt.
        if not session.adopted_sent:
            state = self._decide(session)
            session.adopted_sent = True
            stack.multicast(
                StateAdopt(session.session_id, state, eview.view_id, trace=ctx),
                ctx,
            )
            return
        # Phase 5: collapse subviews once everyone could adopt.
        sids = [sv.sid for sv in eview.structure.subviews]
        if len(sids) > 1 and self.obj.fresh:
            stack.subview_merge(sids)

    def _decide(self, session: _Session) -> Any:
        offers = list(session.offers.values())
        if session.kind == "creation":
            chosen = self.obj.choose_creation_state(offers)
        elif len(offers) == 1:
            chosen = offers[0].snapshot
        else:
            chosen = self.obj.merge_states(offers)
        if _fuzz_bugs.active("stale_transfer") and session.kind != "creation":
            # Planted bug (test-only): the leader ignores the donors and
            # adopts its own state — stale whenever it was not a donor.
            chosen = (
                self.obj.snapshot_state(),
                frozenset(getattr(self.obj, "_applied_ops", ())),
                self.obj.version,
            )
        # The versions of every offer plus the adopted one go into the
        # trace: the StaleStateTransfer detector (repro.fuzz.checkers)
        # flags a transfer/merge that adopted less than the best offer.
        chosen_version = (
            chosen[2]
            if isinstance(chosen, tuple)
            and len(chosen) == 3
            and isinstance(chosen[2], int)
            else None
        )
        self._record(
            "settle_decide",
            {
                "kind": session.kind,
                "offers": len(offers),
                "versions": tuple(sorted(o.version for o in offers)),
                "chosen_version": chosen_version,
            },
        )
        return chosen

    def _offer_locally(self, request: StateRequest) -> None:
        offer = self.obj.make_offer(request.session)
        if request.trace is not None:
            offer = replace(offer, trace=request.trace)
            obs = self.obj.stack.obs if self.obj.stack else None
            if obs is not None:
                obs.settle_offer(
                    self.obj.pid, self.obj.stack.now, request.trace
                )
        self.on_offer(self.obj.pid, offer)

    # -- message hooks (wired through the group object) ---------------------------------

    def on_request(self, src: ProcessId, request: StateRequest) -> None:
        # The group object picks the reply shape — whole-blob StateOffer
        # or an incremental chunk stream — from the request's fields and
        # its own transfer configuration.
        self.obj.answer_state_request(src, request)

    def on_offer(self, src: ProcessId, offer: StateOffer) -> None:
        session = self.session
        if session is None or offer.session != session.session_id:
            return
        session.offers[offer.sender] = offer
        eview = self.obj.stack.eview if self.obj.stack else None
        if eview is not None and not session.pending:
            self._progress(eview)

    def on_adopt_delivered(self) -> None:
        """Called by the group object after it installed an adopt."""
        eview = self.obj.stack.eview if self.obj.stack else None
        if eview is not None:
            self._progress(eview)

    def on_reconciled(self) -> None:
        if self.session is not None:
            self.stats.sessions_completed += 1
            self._record("settle_done", {"kind": self.session.kind})
            self.session = None

    # -- plumbing -------------------------------------------------------------------------

    def _abandon(self) -> None:
        if self.session is not None:
            self.stats.sessions_restarted += 1
            self._record("settle_abandon", {"kind": self.session.kind})
            self.session = None

    def _arm_retry(self) -> None:
        stack = self.obj.stack
        if stack is None or not stack.alive:
            return
        if self._retry_timer is None or not self._retry_timer.active:
            self._retry_timer = stack.set_periodic(
                self._retry_interval, self._retry
            )

    def _retry(self) -> None:
        stack = self.obj.stack
        if stack is None or stack.eview is None:
            return
        if self.session is not None:
            self._progress(stack.eview)
        else:
            self.maybe_start(stack.eview)

    def _record(self, tag: str, data: Any) -> None:
        stack = self.obj.stack
        if stack is not None:
            stack.recorder.record(
                AppEvent(time=stack.now, pid=stack.pid, tag=tag, data=data)
            )
            obs = stack.obs
            if obs is not None:
                kind = data.get("kind", "") if isinstance(data, dict) else ""
                obs.settlement_event(stack.pid, tag, kind, stack.now)
