"""State creation after total failures (Section 4, citing Skeen [11]).

"Identifying which local state is to be used for recreation of the
others may require determining the last process to fail."  We implement
the stable-storage flavour of that idea: every group object persists the
epoch of each view it installs; after a total failure the recovered
processes offer their persisted ``last_epoch``, and the process that
installed the highest-epoch view is (one of) the last to fail — its
permanent state has seen every update any quorum ever acknowledged.

Ties on epoch are broken by the persisted state version, then by
process identifier, so every member of the creation protocol picks the
same winner deterministically.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from repro.errors import ApplicationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.settlement import StateOffer


def last_to_fail_order(offers: Sequence["StateOffer"]) -> list["StateOffer"]:
    """Offers sorted best-first by the last-to-fail criterion."""
    return sorted(
        offers,
        key=lambda o: (o.last_epoch, o.version, o.sender),
        reverse=True,
    )


def choose_by_last_to_fail(offers: Sequence["StateOffer"]) -> "StateOffer":
    """The offer to recreate global state from."""
    if not offers:
        raise ApplicationError("state creation with no candidate states")
    return last_to_fail_order(offers)[0]


def creation_is_safe(offers: Sequence["StateOffer"], expected_sites: int) -> bool:
    """Conservative safety test: did every site of the group offer?

    Recreating from a subset risks missing the true last-to-fail
    process.  Applications that cannot tolerate that (the paper's
    "determining the last process to fail" requirement) should wait for
    all sites before creating; this predicate is that check.
    """
    return len({o.sender.site for o in offers}) >= expected_sites
