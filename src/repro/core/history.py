"""Process histories (Section 3).

The paper defines the history ``h_p`` of a process as the sequence of
its ``dlvr`` and ``vchg`` events, with the mode after ``i`` events given
by a mode function over the prefix ``h_p[i]``.  This module materialises
histories from a recorded trace so tests and classifiers can reason the
way the paper does.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.trace.events import DeliveryEvent, TraceEvent, ViewInstallEvent
from repro.trace.recorder import TraceRecorder
from repro.types import ProcessId, ViewId


@dataclass(frozen=True)
class History:
    """The ordered ``dlvr`` / ``vchg`` events of one process."""

    pid: ProcessId
    events: tuple[TraceEvent, ...]

    def prefix(self, n: int) -> "History":
        """The initial prefix ``h_p[n]``."""
        return History(self.pid, self.events[:n])

    def __len__(self) -> int:
        return len(self.events)

    @property
    def view_changes(self) -> tuple[ViewInstallEvent, ...]:
        return tuple(e for e in self.events if isinstance(e, ViewInstallEvent))

    @property
    def deliveries(self) -> tuple[DeliveryEvent, ...]:
        return tuple(e for e in self.events if isinstance(e, DeliveryEvent))

    @property
    def current_view(self) -> ViewId | None:
        for event in reversed(self.events):
            if isinstance(event, ViewInstallEvent):
                return event.view_id
        return None

    def joined_first(self) -> bool:
        """The paper's well-formedness condition: the first event of a
        history is the view change corresponding to joining the group."""
        if not self.events:
            return True
        return isinstance(self.events[0], ViewInstallEvent)


def history_of(rec: TraceRecorder, pid: ProcessId) -> History:
    """Extract ``h_p`` from a recorded trace."""
    events = tuple(
        e
        for e in rec.events
        if isinstance(e, (DeliveryEvent, ViewInstallEvent)) and e.pid == pid
    )
    return History(pid, events)


class HistoryModeFunction:
    """The paper's general mode function: :math:`f(h_p[i])`.

    Section 3 defines the mode of a process after ``i`` events as a
    function of the initial prefix of its history; the run-time mode
    functions in :mod:`repro.core.mode_functions` use the simplified
    view-only form, while this class supports the general definition for
    *post-hoc analysis* of recorded traces: evaluate any
    history-predicate at every prefix and get the induced mode sequence.

    ``classify`` maps a :class:`History` prefix to a mode string
    ("N"/"R"/"S"); :meth:`mode_sequence` evaluates it after every event,
    "re-evaluating f each time view synchrony delivers a new event",
    exactly as the paper prescribes.
    """

    def __init__(self, classify) -> None:
        self.classify = classify

    def mode_after(self, history: History, n_events: int) -> str:
        return self.classify(history.prefix(n_events))

    def mode_sequence(self, history: History) -> list[str]:
        return [
            self.classify(history.prefix(i))
            for i in range(1, len(history) + 1)
        ]

    def transitions(self, history: History) -> list[tuple[str, str]]:
        """The (old, new) mode pairs the induced sequence walks through."""
        sequence = self.mode_sequence(history)
        return [
            (a, b) for a, b in zip(sequence, sequence[1:]) if a != b
        ]


def all_histories(rec: TraceRecorder) -> dict[ProcessId, History]:
    pids = {
        e.pid
        for e in rec.events
        if isinstance(e, (DeliveryEvent, ViewInstallEvent))
    }
    return {pid: history_of(rec, pid) for pid in sorted(pids)}
