"""Core identifier types shared across every layer.

The paper's system model (Section 2) assumes an *infinite name space of
process identifiers*: a recovering process takes a fresh identifier, so
identifiers never repeat across crashes.  We realise this with
:class:`ProcessId` — a pair of a stable *site* number and a monotonically
increasing *incarnation* number managed by the site's stable storage.

View identifiers (:class:`ViewId`) are pairs ``(epoch, coordinator)``
ordered lexicographically; concurrent partitions produce distinct view
identifiers because either the epoch or the installing coordinator
differs.  Message identifiers (:class:`MessageId`) are ``(sender, view,
seqno)`` triples: the embedded view is what lets the delivery rule
enforce Uniqueness (Property 2.2) purely locally.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

SiteId = int


@dataclass(frozen=True, order=True)
class ProcessId:
    """Identifier of one incarnation of a process at a site.

    Ordering is lexicographic on ``(site, incarnation)``; the membership
    protocol uses the minimum live identifier as view coordinator.

    The hash is precomputed: identifiers key every hot dict and set in
    the simulator (delivery maps, reachability estimates, link clocks),
    and the generated dataclass ``__hash__`` would rebuild a field tuple
    on each call.
    """

    site: SiteId
    incarnation: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "_hash", hash((self.site, self.incarnation)))

    def __hash__(self) -> int:
        return self._hash  # type: ignore[attr-defined]

    def __str__(self) -> str:
        return f"p{self.site}.{self.incarnation}"

    def next_incarnation(self) -> "ProcessId":
        """Identifier assigned to this site's process after a recovery."""
        return ProcessId(self.site, self.incarnation + 1)


@dataclass(frozen=True, order=True)
class ViewId:
    """Identifier of an installed view: ``(epoch, coordinator)``.

    Epochs grow monotonically along every process history (a coordinator
    picks ``1 + max`` over every epoch reported in flush replies), so a
    process never installs a view with a smaller identifier than its
    current one.
    """

    epoch: int
    coordinator: ProcessId

    def __post_init__(self) -> None:
        object.__setattr__(self, "_hash", hash((self.epoch, self.coordinator)))

    def __hash__(self) -> int:
        return self._hash  # type: ignore[attr-defined]

    def __str__(self) -> str:
        return f"v{self.epoch}@{self.coordinator}"


@dataclass(frozen=True, order=True)
class MessageId:
    """Identifier of an application multicast.

    ``seqno`` numbers the sender's multicasts *within* ``view`` starting
    from 1, giving per-sender FIFO order and gap detection for free.
    """

    sender: ProcessId
    view: ViewId
    seqno: int

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "_hash", hash((self.sender, self.view, self.seqno))
        )

    def __hash__(self) -> int:
        return self._hash  # type: ignore[attr-defined]

    def __str__(self) -> str:
        return f"m({self.sender},{self.view},{self.seqno})"


@dataclass(frozen=True, order=True)
class SubviewId:
    """Identifier of a subview.

    Subviews are created either by the membership service (singletons for
    fresh processes, projections of old subviews onto survivors) or by
    application-requested merges.  The ``(view_epoch, origin, counter)``
    triple makes identifiers unique across the whole execution.
    """

    view_epoch: int
    origin: ProcessId
    counter: int

    def __str__(self) -> str:
        return f"sv({self.view_epoch},{self.origin},{self.counter})"


@dataclass(frozen=True, order=True)
class SvSetId:
    """Identifier of a subview set (sv-set); same uniqueness scheme."""

    view_epoch: int
    origin: ProcessId
    counter: int

    def __str__(self) -> str:
        return f"ss({self.view_epoch},{self.origin},{self.counter})"


@dataclass(frozen=True)
class Message:
    """An application multicast as carried by the network.

    ``payload`` is opaque to every protocol layer.  ``eview_seq`` is the
    sender's enriched-view sequence number at multicast time; receivers
    delay delivery until they have applied that e-view change, which is
    exactly what makes e-view changes consistent cuts (Property 6.2).
    ``trace`` is the causal context of the send (tracing only; ``None``
    — zero wire bytes — when tracing is off).
    """

    msg_id: MessageId
    payload: Any = None
    eview_seq: int = 0
    trace: Any = None

    def __str__(self) -> str:
        return f"Message({self.msg_id}, eview_seq={self.eview_seq})"


def min_process(pids: "set[ProcessId] | frozenset[ProcessId]") -> ProcessId:
    """Deterministic coordinator choice: the least process identifier."""
    if not pids:
        raise ValueError("cannot pick a coordinator from an empty set")
    return min(pids)
