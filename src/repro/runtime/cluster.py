"""Cluster harness: one object per simulated run.

Owns the scheduler, the network, stable storage, the trace recorder and
one :class:`~repro.vsync.stack.GroupStack` per site, and exposes the
environment actions fault schedules need (crash / recover / partition /
heal / join).  Examples, tests and benchmarks all start here.

:class:`Cluster` is the simulator's implementation of
:class:`repro.ports.ClusterPort` — the harness layer (workload clients,
scenarios, invariant monitors, property checks, the CLI) drives it only
through that contract, so the same code runs over the real-network
backend (:class:`~repro.realnet.driver.RealClusterDriver`) unchanged.
Simulated backend time equals scenario time (``time_scale == 1.0``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.errors import SimulationError
from repro.net.latency import ConstantLatency
from repro.obs.instrument import ClusterObs
from repro.obs.registry import MetricsRegistry
from repro.obs.snapshot import MetricsSnapshot
from repro.obs.tracing import FlightRecorder, Tracer
from repro.net.network import Network
from repro.net.topology import Topology
from repro.sim.rng import RngStreams
from repro.sim.scheduler import Scheduler
from repro.sim.stable_storage import StableStore
from repro.trace.events import CrashEvent, RecoverEvent
from repro.trace.recorder import TraceRecorder
from repro.types import ProcessId, SiteId
from repro.vsync.events import GroupApplication
from repro.vsync.stack import GroupStack, StackConfig

AppFactory = Callable[[ProcessId], GroupApplication]


def _default_app_factory(pid: ProcessId) -> GroupApplication:
    return GroupApplication()


@dataclass
class ClusterConfig:
    """Knobs for a simulated cluster.

    ``detailed_stats`` keeps the per-payload-type wire breakdown that
    protocol analysis and the CLI report on; benchmarks switch it off.
    ``trace_level`` / ``trace_capacity`` configure the recorder (see
    :class:`~repro.trace.recorder.TraceRecorder`): ``"full"`` history for
    checkers and determinism comparisons, ``"membership"`` for long runs
    that only care about structure, ``"none"`` plus the ring buffer for
    throughput benchmarks.

    ``metrics`` gates the in-stack observability hooks (``stack.obs``);
    the registry itself and its callback gauges always exist — they
    cost nothing until a snapshot is taken — so ``metrics=False`` (the
    bench fast path) still exports scheduler/network counters.

    ``tracing`` attaches a causal :class:`~repro.obs.tracing.Tracer`
    (backed by one byte-budgeted flight recorder for the whole simulated
    cluster) to the same hooks; it implies the hooks are live even with
    ``metrics=False``.  ``flight_budget`` bounds the recorder's ring in
    approximate encoded bytes, and ``trace_sample`` is the 1-in-N gate
    for *uncaused* root spans (steady workload multicasts); caused
    spans are always traced — see :meth:`Tracer.sample_root`.
    """

    seed: int = 0
    latency: Any = field(default_factory=lambda: ConstantLatency(1.0))
    loss_prob: float = 0.0
    fifo_links: bool = True
    stack: StackConfig = field(default_factory=StackConfig)
    detailed_stats: bool = True
    trace_level: str = "full"
    trace_capacity: int | None = None
    metrics: bool = True
    tracing: bool = False
    flight_budget: int = 256 * 1024
    trace_sample: int = 16
    # Scale knobs, applied onto ``stack`` (and its membership config) at
    # cluster construction so callers — including make_cluster(**knobs)
    # — can flip planes without building a whole StackConfig.  None
    # means "leave the stack config's own value alone".
    fd_mode: str | None = None
    gossip_fanout: int | None = None
    tree_fanout: int | None = None
    expand_debounce: float | None = None

    def resolved_stack(self) -> StackConfig:
        """``stack`` with the scale-knob overrides folded in."""
        import dataclasses

        stack = self.stack
        overrides = {}
        if self.fd_mode is not None:
            overrides["fd_mode"] = self.fd_mode
        if self.gossip_fanout is not None:
            overrides["gossip_fanout"] = self.gossip_fanout
        mconf = stack.membership
        moverrides = {}
        if self.tree_fanout is not None:
            moverrides["tree_fanout"] = self.tree_fanout
        if self.expand_debounce is not None:
            moverrides["expand_debounce"] = self.expand_debounce
        if moverrides:
            overrides["membership"] = dataclasses.replace(mconf, **moverrides)
        return dataclasses.replace(stack, **overrides) if overrides else stack


class Cluster:
    """A set of sites running group stacks over one simulated network."""

    #: ClusterPort runtime tag (client/workload code branches on it).
    runtime = "sim"

    def __init__(
        self,
        n_sites: int,
        app_factory: AppFactory | None = None,
        config: ClusterConfig | None = None,
        auto_start: bool = True,
    ) -> None:
        if n_sites < 1:
            raise SimulationError("cluster needs at least one site")
        self.config = config or ClusterConfig()
        self._stack_config = self.config.resolved_stack()
        self.app_factory = app_factory or _default_app_factory
        self.scheduler = Scheduler()
        self.rng = RngStreams(self.config.seed)
        self.topology = Topology(range(n_sites))
        self.network = Network(
            self.scheduler,
            self.topology,
            self.rng,
            latency=self.config.latency,
            loss_prob=self.config.loss_prob,
            fifo_links=self.config.fifo_links,
            detailed_stats=self.config.detailed_stats,
        )
        self.store = StableStore()
        self.recorder = TraceRecorder(
            level=self.config.trace_level,
            capacity=self.config.trace_capacity,
            label="sim",
        )
        # Metrics read virtual time: every exported value is a
        # deterministic function of the seed.
        self.metrics = MetricsRegistry(clock=lambda: self.scheduler.now,
                                       runtime="sim")
        self.flight: FlightRecorder | None = None
        tracer = None
        if self.config.tracing:
            # One recorder and tracer for the whole simulated cluster:
            # virtual time is already a global order, and a sim epoch of
            # zero means dumps merge with realnet ones on the wall epoch.
            self.flight = FlightRecorder(
                "sim", "sim", budget=self.config.flight_budget, epoch=0.0
            )
            tracer = Tracer(
                self.flight,
                lambda: self.scheduler.now,
                root_sample=self.config.trace_sample,
            )
        self.obs = (
            ClusterObs(self.metrics, tracer)
            if (self.config.metrics or tracer is not None)
            else None
        )
        self._register_collectors()
        self._incarnation: dict[SiteId, int] = {}
        self.stacks: dict[SiteId, GroupStack] = {}
        self.apps: dict[SiteId, GroupApplication] = {}
        if auto_start:
            for site in sorted(self.topology.sites):
                self.start_site(site)

    def _register_collectors(self) -> None:
        """Callback gauges over counters the simulator already keeps.

        Read at snapshot time only — the hot path never touches the
        registry for these, and the bench harnesses read the same
        series, so BENCH_PERF and observability can never disagree.
        """
        reg = self.metrics
        reg.gauge_callback(
            "sim_events_total", "Scheduler events executed",
            lambda: float(self.scheduler.events_run),
        )
        stats = self.network.stats
        reg.gauge_callback(
            "net_messages_sent_total", "Messages offered to the network",
            lambda: float(stats.sent),
        )
        reg.gauge_callback(
            "net_messages_delivered_total", "Messages delivered by the network",
            lambda: float(stats.delivered),
        )
        for reason, read in (
            ("partition", lambda: float(stats.dropped_partition)),
            ("loss", lambda: float(stats.dropped_loss)),
            ("dead", lambda: float(stats.dropped_dead)),
        ):
            reg.gauge_callback(
                "net_messages_dropped_total", "Messages dropped, by reason",
                read, ("reason",), (reason,),
            )

    def metrics_snapshot(self, source: str = "cluster") -> MetricsSnapshot:
        """Point-in-time metrics copy (the ClusterPort accessor)."""
        return self.metrics.snapshot(source)

    # -- process management --------------------------------------------------

    def start_site(self, site: SiteId) -> GroupStack:
        """Start (or restart) the process at ``site``."""
        if site in self.stacks and self.stacks[site].alive:
            raise SimulationError(f"site {site} is already running")
        incarnation = self._incarnation.get(site, -1) + 1
        self._incarnation[site] = incarnation
        pid = ProcessId(site, incarnation)
        app = self.app_factory(pid)
        stack = GroupStack(
            pid,
            self.scheduler,
            self.store.site(site),
            app,
            self.recorder,
            universe=lambda: self.topology.sites,
            config=self._stack_config,
            obs=self.obs,
        )
        self.stacks[site] = stack
        self.apps[site] = app
        self.network.register(stack)
        return stack

    def crash(self, site: SiteId) -> None:
        stack = self.stacks.get(site)
        if stack is None or not stack.alive:
            return
        stack.crash()
        self.recorder.record(CrashEvent(time=self.scheduler.now, pid=stack.pid))
        if self.obs is not None:
            self.obs.process_crashed(stack.pid, self.scheduler.now)

    def recover(self, site: SiteId) -> GroupStack:
        """Restart a crashed site under a fresh process identifier."""
        stack = self.stacks.get(site)
        if stack is not None and stack.alive:
            raise SimulationError(f"site {site} is up; cannot recover")
        new_stack = self.start_site(site)
        self.recorder.record(
            RecoverEvent(time=self.scheduler.now, pid=new_stack.pid, site=site)
        )
        return new_stack

    def join(self, site: SiteId) -> GroupStack:
        """Add a brand-new site to the universe and start it."""
        self.topology.add_site(site)
        return self.start_site(site)

    # -- connectivity -------------------------------------------------------------

    def partition(self, groups: Sequence[Sequence[SiteId]]) -> None:
        self.topology.partition(groups)

    def heal(self) -> None:
        self.topology.heal()

    def isolate(self, site: SiteId) -> None:
        self.topology.isolate(site)

    # -- execution ------------------------------------------------------------------

    @property
    def now(self) -> float:
        return self.scheduler.now

    @property
    def time_scale(self) -> float:
        """Backend time per scenario unit: the simulator runs *in*
        scenario units, so the scale is 1.0."""
        return 1.0

    def after(self, delay: float, callback: Callable[..., Any], *args: Any):
        """Schedule ``callback`` after ``delay`` backend-time units.

        The :class:`~repro.ports.ClusterPort` timer surface — workload
        drivers and invariant monitors arm their ticks here instead of
        touching the backend scheduler directly.
        """
        return self.scheduler.after(delay, callback, *args)

    def arm(self, schedule: Any) -> None:
        """Arm a :class:`~repro.net.faults.FaultSchedule` against this
        cluster.

        Action times are scenario units *relative to now*: the schedule
        is scaled by :attr:`time_scale` (1.0 here) and shifted by the
        current time, so the same schedule object arms identically on a
        backend whose clock already advanced.  On a fresh simulated
        cluster (``now == 0``) this is exactly the classic
        ``schedule.arm(cluster.scheduler, cluster)``.
        """
        schedule.scaled(self.time_scale).shifted(self.now).arm(self.scheduler, self)

    def run(self, until: float | None = None) -> float:
        return self.scheduler.run(until=until)

    def run_for(self, duration: float) -> float:
        return self.scheduler.run_for(duration)

    def run_until(
        self,
        predicate: Callable[["Cluster"], Any],
        timeout: float = 600.0,
        poll: float = 5.0,
    ) -> bool:
        """Run until ``predicate(cluster)`` is truthy or ``timeout``
        virtual units elapse; returns whether it became true."""
        deadline = self.scheduler.now + timeout
        while self.scheduler.now < deadline:
            if predicate(self):
                return True
            self.run_for(min(poll, deadline - self.scheduler.now))
        return bool(predicate(self))

    # ClusterPort name for run_until: both backends wait on a predicate
    # of the cluster; the simulator does so by advancing virtual time.
    wait_until = run_until

    def settle(self, timeout: float = 600.0, poll: float = 10.0) -> bool:
        """Run until membership converges (or ``timeout`` elapses).

        Converged means: every live process has installed a view whose
        membership is exactly the live processes of its own network
        component, agrees on the view identifier with all of them, and
        is not in the middle of a flush.
        """
        deadline = self.scheduler.now + timeout
        while self.scheduler.now < deadline:
            if self.is_settled():
                return True
            self.run_for(min(poll, deadline - self.scheduler.now))
        return self.is_settled()

    def is_settled(self) -> bool:
        live = [s for s in self.stacks.values() if s.alive]
        for stack in live:
            if stack.view is None or stack.is_flushing:
                return False
            component = self.topology.component_of(stack.pid.site)
            expected = {
                s.pid for s in live if s.pid.site in component
            }
            if stack.view.members != expected:
                return False
            for other in live:
                if other.pid in expected and other.current_view_id() != stack.current_view_id():
                    return False
        return True

    # -- queries ------------------------------------------------------------------------

    def stack_at(self, site: SiteId) -> GroupStack:
        stack = self.stacks.get(site)
        if stack is None:
            raise SimulationError(f"no process was ever started at site {site}")
        return stack

    def live_stacks(self) -> list[GroupStack]:
        return [s for s in self.stacks.values() if s.alive]

    def live_pids(self) -> set[ProcessId]:
        return {s.pid for s in self.live_stacks()}

    def views(self) -> dict[SiteId, str]:
        """Human-readable current view per live site (for debugging)."""
        return {
            site: str(stack.view)
            for site, stack in sorted(self.stacks.items())
            if stack.alive
        }

    def app_at(self, site: SiteId) -> GroupApplication:
        """The application object attached to the stack at ``site``."""
        app = self.apps.get(site)
        if app is None:
            raise SimulationError(f"no process was ever started at site {site}")
        return app

    def flight_recorders(self) -> list[FlightRecorder]:
        """Live flight recorders (one for the whole sim); ClusterPort
        accessor used by dump-on-violation and the trace CLI."""
        return [self.flight] if self.flight is not None else []

    def gather_trace(self) -> TraceRecorder:
        """The full execution history: one shared recorder observes the
        whole simulated run, so there is nothing to merge."""
        return self.recorder

    def network_stats(self) -> Any:
        """Wire counters of the simulated network."""
        return self.network.stats

    def close(self) -> None:
        """Release backend resources (none in the simulator); part of
        the :class:`~repro.ports.ClusterPort` contract."""
