"""Run-time harness: builds and drives whole simulated clusters."""

from repro.runtime.cluster import Cluster, ClusterConfig

__all__ = ["Cluster", "ClusterConfig"]
