"""Wire messages of the enriched-view layer."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

from repro.evs.eview import EvDelta
from repro.types import ProcessId, ViewId


@dataclass(frozen=True)
class EvReq:
    """Application request to merge subviews or sv-sets.

    Sent to the view coordinator, which sequences it (Property 6.1).
    ``inputs`` holds :class:`~repro.types.SubviewId` values for
    ``kind == "subview"`` and :class:`~repro.types.SvSetId` values for
    ``kind == "svset"``.
    """

    sender: ProcessId
    view_id: ViewId
    kind: Literal["subview", "svset"]
    inputs: frozenset


@dataclass(frozen=True)
class EvChange:
    """A sequenced e-view change, broadcast by the coordinator."""

    view_id: ViewId
    delta: EvDelta


@dataclass(frozen=True)
class EvRepairReq:
    """Lagging member -> coordinator: resend changes past ``have_seq``.

    Sent when a heartbeat reveals a peer applied more e-view changes
    than we have — inside a stable view that means our copy of some
    ``EvChange`` was lost and no view change will come to repair it.
    """

    view_id: ViewId
    have_seq: int
