"""Human-readable rendering of e-view structures.

The examples, benchmarks and debug sessions all want the same compact
notation the paper's figures use: subviews as brace groups, sv-sets as
bracket groups around them.

>>> format_structure(structure)
'[{p0.0,p1.0} {p2.0}] [{p3.0}]'
"""

from __future__ import annotations

from repro.evs.eview import EView, EViewStructure, Subview


def _format_subview(subview: Subview) -> str:
    return "{" + ",".join(str(p) for p in sorted(subview.members)) + "}"


def format_structure(structure: EViewStructure, with_svsets: bool = True) -> str:
    """Render a structure as brace groups (subviews) inside bracket
    groups (sv-sets); pass ``with_svsets=False`` for subviews only."""
    by_id = {sv.sid: sv for sv in structure.subviews}
    if not with_svsets:
        ordered = sorted(structure.subviews, key=lambda sv: min(sv.members))
        return " ".join(_format_subview(sv) for sv in ordered)
    rendered_sets = []
    for svset in structure.svsets:
        subviews = sorted(
            (by_id[sid] for sid in svset.subviews), key=lambda sv: min(sv.members)
        )
        rendered_sets.append(
            "[" + " ".join(_format_subview(sv) for sv in subviews) + "]"
        )
    rendered_sets.sort()
    return " ".join(rendered_sets)


def format_eview(eview: EView, with_svsets: bool = True) -> str:
    """``v7@p0.0 seq=2: [{p0.0,p1.0}] [{p2.0}]``"""
    return (
        f"{eview.view_id} seq={eview.seq}: "
        f"{format_structure(eview.structure, with_svsets)}"
    )
