"""Per-process enriched-view state machine.

Maintains the current :class:`~repro.evs.eview.EView`, sequences merge
requests when this process is the view coordinator, applies e-view
changes in sequence order, and supports the flush-time snapshot /
install-time replay choreography that keeps Properties 6.1-6.3 true
across view changes (see DESIGN.md §4.3).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from repro.errors import EnrichedViewError
from repro.evs.eview import EvDelta, EView, EViewStructure
from repro.evs.messages import EvChange, EvRepairReq, EvReq
from repro.gms.view import View
from repro.trace.events import EViewChangeEvent
from repro.types import ProcessId, SubviewId, SvSetId

if TYPE_CHECKING:  # pragma: no cover
    from repro.vsync.stack import GroupStack


class EViewManager:
    """Owns the e-view of one process."""

    def __init__(self, stack: "GroupStack") -> None:
        self.stack = stack
        self.eview: EView | None = None
        self.evlog: list[EvDelta] = []
        self._pending: dict[int, EvDelta] = {}
        self.suspended = False
        # Coordinator-only: sequence number of the last change broadcast.
        self._sequenced = 0

    # -- view lifecycle ---------------------------------------------------

    def install(self, view: View, structure: EViewStructure) -> None:
        """Adopt the structure delivered with a new view (seq 0)."""
        structure.validate(view.members)
        self.eview = EView(view, structure, seq=0)
        self.evlog = []
        self._pending = {}
        self.suspended = False
        self._sequenced = 0
        self._record()

    def suspend(self) -> None:
        """Stop applying e-view changes (called when flushing starts).

        The flush report snapshots our applied sequence number; applying
        further changes after the snapshot would let our structure run
        ahead of what the coordinator knows, breaking Property 6.3 at the
        next view.  Changes received while suspended stay pending; if the
        coordinator saw them from another survivor they come back to us
        through the install plan's replay log.
        """
        if self.stack.config.unsafe_disable_eview_suspension:
            return  # ablation: see benchmarks/bench_ablations.py
        self.suspended = True

    @property
    def applied_seq(self) -> int:
        return self.eview.seq if self.eview is not None else 0

    @property
    def structure(self) -> EViewStructure:
        if self.eview is None:
            raise EnrichedViewError("no e-view installed yet")
        return self.eview.structure

    # -- application API ----------------------------------------------------

    def subview_merge(self, sids: Iterable[SubviewId]) -> None:
        """Ask the coordinator to merge the given subviews (Section 6.1:
        no effect unless they all belong to one sv-set — that rule is
        enforced at application time by the delta semantics)."""
        self._request("subview", frozenset(sids))

    def sv_set_merge(self, ssids: Iterable[SvSetId]) -> None:
        """Ask the coordinator to merge the given sv-sets."""
        self._request("svset", frozenset(ssids))

    def _request(self, kind: str, inputs: frozenset) -> None:
        if self.eview is None:
            raise EnrichedViewError("cannot merge before the first view")
        req = EvReq(self.stack.pid, self.eview.view_id, kind, inputs)  # type: ignore[arg-type]
        coordinator = self.eview.view.coordinator
        if coordinator == self.stack.pid:
            self.on_request(self.stack.pid, req)
        else:
            self.stack.send(coordinator, req)

    # -- coordinator side ---------------------------------------------------

    def on_request(self, src: ProcessId, req: EvReq) -> None:
        """Sequence a merge request (coordinator only)."""
        if self.eview is None or req.view_id != self.eview.view_id:
            return  # stale request from a previous view
        if self.stack.pid != self.eview.view.coordinator:
            return  # we are not the sequencer
        if self.suspended:
            return  # a view change is in progress; the request dies
        self._sequenced = max(self._sequenced, self.applied_seq) + 1
        seq = self._sequenced
        epoch = self.eview.view.epoch
        if req.kind == "subview":
            delta = EvDelta(
                seq, "subview", req.inputs, new_subview=SubviewId(epoch, req.sender, seq)
            )
        else:
            delta = EvDelta(
                seq, "svset", req.inputs, new_svset=SvSetId(epoch, req.sender, seq)
            )
        change = EvChange(self.eview.view_id, delta)
        own = self.stack.pid
        self.stack.send_many((m for m in self.eview.members if m != own), change)
        self.on_change(self.stack.pid, change)

    # -- loss repair within a stable view ----------------------------------

    def note_peer_seq(self, src: ProcessId, peer_seq: int) -> None:
        """A heartbeat shows a peer ahead of us in e-view changes; ask
        the coordinator to resend the tail we must have lost."""
        if self.eview is None or self.suspended:
            return
        if peer_seq <= self.applied_seq:
            return
        coordinator = self.eview.view.coordinator
        request = EvRepairReq(self.eview.view_id, self.applied_seq)
        if coordinator == self.stack.pid:
            self.on_repair_request(self.stack.pid, request)
        else:
            self.stack.send(coordinator, request)

    def on_repair_request(self, src: ProcessId, request: EvRepairReq) -> None:
        """Coordinator side: resend our applied log past ``have_seq``."""
        if self.eview is None or request.view_id != self.eview.view_id:
            return
        for delta in self.evlog:
            if delta.seq > request.have_seq:
                self.stack.send(src, EvChange(self.eview.view_id, delta))

    # -- member side ----------------------------------------------------------

    def on_change(self, src: ProcessId, change: EvChange) -> None:
        """Buffer a sequenced change and apply it when its turn comes."""
        if self.eview is None or change.view_id != self.eview.view_id:
            return
        self._pending[change.delta.seq] = change.delta
        self._apply_ready()

    def _apply_ready(self) -> None:
        while not self.suspended and (self.applied_seq + 1) in self._pending:
            delta = self._pending.pop(self.applied_seq + 1)
            self._apply(delta)
        if not self.suspended:
            self.stack.on_eview_progress()

    def _apply(self, delta: EvDelta) -> None:
        assert self.eview is not None
        new_structure = self.eview.structure.apply(delta)
        self.eview = EView(self.eview.view, new_structure, seq=delta.seq)
        self.evlog.append(delta)
        self._record()
        self.stack.app.on_eview(self.eview)

    # -- flush / install choreography -----------------------------------------

    def flush_snapshot(self) -> tuple[int, EViewStructure, tuple[EvDelta, ...]]:
        """What goes into our :class:`~repro.gms.messages.VcFlush`."""
        if self.eview is None:
            raise EnrichedViewError("flushing before the first view")
        return self.applied_seq, self.eview.structure, tuple(self.evlog)

    def replay(self, evlog: tuple[EvDelta, ...], upto: int) -> None:
        """Apply the authority's remaining deltas before leaving the view.

        Called during install handling: brings this process to the same
        e-view sequence number as the authority, so that every member of
        the install group observed the identical totally-ordered sequence
        of e-view changes (Property 6.1) before the view change.
        """
        if self.eview is None:
            return
        self.suspended = False
        for delta in evlog:
            if delta.seq <= self.applied_seq:
                continue
            if delta.seq > upto:
                break
            self._apply(delta)
        self.suspended = True

    # -- tracing ----------------------------------------------------------------

    def _record(self) -> None:
        assert self.eview is not None
        subviews, svsets = self.eview.structure.as_tuples()
        self.stack.recorder.record(
            EViewChangeEvent(
                time=self.stack.now,
                pid=self.stack.pid,
                view_id=self.eview.view_id,
                eview_seq=self.eview.seq,
                subviews=subviews,
                svsets=svsets,
            )
        )
        obs = self.stack.obs
        if obs is not None and self.eview.seq > 0:
            # seq 0 is the install-time baseline, not a change; matching
            # the trace-stats eview_changes count keeps the live metric
            # and the trace aggregate comparable in obs report.
            obs.eview_changed(self.stack.pid)
