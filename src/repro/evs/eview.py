"""E-view data structures: subviews, sv-sets, structures, deltas.

Everything here is immutable; applying an :class:`EvDelta` produces a
new :class:`EViewStructure`.  Immutability is what lets flush replies
carry structure snapshots and per-view delta logs without aliasing bugs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Literal

from repro.errors import EnrichedViewError
from repro.gms.view import View
from repro.types import ProcessId, SubviewId, SvSetId


@dataclass(frozen=True)
class Subview:
    """A named, non-overlapping set of processes within one view."""

    sid: SubviewId
    members: frozenset[ProcessId]

    def __str__(self) -> str:
        names = ",".join(str(p) for p in sorted(self.members))
        return f"{self.sid}{{{names}}}"


@dataclass(frozen=True)
class SvSet:
    """A named group of subviews within one view."""

    ssid: SvSetId
    subviews: frozenset[SubviewId]

    def __str__(self) -> str:
        names = ",".join(str(s) for s in sorted(self.subviews))
        return f"{self.ssid}{{{names}}}"


@dataclass(frozen=True)
class EvDelta:
    """One application-requested merge, as sequenced by the coordinator.

    ``seq`` is the e-view change number within the view (starting at 1;
    seq 0 is the structure installed with the view).  ``kind`` selects
    between :func:`merge_subviews` and :func:`merge_svsets` semantics.
    """

    seq: int
    kind: Literal["subview", "svset"]
    inputs: frozenset
    new_subview: SubviewId | None = None
    new_svset: SvSetId | None = None


@dataclass(frozen=True)
class EViewStructure:
    """The subview / sv-set decomposition of one view's membership."""

    subviews: tuple[Subview, ...]
    svsets: tuple[SvSet, ...]

    # -- construction ---------------------------------------------------

    @staticmethod
    def singletons(view_epoch: int, members: Iterable[ProcessId]) -> "EViewStructure":
        """Every member alone in its own subview and its own sv-set.

        This is how fresh processes appear (Section 6.1: a joining
        process "appears within the new view in a new sv-set containing
        a new subview containing only the process itself").
        """
        subviews = []
        svsets = []
        for pid in sorted(members):
            sid = SubviewId(view_epoch, pid, 0)
            ssid = SvSetId(view_epoch, pid, 0)
            subviews.append(Subview(sid, frozenset({pid})))
            svsets.append(SvSet(ssid, frozenset({sid})))
        return EViewStructure(tuple(subviews), tuple(svsets))

    @staticmethod
    def degenerate(view_epoch: int, origin: ProcessId, members: Iterable[ProcessId]) -> "EViewStructure":
        """One sv-set containing one subview containing everyone.

        "The case where there is a single sv-set containing a single
        subview containing all of the processes degenerates to the
        traditional view abstraction" (Section 6.1).  The Isis-style
        baseline uses this shape.
        """
        sid = SubviewId(view_epoch, origin, 0)
        ssid = SvSetId(view_epoch, origin, 0)
        return EViewStructure(
            (Subview(sid, frozenset(members)),),
            (SvSet(ssid, frozenset({sid})),),
        )

    # -- validation -------------------------------------------------------

    def validate(self, members: frozenset[ProcessId]) -> None:
        """Check the structure is a partition of ``members`` at both
        levels; raises :class:`EnrichedViewError` otherwise."""
        seen: set[ProcessId] = set()
        for sv in self.subviews:
            if not sv.members:
                raise EnrichedViewError(f"empty subview {sv.sid}")
            overlap = seen & sv.members
            if overlap:
                raise EnrichedViewError(f"processes {overlap} in two subviews")
            seen |= sv.members
        if seen != members:
            raise EnrichedViewError(
                f"subviews cover {seen}, view members are {members}"
            )
        sv_ids = {sv.sid for sv in self.subviews}
        grouped: set[SubviewId] = set()
        for ss in self.svsets:
            if not ss.subviews:
                raise EnrichedViewError(f"empty sv-set {ss.ssid}")
            if ss.subviews & grouped:
                raise EnrichedViewError("subview in two sv-sets")
            if not ss.subviews <= sv_ids:
                raise EnrichedViewError(f"sv-set {ss.ssid} names unknown subviews")
            grouped |= ss.subviews
        if grouped != sv_ids:
            raise EnrichedViewError("sv-sets do not cover all subviews")

    # -- queries ----------------------------------------------------------

    def subview_of(self, pid: ProcessId) -> Subview:
        for sv in self.subviews:
            if pid in sv.members:
                return sv
        raise EnrichedViewError(f"{pid} not in any subview")

    def subview_by_id(self, sid: SubviewId) -> Subview:
        for sv in self.subviews:
            if sv.sid == sid:
                return sv
        raise EnrichedViewError(f"no subview {sid}")

    def svset_of_subview(self, sid: SubviewId) -> SvSet:
        for ss in self.svsets:
            if sid in ss.subviews:
                return ss
        raise EnrichedViewError(f"subview {sid} not in any sv-set")

    def svset_of(self, pid: ProcessId) -> SvSet:
        return self.svset_of_subview(self.subview_of(pid).sid)

    def svset_members(self, ssid: SvSetId) -> frozenset[ProcessId]:
        """All processes whose subview belongs to sv-set ``ssid``."""
        for ss in self.svsets:
            if ss.ssid == ssid:
                members: set[ProcessId] = set()
                for sid in ss.subviews:
                    members |= self.subview_by_id(sid).members
                return frozenset(members)
        raise EnrichedViewError(f"no sv-set {ssid}")

    def as_tuples(self):
        """Hashable snapshot used by trace events."""
        subviews = tuple(sorted(((sv.sid, sv.members) for sv in self.subviews)))
        svsets = tuple(sorted(((ss.ssid, ss.subviews) for ss in self.svsets)))
        return subviews, svsets

    # -- delta application -------------------------------------------------

    def apply(self, delta: EvDelta) -> "EViewStructure":
        """Return the structure after one merge; no-ops return self.

        Per Section 6.1, ``SubviewMerge`` "has no effect" if the input
        subviews do not all belong to the same sv-set; we mirror that by
        returning the unchanged structure rather than raising.
        """
        if delta.kind == "subview":
            return self._merge_subviews(delta)
        return self._merge_svsets(delta)

    def _merge_subviews(self, delta: EvDelta) -> "EViewStructure":
        inputs: frozenset[SubviewId] = delta.inputs
        if delta.new_subview is None:
            raise EnrichedViewError("subview merge delta lacks a new id")
        known = {sv.sid for sv in self.subviews}
        if not inputs <= known or len(inputs) < 1:
            return self
        owners = {self.svset_of_subview(sid).ssid for sid in inputs}
        if len(owners) != 1:
            return self  # inputs span sv-sets: the call has no effect
        merged_members: set[ProcessId] = set()
        for sid in inputs:
            merged_members |= self.subview_by_id(sid).members
        new_sv = Subview(delta.new_subview, frozenset(merged_members))
        subviews = tuple(
            sv for sv in self.subviews if sv.sid not in inputs
        ) + (new_sv,)
        svsets = []
        for ss in self.svsets:
            if ss.subviews & inputs:
                svsets.append(
                    SvSet(ss.ssid, (ss.subviews - inputs) | {new_sv.sid})
                )
            else:
                svsets.append(ss)
        return EViewStructure(subviews, tuple(svsets))

    def _merge_svsets(self, delta: EvDelta) -> "EViewStructure":
        inputs: frozenset[SvSetId] = delta.inputs
        if delta.new_svset is None:
            raise EnrichedViewError("sv-set merge delta lacks a new id")
        known = {ss.ssid for ss in self.svsets}
        if not inputs <= known or len(inputs) < 1:
            return self
        merged_subviews: set[SubviewId] = set()
        for ss in self.svsets:
            if ss.ssid in inputs:
                merged_subviews |= ss.subviews
        new_ss = SvSet(delta.new_svset, frozenset(merged_subviews))
        svsets = tuple(
            ss for ss in self.svsets if ss.ssid not in inputs
        ) + (new_ss,)
        return EViewStructure(self.subviews, svsets)


@dataclass(frozen=True)
class EView:
    """An enriched view: a view plus its current structure.

    ``seq`` counts the e-view changes applied within the view; the
    structure delivered together with the view itself has ``seq == 0``.
    """

    view: View
    structure: EViewStructure
    seq: int = 0

    @property
    def members(self) -> frozenset[ProcessId]:
        return self.view.members

    @property
    def view_id(self):
        return self.view.view_id

    def subview_of(self, pid: ProcessId) -> Subview:
        return self.structure.subview_of(pid)

    def svset_of(self, pid: ProcessId) -> SvSet:
        return self.structure.svset_of(pid)

    def __str__(self) -> str:
        svs = " ".join(str(sv) for sv in self.structure.subviews)
        return f"EView({self.view_id}, seq={self.seq}, {svs})"
