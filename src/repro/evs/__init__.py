"""Enriched view synchrony — the paper's proposed extension (Section 6).

An *enriched view* (e-view) is a view together with a two-level
structure: the members are partitioned into *subviews*, and the subviews
are partitioned into *subview sets* (sv-sets).  The run-time attaches no
meaning to the structure; it only maintains two rules that give the
application its reasoning power:

* structure can **shrink** at arbitrary times (failures remove members),
  but it can **grow only at the will of the application**, through
  :meth:`~repro.evs.manager.EViewManager.subview_merge` and
  :meth:`~repro.evs.manager.EViewManager.sv_set_merge`;
* structure is preserved across view changes (Property 6.3): processes
  that shared a subview (sv-set) keep sharing one in the next view, and
  fresh processes always enter as singleton subviews in singleton
  sv-sets.

Within a view, e-view changes are totally ordered by the view
coordinator (Property 6.1) and act as consistent cuts with respect to
application multicasts (Property 6.2).
"""

from repro.evs.eview import EvDelta, EView, EViewStructure, Subview, SvSet
from repro.evs.manager import EViewManager
from repro.evs.render import format_eview, format_structure

__all__ = [
    "Subview",
    "SvSet",
    "EViewStructure",
    "EvDelta",
    "EView",
    "EViewManager",
    "format_structure",
    "format_eview",
]
