"""Message stability tracking and garbage collection.

The flush protocol needs each member's set of received messages for the
current view, so naively every message is buffered until the next view
change — unbounded for long-lived views.  A message is *stable* once
every view member has delivered it: it can never appear in an install
plan again (plans only deliver what some survivor is missing, and
nobody is missing it), so buffering it is pointless.

The tracker runs a classic two-phase gossip through the view
coordinator:

1. every ``interval`` units, each member sends the coordinator a
   :class:`StabilityReport` carrying, per sender, the contiguous prefix
   of sequence numbers it has *delivered*;
2. the coordinator takes the pointwise minimum over all members it has
   heard from in the current round and, when it has a full set,
   broadcasts a :class:`StabilityNotice`;
3. members prune every buffered message at or below the stable prefix.

Everything is tagged with the view identifier and resets at each view
change, so stability can never leak across views (Uniqueness keeps
messages view-local anyway).  Disable by setting ``interval`` to 0.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.types import ProcessId, ViewId

if TYPE_CHECKING:  # pragma: no cover
    from repro.vsync.stack import GroupStack


@dataclass(frozen=True)
class StabilityReport:
    """Member -> coordinator: delivered contiguous prefix per sender."""

    view_id: ViewId
    sender: ProcessId
    delivered_prefix: tuple[tuple[ProcessId, int], ...]


@dataclass(frozen=True)
class StabilityNotice:
    """Coordinator -> members: the group-wide stable prefix per sender."""

    view_id: ViewId
    stable_prefix: tuple[tuple[ProcessId, int], ...]


class StabilityTracker:
    """Per-process stability component."""

    def __init__(self, stack: "GroupStack", interval: float = 30.0) -> None:
        self.stack = stack
        self.interval = interval
        self._reports: dict[ProcessId, dict[ProcessId, int]] = {}
        self._report_view: ViewId | None = None
        self.notices_sent = 0
        self.messages_pruned = 0

    def start(self) -> None:
        if self.interval > 0:
            self.stack.set_periodic(self.interval, self._tick)

    # -- member side --------------------------------------------------------

    def _tick(self) -> None:
        stack = self.stack
        view = stack.view
        if view is None or stack.is_flushing or len(view.members) < 2:
            return
        # Sort by the identifier's key fields directly: n key extractions
        # beat n·log(n) Python-level ProcessId comparisons.
        prefix = tuple(
            sorted(
                stack.channels.delivered_prefix().items(),
                key=lambda kv: (kv[0].site, kv[0].incarnation),
            )
        )
        report = StabilityReport(view.view_id, stack.pid, prefix)
        if view.coordinator == stack.pid:
            self.on_report(stack.pid, report)
        else:
            stack.send(view.coordinator, report)

    def on_notice(self, src: ProcessId, notice: StabilityNotice) -> None:
        view = self.stack.view
        if view is None or notice.view_id != view.view_id:
            return
        self.messages_pruned += self.stack.channels.prune(
            dict(notice.stable_prefix)
        )

    # -- coordinator side -------------------------------------------------------

    def on_report(self, src: ProcessId, report: StabilityReport) -> None:
        view = self.stack.view
        if view is None or report.view_id != view.view_id:
            return
        if view.coordinator != self.stack.pid:
            return
        if self._report_view != view.view_id:
            self._reports = {}
            self._report_view = view.view_id
        self._reports[report.sender] = dict(report.delivered_prefix)
        if set(self._reports) >= set(view.members) - {self.stack.pid}:
            self._reports[self.stack.pid] = self.stack.channels.delivered_prefix()
            self._broadcast_notice(view)
            self._reports = {}

    def _broadcast_notice(self, view) -> None:
        stable: dict[ProcessId, int] = {}
        for sender in view.members:
            prefix = min(
                report.get(sender, 0) for report in self._reports.values()
            )
            if prefix > 0:
                stable[sender] = prefix
        if not stable:
            return
        notice = StabilityNotice(view.view_id, tuple(sorted(stable.items())))
        self.notices_sent += 1
        own = self.stack.pid
        self.stack.send_many((m for m in view.members if m != own), notice)
        self.on_notice(self.stack.pid, notice)
