"""The group communication stack: one process's complete protocol state.

``GroupStack`` composes the four protocol components — heartbeat failure
detector (:mod:`repro.fd`), view agreement (:mod:`repro.gms`), per-view
channels (:mod:`repro.vsync.channel`) and the enriched-view manager
(:mod:`repro.evs`) — and exposes the paper's programming interface to an
application object:

* ``multicast(payload)`` — view-synchronous multicast (``mcast``);
* ``subview_merge(...)`` / ``sv_set_merge(...)`` — the two calls that
  augment the usual view-synchrony interface (Section 6.1);
* ``send_direct(dst, payload)`` — plain point-to-point messages for
  protocols, like bulk state transfer, that do not need view synchrony;
* ``leave()`` — terminate participation.

Events flow back through a :class:`~repro.vsync.events.GroupApplication`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

from repro.evs.eview import EView
from repro.evs.manager import EViewManager
from repro.evs.messages import EvChange, EvRepairReq, EvReq
from repro.fd.gossip import GossipDetector, GossipDigest
from repro.fd.heartbeat import Heartbeat, HeartbeatDetector
from repro.gms.membership import MembershipConfig, ViewAgreement
from repro.gms.messages import (
    Leave,
    VcAbort,
    VcFlush,
    VcFlushBatch,
    VcInstall,
    VcNack,
    VcPrepare,
    VcPropose,
)
from repro.gms.view import View
from repro.ports import SchedulerPort
from repro.sim.process import Process
from repro.sim.stable_storage import SiteStorage
from repro.trace.recorder import TraceRecorder
from repro.types import Message, MessageId, ProcessId, SiteId, SubviewId, SvSetId, ViewId
from repro.vsync.channel import RetransmitRequest, ViewChannels
from repro.vsync.events import GroupApplication
from repro.vsync.stability import StabilityNotice, StabilityReport, StabilityTracker


@dataclass(frozen=True)
class DirectPayload:
    """Wrapper marking a point-to-point application payload."""

    payload: Any


@dataclass(frozen=True)
class SubviewScoped:
    """A multicast payload addressed to the sender's subview only.

    Carries the subview's membership snapshot at multicast time: the
    message is still a regular view-synchronous multicast (so all the
    delivery guarantees apply at the VS level), but the stack hands it
    to the application only at the snapshot members — the Section 6.2
    discipline of performing external operations *within* a subview.
    """

    members: frozenset[ProcessId]
    payload: Any


@dataclass
class StackConfig:
    """Tunable timers for the whole stack.

    ``membership_factory`` lets a baseline substitute its own view
    agreement (the Isis-style protocol in :mod:`repro.isis` plugs in
    here); it receives the stack and must return a
    :class:`~repro.gms.membership.ViewAgreement` (or subclass).
    """

    fd_interval: float = 5.0
    fd_timeout: float = 16.0
    #: Failure-detection plane: ``"heartbeat"`` (all-to-all beacon, the
    #: paper's model, O(n²) messages/interval) or ``"gossip"`` (epidemic
    #: digest push, O(n·fanout); see :mod:`repro.fd.gossip`).  With
    #: gossip, ``fd_timeout`` must cover a whole epidemic round trip,
    #: not one hop (docs/scaling.md).
    fd_mode: str = "heartbeat"
    gossip_fanout: int = 3
    membership: MembershipConfig = field(default_factory=MembershipConfig)
    membership_factory: Callable[["GroupStack"], ViewAgreement] | None = None
    # Ablation switches (benchmarks/bench_ablations.py): disabling these
    # guards makes specific paper properties fail, demonstrating which
    # mechanism carries which guarantee.  Never disable them in real use.
    unsafe_disable_eview_gate: bool = False
    unsafe_disable_eview_suspension: bool = False
    # Message stability / garbage collection period (0 disables it).
    stability_interval: float = 25.0


class GroupStack(Process):
    """A full view-synchronous group member."""

    def __init__(
        self,
        pid: ProcessId,
        scheduler: SchedulerPort,
        storage: SiteStorage,
        app: GroupApplication,
        recorder: TraceRecorder,
        universe: Callable[[], Iterable[SiteId]],
        config: StackConfig | None = None,
        obs: Any = None,
    ) -> None:
        super().__init__(pid, scheduler, storage)
        self.app = app
        self.recorder = recorder
        # Optional ClusterObs hub (repro.obs.instrument); hot paths guard
        # every call with ``if obs is not None`` so metrics-off runs
        # (e.g. the bench harnesses) pay nothing.
        self.obs = obs
        self._universe = universe
        self.config = config or StackConfig()
        if self.config.fd_mode == "gossip":
            self.fd: HeartbeatDetector | GossipDetector = GossipDetector(
                self,
                interval=self.config.fd_interval,
                timeout=self.config.fd_timeout,
                fanout=self.config.gossip_fanout,
            )
        else:
            self.fd = HeartbeatDetector(
                self, interval=self.config.fd_interval, timeout=self.config.fd_timeout
            )
        # Optional interceptor for point-to-point traffic (the Isis
        # blocking-transfer tool installs itself here, possibly from the
        # membership factory below — so this must be initialised first).
        self.app_transfer_hook: Any = None
        if self.config.membership_factory is not None:
            self.membership = self.config.membership_factory(self)
        else:
            self.membership = ViewAgreement(self, self.config.membership)
        self.channels = ViewChannels(self)
        self.evs = EViewManager(self)
        self.stability = StabilityTracker(self, self.config.stability_interval)
        app.bind(self)

    # -- wiring --------------------------------------------------------------

    def on_start(self) -> None:
        self.membership.start()
        self.fd.on_change = self.membership.on_fd_change
        self.fd.start()
        self.stability.start()

    def universe_sites(self) -> list[SiteId]:
        return sorted(self._universe())

    def universe_size(self) -> int:
        """Site-universe cardinality without the sorted materialisation
        (the gossip plane consults this on every digest)."""
        universe = self._universe()
        try:
            return len(universe)  # type: ignore[arg-type]
        except TypeError:
            return sum(1 for _ in universe)

    def send_site(self, site: SiteId, payload: Any) -> None:
        if self.network is not None and self.alive:
            self.network.send_to_site(self.pid, site, payload)

    def send_sites(self, sites: Iterable[SiteId], payload: Any) -> None:
        """Site-addressed multicast (heartbeats, join probes)."""
        if self.network is not None and self.alive:
            self.network.multicast_sites(self.pid, sites, payload)

    # -- dispatch ---------------------------------------------------------------

    def on_network(self, src: ProcessId, payload: Any) -> None:
        self.fd.heard(src)  # every message is evidence of life
        # Dispatch order follows traffic volume: application multicasts
        # dominate every steady-state workload, then heartbeats.
        if isinstance(payload, Message):
            self.channels.on_app_message(payload)
        elif isinstance(payload, Heartbeat):
            self.fd.on_heartbeat(src, payload)
            # In-view loss repair: a beacon naming our current view
            # advertises the sender's traffic position; chase gaps.
            if (
                payload.view_id is not None
                and payload.view_id == self.current_view_id()
                and not self.is_flushing
            ):
                self.channels.note_sender_high(src, payload.last_seqno)
                self.evs.note_peer_seq(src, payload.eview_seq)
        elif isinstance(payload, GossipDigest):
            self.fd.on_digest(src, payload)
            # Same in-view loss-repair piggyback as the heartbeat path:
            # the digest names the sender's traffic position.
            if (
                payload.view_id is not None
                and payload.view_id == self.current_view_id()
                and not self.is_flushing
            ):
                self.channels.note_sender_high(src, payload.last_seqno)
                self.evs.note_peer_seq(src, payload.eview_seq)
        elif isinstance(payload, VcPropose):
            self.membership.on_propose(src, payload)
        elif isinstance(payload, VcPrepare):
            self.membership.on_prepare(src, payload)
        elif isinstance(payload, VcFlush):
            self.membership.on_flush(src, payload)
        elif isinstance(payload, VcFlushBatch):
            self.membership.on_flush_batch(src, payload)
        elif isinstance(payload, VcNack):
            self.membership.on_nack(src, payload)
        elif isinstance(payload, VcInstall):
            self.membership.on_install(src, payload)
        elif isinstance(payload, Leave):
            self.membership.on_leave(src, payload)
        elif isinstance(payload, VcAbort):
            self.membership.on_abort(src, payload)
        elif isinstance(payload, StabilityReport):
            self.stability.on_report(src, payload)
        elif isinstance(payload, StabilityNotice):
            self.stability.on_notice(src, payload)
        elif isinstance(payload, RetransmitRequest):
            self.channels.on_retransmit_request(src, payload)
        elif isinstance(payload, EvRepairReq):
            self.evs.on_repair_request(src, payload)
        elif isinstance(payload, EvReq):
            self.evs.on_request(src, payload)
        elif isinstance(payload, EvChange):
            self.evs.on_change(src, payload)
        elif isinstance(payload, DirectPayload):
            hook = self.app_transfer_hook
            if hook is None or not hook.on_direct(src, payload.payload):
                self.app.on_direct(src, payload.payload)
        else:
            self.app.on_direct(src, payload)

    # -- the paper's interface -----------------------------------------------------

    def multicast(self, payload: Any, trace: Any = None) -> MessageId | None:
        """View-synchronous multicast to the current view.

        ``trace`` optionally names the causal parent of the send
        (tracing only; ignored when the cluster has no tracer).
        """
        return self.channels.multicast(payload, trace)

    def multicast_subview(self, payload: Any) -> MessageId | None:
        """Multicast delivered (to the application) only within the
        sender's current subview — the Section 6.2 methodology's
        "external operations are performed within a subview"."""
        if self.eview is None:
            return None
        subview = self.eview.subview_of(self.pid)
        return self.multicast(SubviewScoped(subview.members, payload))

    def deliver_app_message(self, sender: ProcessId, payload: Any, msg_id: MessageId) -> None:
        """Final delivery hop: unwraps subview scoping."""
        if isinstance(payload, SubviewScoped):
            if self.pid in payload.members:
                self.app.on_message(sender, payload.payload, msg_id)
            return
        self.app.on_message(sender, payload, msg_id)

    def subview_merge(self, sids: Iterable[SubviewId]) -> None:
        """``SubviewMerge(sv-list)`` of Section 6.1."""
        self.evs.subview_merge(sids)

    def sv_set_merge(self, ssids: Iterable[SvSetId]) -> None:
        """``SV-SetMerge(sv-set-list)`` of Section 6.1."""
        self.evs.sv_set_merge(ssids)

    def send_direct(self, dst: ProcessId, payload: Any) -> None:
        self.send(dst, DirectPayload(payload))

    def leave(self) -> None:
        """Gracefully terminate participation in the group."""
        self.membership.announce_leave()
        self.crash()

    # -- queries ------------------------------------------------------------------

    @property
    def view(self) -> View | None:
        return self.membership.view

    @property
    def eview(self) -> EView | None:
        return self.evs.eview

    @property
    def is_flushing(self) -> bool:
        return self.membership.flushing

    def current_view_id(self) -> ViewId | None:
        return self.membership.current_view_id()

    def on_eview_progress(self) -> None:
        """An e-view change was applied; retry gated deliveries."""
        self.channels.try_deliver()

    def on_crash(self) -> None:
        self.app.on_stop()
