"""Per-view message bookkeeping.

Tracks, for the current view: what this process multicast, what it
received, and what it delivered.  Normal-path delivery is FIFO per
sender and gated on the sender's e-view sequence number (the mechanism
behind Property 6.2).  At a view change, the membership layer suspends
normal delivery, reports the received set in its flush reply, and later
delivers the coordinator's union before installing — which is where
Agreement (2.1) comes from.

Uniqueness (2.2) is enforced by the view tag: a message is delivered
only while the view it was multicast in is the receiver's current view.
Multicasts requested while a flush is in progress are buffered and
re-issued (with fresh identifiers) in the next view.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.errors import ViewSynchronyError
from repro.gms.view import View
from repro.trace.events import DeliveryEvent, MulticastEvent
from repro.types import Message, MessageId, ProcessId, ViewId

if TYPE_CHECKING:  # pragma: no cover
    from repro.vsync.stack import GroupStack


@dataclass(frozen=True)
class RetransmitRequest:
    """Receiver -> original sender: these seqnos never arrived."""

    view_id: ViewId
    seqnos: tuple[int, ...]


class ViewChannels:
    """Message state of one process for its current view."""

    def __init__(self, stack: "GroupStack") -> None:
        self.stack = stack
        self.view: View | None = None
        self._next_seqno = 0
        self._fifo_next: dict[ProcessId, int] = {}
        self.suspended = False
        self.pending_sends: list[Any] = []
        self._future: dict[ViewId, list[Message]] = {}
        # The single message buffer (sender -> seqno -> message): the
        # delivery loop probes "sender's next seqno" on every arrival,
        # and an integer dict lookup is far cheaper than keying by full
        # MessageId.  The delivered set is not materialised at all —
        # normal-path and plan delivery are both per-sender contiguous,
        # so "delivered" is exactly ``seqno < _fifo_next[sender]``.
        self._chains: dict[ProcessId, dict[int, Message]] = {}
        self._senders: tuple[ProcessId, ...] = ()
        self._peers: tuple[ProcessId, ...] = ()
        # Garbage collection: per-sender stable prefix (everything at or
        # below it was delivered by every member and has been pruned).
        self._stable: dict[ProcessId, int] = {}

    @property
    def received(self) -> dict[MessageId, Message]:
        """Buffered messages keyed by identifier (diagnostic view).

        Rebuilt on demand: the hot path keys buffers by (sender, seqno)
        only — see ``_chains``."""
        return {
            msg.msg_id: msg
            for chain in self._chains.values()
            for msg in chain.values()
        }

    # -- view lifecycle ------------------------------------------------------

    def install(self, view: View) -> None:
        """Reset per-view state for a freshly installed view.

        Messages of the new view that arrived early stay buffered until
        :meth:`activate` — the e-view structure must be installed first,
        or the delivery gate would consult the old view's sequence.
        """
        self.view = view
        self._next_seqno = 0
        self._fifo_next = {m: 1 for m in view.members}
        self._chains = {}
        self._senders = tuple(sorted(view.members))
        own = self.stack.pid
        self._peers = tuple(m for m in self._senders if m != own)
        self.suspended = False
        self._stable = {}

    def activate(self) -> None:
        """Feed in the new view's early arrivals (post e-view install)."""
        if self.view is None:
            return
        early = self._future.pop(self.view.view_id, [])
        # Drop buffered messages for views we will now never install.
        self._future = {
            vid: msgs for vid, msgs in self._future.items()
            if vid.epoch > self.view.epoch
        }
        for msg in early:
            self.on_app_message(msg)

    def suspend(self) -> None:
        """Stop normal-path delivery (a flush reply is about to fix our
        received set); arrivals keep accumulating in ``received``."""
        self.suspended = True

    # -- sending ---------------------------------------------------------------

    def multicast(self, payload: Any, trace: Any = None) -> MessageId | None:
        """Multicast ``payload`` in the current view.

        Returns the message identifier, or None if the send was buffered
        because a view change is in progress.  ``trace`` is the causal
        parent of the send (e.g. a client put's root span); with tracing
        on the send mints its own span and the context rides on the
        :class:`Message` so receivers can parent their delivery spans.
        """
        if self.view is None:
            raise ViewSynchronyError("multicast before the first view")
        if self.suspended:
            self.pending_sends.append((payload, trace))
            return None
        self._next_seqno += 1
        msg_id = MessageId(self.stack.pid, self.view.view_id, self._next_seqno)
        recorder = self.stack.recorder
        if recorder.wants(MulticastEvent):
            recorder.record(
                MulticastEvent(time=self.stack.now, pid=self.stack.pid, msg_id=msg_id)
            )
        obs = self.stack.obs
        send_ctx = None
        if obs is not None:
            send_ctx = obs.multicast_sent(
                self.stack.pid, msg_id, self.stack.now, parent=trace
            )
        msg = Message(
            msg_id, payload, eview_seq=self.stack.evs.applied_seq, trace=send_ctx
        )
        self.stack.send_many(self._peers, msg)
        self.on_app_message(msg)  # self-delivery path
        return msg_id

    def flush_pending_sends(self) -> None:
        """Re-issue multicasts buffered during the last view change."""
        queued, self.pending_sends = self.pending_sends, []
        for payload, trace in queued:
            self.multicast(payload, trace)

    # -- receiving ----------------------------------------------------------------

    def on_app_message(self, msg: Message) -> None:
        """Accept a message from the network (or from ourselves)."""
        view = self.view
        if view is None:
            return
        mid = msg.msg_id
        vid = mid.view
        my_vid = view.view_id
        # Identity first: in-process delivery shares the installer's
        # ViewId object, so the common case never runs the field compare.
        if vid is not my_vid and vid != my_vid:
            if vid.epoch > view.epoch:
                self._future.setdefault(vid, []).append(msg)
            return  # older view: the message missed its window (2.2)
        sender = mid.sender
        chain = self._chains.get(sender)
        if chain is None:
            chain = self._chains[sender] = {}
        seqno = mid.seqno
        if seqno in chain:
            return  # duplicate (2.3)
        floor = self._stable.get(sender, 0)
        if seqno <= floor:
            return  # already stable (delivered by everyone) and pruned
        chain[seqno] = msg
        # Only this sender's FIFO chain can have become deliverable: a
        # full scan here would re-probe every other sender for nothing.
        # Messages held by the e-view gate are retried from
        # ``on_eview_progress`` / ``activate``, which do the full scan.
        if self.suspended:
            return
        # In-order arrival with nothing buffered beyond it is the
        # overwhelmingly common case (FIFO links deliver a sender's run
        # in seqno order): the chain then holds exactly the contiguous
        # run ``floor+1 .. seqno``, so this one delivery cannot unblock
        # anything and the generic chain walk is pure overhead.
        if (
            seqno == self._fifo_next.get(sender, 1)
            and len(chain) == seqno - floor
            and (
                msg.eview_seq <= self.stack.evs.applied_seq
                or self.stack.config.unsafe_disable_eview_gate
            )
        ):
            self._deliver(msg)
            return
        self._run_sender(sender)

    def try_deliver(self) -> None:
        """Deliver everything currently eligible on the normal path.

        Walks every sender's contiguous run (in identifier order,
        matching the old sorted-MessageId delivery order: all buffered
        messages carry the current view, so MessageId order *is*
        (sender, seqno) order).  The outer loop repeats because
        delivering can unblock earlier-ordered messages — the e-view
        gate can open mid-pass via application callbacks.
        """
        if self.suspended or self.view is None:
            return
        vid = self.view.view_id
        progress = True
        while progress:
            progress = False
            for sender in self._senders:
                if self._run_sender(sender):
                    progress = True
                if self.suspended or self.view is None or self.view.view_id != vid:
                    return  # a callback changed the world under us

    def _run_sender(self, sender: ProcessId) -> bool:
        """Deliver ``sender``'s eligible contiguous run; True if any.

        Per-sender FIFO makes the next deliverable message of a sender
        the one at ``_fifo_next[sender]``, so delivery is a probe of the
        sender's chain by integer sequence number — no backlog sorting,
        no MessageId construction.
        """
        chain = self._chains.get(sender)
        if not chain:
            return False
        view = self.view
        assert view is not None
        gate_enabled = not self.stack.config.unsafe_disable_eview_gate
        # Snapshot the gate: if a callback applies an e-view change mid
        # loop, on_eview_progress retries the full scan anyway.
        applied_seq = self.stack.evs.applied_seq
        fifo_next = self._fifo_next
        chain_get = chain.get
        progress = False
        while True:
            msg = chain_get(fifo_next.get(sender, 1))
            if msg is None:
                return progress
            if gate_enabled and msg.eview_seq > applied_seq:
                return progress  # e-view gate (Property 6.2)
            if self.suspended or self.view is not view:
                return progress  # a callback changed the world under us
            self._deliver(msg)
            progress = True

    def _deliver(self, msg: Message) -> None:
        assert self.view is not None
        self._fifo_next[msg.msg_id.sender] = msg.msg_id.seqno + 1
        recorder = self.stack.recorder
        if recorder.wants(DeliveryEvent):
            recorder.record(
                DeliveryEvent(
                    time=self.stack.now,
                    pid=self.stack.pid,
                    msg_id=msg.msg_id,
                    view_id=self.view.view_id,
                    sender_eview_seq=msg.eview_seq,
                )
            )
        obs = self.stack.obs
        if obs is not None:
            obs.message_delivered(
                self.stack.pid, msg.msg_id, self.stack.now, trace=msg.trace
            )
        self.stack.deliver_app_message(msg.msg_id.sender, msg.payload, msg.msg_id)

    # -- flush / install -----------------------------------------------------------

    def flush_report(self) -> tuple[Message, ...]:
        """The received set reported in our flush reply."""
        msgs = [
            msg for chain in self._chains.values() for msg in chain.values()
        ]
        msgs.sort(key=lambda m: m.msg_id)
        return tuple(msgs)

    # -- loss repair within a stable view -----------------------------------

    def own_seqno(self) -> int:
        """Our multicast count in the current view (heartbeat payload)."""
        return self._next_seqno

    def note_sender_high(self, sender: ProcessId, high: int) -> None:
        """A heartbeat advertised ``sender``'s multicast count; request
        retransmission of anything we are missing below it.  Without a
        view change, a lost copy would otherwise never be repaired."""
        if self.view is None or self.suspended or high <= 0:
            return
        if sender not in self.view.members:
            return
        if self._fifo_next.get(sender, 1) > high:
            return  # delivered prefix already covers the advertised count
        # Probe the sender's chain by integer seqno over the un-stable
        # window instead of building a set of every buffered seqno —
        # heartbeats arrive constantly and the backlog can be large.
        floor = self._stable.get(sender, 0)
        chain = self._chains.get(sender) or {}
        missing = tuple(
            seqno
            for seqno in range(floor + 1, high + 1)
            if seqno not in chain
        )[:64]
        if missing:
            self.stack.send(
                sender, RetransmitRequest(self.view.view_id, missing)
            )

    def on_retransmit_request(self, src: ProcessId, request: "RetransmitRequest") -> None:
        """Resend our own messages a peer reports missing."""
        if self.view is None or request.view_id != self.view.view_id:
            return
        own_chain = self._chains.get(self.stack.pid) or {}
        for seqno in request.seqnos:
            msg = own_chain.get(seqno)
            if msg is not None:
                self.stack.send(src, msg)

    # -- stability / garbage collection ------------------------------------

    def delivered_prefix(self) -> dict[ProcessId, int]:
        """Per sender, the contiguous prefix of seqnos we delivered."""
        return {
            sender: next_seq - 1
            for sender, next_seq in self._fifo_next.items()
            if next_seq > 1
        }

    def prune(self, stable: dict[ProcessId, int]) -> int:
        """Drop buffered messages every member has delivered.

        Safe because a stable message can never appear in an install
        plan as *missing* at anyone; returns how many were pruned.
        """
        pruned = 0
        for sender, prefix in stable.items():
            current = self._stable.get(sender, 0)
            if prefix > current:
                self._stable[sender] = prefix
        for sender, floor in self._stable.items():
            chain = self._chains.get(sender)
            if not chain:
                continue
            # Never past our own delivered prefix: the group-wide floor
            # must not prune input we are still gated on.
            high = min(floor, self._fifo_next.get(sender, 1) - 1)
            if high <= 0:
                continue
            stale = [seqno for seqno in chain if seqno <= high]
            for seqno in stale:
                del chain[seqno]
            pruned += len(stale)
        return pruned

    def deliver_plan(self, messages: tuple[Message, ...]) -> None:
        """Deliver the coordinator's union before leaving the view.

        Every survivor of the same install executes this with the same
        ``messages``, so their delivered sets in the old view end up
        identical — Agreement (2.1).  FIFO order per sender is respected
        because the union is replayed in message-identifier order and
        the union always contains a sender-prefix of what anyone saw.
        """
        if self.view is None:
            return
        for msg in sorted(messages, key=lambda m: m.msg_id):
            mid = msg.msg_id
            if mid.view != self.view.view_id:
                raise ViewSynchronyError(
                    f"install plan crosses views: {mid} vs {self.view.view_id}"
                )
            sender, seqno = mid.sender, mid.seqno
            if seqno < self._fifo_next.get(sender, 1):
                continue  # already delivered on the normal path
            if seqno <= self._stable.get(sender, 0):
                continue  # stable: we delivered and pruned it already
            chain = self._chains.setdefault(sender, {})
            if seqno not in chain:
                chain[seqno] = msg
            self._deliver(msg)
