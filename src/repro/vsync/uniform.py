"""Uniform (safe) delivery on top of view-synchronous multicast.

The paper's reference [10] (Schiper & Sandoz, *Uniform reliable
multicast in a virtually synchronous environment*) distinguishes
*reliable* delivery — what the base stack provides — from **uniform**
delivery: if *any* process delivers a message (even one that crashes
immediately after), then every correct process in the view delivers it.
Plain view synchrony does not give this: a process can deliver a
message, act on it (e.g. answer a client), and crash, while the view
change discards the message at everyone else.

:class:`UniformDeliveryApp` buffers each received multicast and only
*u-delivers* it to the inner application once a majority of the view
has acknowledged receipt.  Combined with the flush protocol's Agreement
this yields the uniform guarantee in every majority component:

* a message u-delivered anywhere was received by a majority;
* any successor view retaining a majority of the old view intersects
  that set, so the flush union contains the message and every survivor
  delivers it (at the latest, at the view change).

Messages still pending at a view change are re-examined in the next
view: whatever the flush delivered stays eligible; acknowledgements
restart (they are view-local state).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.evs.eview import EView
from repro.types import MessageId, ProcessId
from repro.vsync.events import GroupApplication


@dataclass(frozen=True)
class _UAck:
    """Receipt acknowledgement, multicast so everyone counts it."""

    msg_id: MessageId


@dataclass
class _Pending:
    sender: ProcessId
    payload: Any
    msg_id: MessageId
    ackers: set[ProcessId] = field(default_factory=set)


class UniformDeliveryApp(GroupApplication):
    """Wrapper adding majority-stable (uniform) delivery.

    The inner application's ``on_message`` is invoked only for
    u-delivered messages.  ``ubcast(payload)`` is the sending-side
    sugar (it is an ordinary multicast; uniformity is a receive-side
    discipline).
    """

    def __init__(self, inner: GroupApplication) -> None:
        super().__init__()
        self.inner = inner
        self._pending: dict[MessageId, _Pending] = {}
        self.u_delivered: int = 0

    def bind(self, stack) -> None:
        super().bind(stack)
        self.inner.bind(stack)

    def ubcast(self, payload: Any) -> MessageId | None:
        assert self.stack is not None
        return self.stack.multicast(("udata", payload))

    # -- hooks -------------------------------------------------------------

    def on_view(self, eview: EView) -> None:
        # Acks are view-local: restart the counts, keep the payloads.
        for pending in self._pending.values():
            pending.ackers.clear()
        self.inner.on_view(eview)
        # Re-acknowledge everything still pending in the new view.
        for pending in list(self._pending.values()):
            self._ack(pending.msg_id)

    def on_eview(self, eview: EView) -> None:
        self.inner.on_eview(eview)

    def on_message(self, sender: ProcessId, payload: Any, msg_id: MessageId) -> None:
        if isinstance(payload, _UAck):
            self._count(payload.msg_id, sender)
            return
        if isinstance(payload, tuple) and len(payload) == 2 and payload[0] == "udata":
            self._pending[msg_id] = _Pending(sender, payload[1], msg_id)
            self._ack(msg_id)
            return
        self.inner.on_message(sender, payload, msg_id)

    def _ack(self, msg_id: MessageId) -> None:
        assert self.stack is not None
        if self.stack.is_flushing:
            return  # the next view's on_view re-acknowledges
        self.stack.multicast(_UAck(msg_id))

    def _count(self, msg_id: MessageId, acker: ProcessId) -> None:
        pending = self._pending.get(msg_id)
        if pending is None:
            return
        pending.ackers.add(acker)
        view = self.stack.view if self.stack is not None else None
        if view is None:
            return
        if 2 * len(pending.ackers) > len(view.members):
            del self._pending[msg_id]
            self.u_delivered += 1
            self.inner.on_message(pending.sender, pending.payload, pending.msg_id)

    def on_direct(self, sender: ProcessId, payload: Any) -> None:
        self.inner.on_direct(sender, payload)

    def on_stop(self) -> None:
        self.inner.on_stop()

    @property
    def pending_count(self) -> int:
        return len(self._pending)
