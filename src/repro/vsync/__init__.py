"""View-synchronous reliable multicast.

The integration layer the paper calls "the real utility of view
synchrony ... not in its individual components but in their
integration" (Section 2): reliable multicast whose delivery guarantees
are stated *as a function of view changes*:

* **Agreement (2.1)** — processes that survive from one view to the same
  next view deliver the same set of messages;
* **Uniqueness (2.2)** — a message is delivered in at most one view;
* **Integrity (2.3)** — at-most-once delivery of genuinely multicast
  messages only.

:class:`~repro.vsync.stack.GroupStack` is the public entry point: it
wires the failure detector, the membership protocol, the per-view
channels and the enriched-view manager into a single process.
"""

from repro.vsync.events import GroupApplication
from repro.vsync.channel import ViewChannels
from repro.vsync.stack import GroupStack, StackConfig
from repro.vsync.ordering import CausalOrderApp, TotalOrderApp

__all__ = [
    "GroupApplication",
    "ViewChannels",
    "GroupStack",
    "StackConfig",
    "CausalOrderApp",
    "TotalOrderApp",
]
