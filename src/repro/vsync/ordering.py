"""Optional ordering layers on top of view-synchronous multicast.

Section 2 notes that the base specification imposes "no conditions ...
on the relative ordering of messages delivered within a given view", and
that stronger orderings "can only help in solving shared state problems
but cannot prevent them".  These two adapters provide the standard
strengthenings so applications (and the E6/E9 experiments) can opt in:

* :class:`CausalOrderApp` — causal delivery via per-view vector clocks;
* :class:`TotalOrderApp` — total delivery order via a sequencer (the
  view coordinator re-multicasts submissions in its chosen order).

Both are written as wrappers around an inner
:class:`~repro.vsync.events.GroupApplication`, so any application can be
lifted onto an ordered channel without modification.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.evs.eview import EView
from repro.types import MessageId, ProcessId
from repro.vsync.events import GroupApplication


@dataclass(frozen=True)
class _CausalEnvelope:
    clock: tuple[tuple[ProcessId, int], ...]
    payload: Any


class CausalOrderApp(GroupApplication):
    """Delays deliveries until their causal predecessors are delivered.

    Vector clocks are per view: every view change resets them, which is
    sound because view synchrony already guarantees that no message
    crosses a view boundary (Uniqueness, 2.2).
    """

    def __init__(self, inner: GroupApplication) -> None:
        super().__init__()
        self.inner = inner
        self._clock: dict[ProcessId, int] = {}
        self._pending: list[tuple[ProcessId, _CausalEnvelope, MessageId]] = []

    def bind(self, stack) -> None:
        super().bind(stack)
        self.inner.bind(stack)

    def cbcast(self, payload: Any) -> None:
        """Causally ordered multicast."""
        assert self.stack is not None
        me = self.stack.pid
        clock = dict(self._clock)
        clock[me] = clock.get(me, 0) + 1
        envelope = _CausalEnvelope(tuple(sorted(clock.items())), payload)
        self.stack.multicast(envelope)

    # -- hooks -------------------------------------------------------------

    def on_view(self, eview: EView) -> None:
        self._clock = {}
        self._pending = []
        self.inner.on_view(eview)

    def on_eview(self, eview: EView) -> None:
        self.inner.on_eview(eview)

    def on_message(self, sender: ProcessId, payload: Any, msg_id: MessageId) -> None:
        if not isinstance(payload, _CausalEnvelope):
            self.inner.on_message(sender, payload, msg_id)
            return
        self._pending.append((sender, payload, msg_id))
        self._drain()

    def _drain(self) -> None:
        progress = True
        while progress:
            progress = False
            for item in list(self._pending):
                sender, envelope, msg_id = item
                if self._deliverable(sender, dict(envelope.clock)):
                    self._pending.remove(item)
                    self._clock[sender] = self._clock.get(sender, 0) + 1
                    self.inner.on_message(sender, envelope.payload, msg_id)
                    progress = True

    def _deliverable(self, sender: ProcessId, clock: dict[ProcessId, int]) -> bool:
        assert self.stack is not None
        if self.stack.pid == sender:
            pass  # own messages respect FIFO already, but check anyway
        if clock.get(sender, 0) != self._clock.get(sender, 0) + 1:
            return False
        for pid, count in clock.items():
            if pid == sender:
                continue
            if count > self._clock.get(pid, 0):
                return False
        return True

    def on_direct(self, sender: ProcessId, payload: Any) -> None:
        self.inner.on_direct(sender, payload)

    def on_stop(self) -> None:
        self.inner.on_stop()


@dataclass(frozen=True)
class _ToSubmit:
    origin: ProcessId
    payload: Any


@dataclass(frozen=True)
class _ToOrdered:
    origin: ProcessId
    payload: Any


class TotalOrderApp(GroupApplication):
    """Sequencer-based totally ordered multicast.

    Submissions go point-to-point to the view coordinator, which
    re-multicasts them view-synchronously; the coordinator's multicast
    order *is* the total order, and Agreement (2.1) makes it uniform
    among survivors.  Submissions in flight at a view change are re-sent
    to the new coordinator (dedup is the application's business, as in
    all sequencer designs).
    """

    def __init__(self, inner: GroupApplication) -> None:
        super().__init__()
        self.inner = inner
        self._unacked: list[Any] = []

    def bind(self, stack) -> None:
        super().bind(stack)
        self.inner.bind(stack)

    def tobcast(self, payload: Any) -> None:
        """Totally ordered multicast."""
        assert self.stack is not None
        self._unacked.append(payload)
        self._submit(payload)

    def _submit(self, payload: Any) -> None:
        assert self.stack is not None
        view = self.stack.view
        if view is None:
            return
        submit = _ToSubmit(self.stack.pid, payload)
        if view.coordinator == self.stack.pid:
            self._sequence(submit)
        else:
            self.stack.send_direct(view.coordinator, submit)

    def _sequence(self, submit: _ToSubmit) -> None:
        assert self.stack is not None
        self.stack.multicast(_ToOrdered(submit.origin, submit.payload))

    # -- hooks ---------------------------------------------------------------

    def on_view(self, eview: EView) -> None:
        self.inner.on_view(eview)
        for payload in list(self._unacked):
            self._submit(payload)

    def on_eview(self, eview: EView) -> None:
        self.inner.on_eview(eview)

    def on_message(self, sender: ProcessId, payload: Any, msg_id: MessageId) -> None:
        if isinstance(payload, _ToOrdered):
            if payload.origin == self.stack.pid and payload.payload in self._unacked:
                self._unacked.remove(payload.payload)
            self.inner.on_message(payload.origin, payload.payload, msg_id)
        else:
            self.inner.on_message(sender, payload, msg_id)

    def on_direct(self, sender: ProcessId, payload: Any) -> None:
        if isinstance(payload, _ToSubmit):
            view = self.stack.view if self.stack else None
            if view is not None and view.coordinator == self.stack.pid:
                self._sequence(payload)
            return
        self.inner.on_direct(sender, payload)

    def on_stop(self) -> None:
        self.inner.on_stop()
