"""Application-facing callback interface.

A group application subclasses :class:`GroupApplication` and overrides
the hooks it cares about.  The stack calls:

* :meth:`on_view` for every installed view (an e-view, so flat-view
  applications simply ignore the structure);
* :meth:`on_eview` for every in-view e-view change;
* :meth:`on_message` for every view-synchronous delivery;
* :meth:`on_direct` for point-to-point payloads sent with
  :meth:`~repro.vsync.stack.GroupStack.send_direct` (state-transfer
  protocols use these — bulk data does not need view synchrony).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.evs.eview import EView
from repro.types import MessageId, ProcessId

if TYPE_CHECKING:  # pragma: no cover
    from repro.vsync.stack import GroupStack


class GroupApplication:
    """Base class for applications running on a :class:`GroupStack`."""

    def __init__(self) -> None:
        self.stack: "GroupStack | None" = None

    def bind(self, stack: "GroupStack") -> None:
        """Called once by the stack before the first event."""
        self.stack = stack

    # -- hooks (all optional) ----------------------------------------------

    def on_view(self, eview: EView) -> None:
        """A new view (with its e-view structure) was installed."""

    def on_eview(self, eview: EView) -> None:
        """The e-view structure changed within the current view."""

    def on_message(self, sender: ProcessId, payload: Any, msg_id: MessageId) -> None:
        """A view-synchronous multicast was delivered."""

    def on_direct(self, sender: ProcessId, payload: Any) -> None:
        """A point-to-point payload arrived."""

    def on_stop(self) -> None:
        """The hosting process crashed or left the group."""
