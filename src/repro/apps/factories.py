"""Named application factories shared by the CLI and the proc runtime.

A process-spawning cluster cannot ship a Python closure across an OS
process boundary, so applications are selected *by name*: the parent
passes ``--app <name>`` on the child's command line and both sides
resolve the same factory from this table.  The in-process CLI paths use
it too, so ``repro run --app file`` means the same thing on every
runtime.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.types import ProcessId

#: name -> builder(n_sites) -> (per-pid app factory | None).
_BUILDERS: dict[str, Callable[[int], Any]] = {}


def _register(name: str) -> Callable[[Callable[[int], Any]], Callable[[int], Any]]:
    def deco(builder: Callable[[int], Any]) -> Callable[[int], Any]:
        _BUILDERS[name] = builder
        return builder

    return deco


@_register("none")
def _none(n_sites: int) -> None:
    return None


@_register("file")
def _file(n_sites: int) -> Callable[[ProcessId], Any]:
    from repro.apps.replicated_file import ReplicatedFile

    return lambda pid: ReplicatedFile({s: 1 for s in range(n_sites)})


@_register("db")
def _db(n_sites: int) -> Callable[[ProcessId], Any]:
    from repro.apps.replicated_db import ParallelLookupDatabase

    return lambda pid: ParallelLookupDatabase({"all": lambda k, v: True})


@_register("store")
def _store(n_sites: int) -> Callable[[ProcessId], Any]:
    from repro.apps.versioned_store import VersionedStore

    return lambda pid: VersionedStore()


@_register("lock")
def _lock(n_sites: int) -> Callable[[ProcessId], Any]:
    from repro.apps.lock_manager import MajorityLockManager

    return lambda pid: MajorityLockManager(range(n_sites))


#: The selectable application names, for argparse choices.
APP_NAMES: tuple[str, ...] = tuple(sorted(_BUILDERS))


def app_factory(name: str, n_sites: int) -> Callable[[ProcessId], Any] | None:
    """Resolve ``name`` to a per-pid app factory (None for ``"none"``)."""
    try:
        builder = _BUILDERS[name]
    except KeyError:
        raise ValueError(
            f"unknown app {name!r}; pick one of {APP_NAMES}"
        ) from None
    return builder(n_sites)
