"""The paper's example applications, built on the group-object framework.

* :mod:`repro.apps.replicated_file` — Section 3's first example: a
  replicated file with weighted-vote quorums; writes need N-mode (a
  quorum view), reads are also served in R-mode and may return stale
  data;
* :mod:`repro.apps.replicated_db` — Section 3's second example: a fully
  replicated database whose look-up queries are executed in parallel,
  each member scanning its slice; "R-mode does not exist", every view
  change redistributes responsibility;
* :mod:`repro.apps.lock_manager` — Section 6.2's example: a
  mutually-exclusive write lock managed within majority views, whose
  shared state (manager identity + current holder) exercises all three
  shared-state problems.
"""

from repro.apps.replicated_file import ReplicatedFile, WriteHandle
from repro.apps.replicated_db import LookupHandle, ParallelLookupDatabase
from repro.apps.lock_manager import LockHandle, MajorityLockManager

__all__ = [
    "ReplicatedFile",
    "WriteHandle",
    "ParallelLookupDatabase",
    "LookupHandle",
    "MajorityLockManager",
    "LockHandle",
]
