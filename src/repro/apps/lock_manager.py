"""Majority write-lock manager (the Section 6.2 example).

    "suppose that external operations can be run only in a view
    containing a majority of processes and that their implementation
    involves the management of a mutually-exclusive write lock within
    such a view.  The shared global state will thus include the
    identities of the lock manager and the current lock holder (if
    any)."

The manager is the least member of the current majority view; clients
ask it for the lock with point-to-point requests, and grants/releases
are multicast so every member tracks (manager, holder) — the shared
state.  Because at most one concurrent view holds a majority, at most
one manager exists system-wide, giving global mutual exclusion; E10
verifies it on traces.

This object is the test bed for experiment E6: a process switching
from R-mode to S-mode on a new majority view must decide between the
paper's scenarios (i) state transfer from a surviving majority,
(ii) waiting for a creation protocol already in progress, and
(iii) creation from scratch — locally decidable with e-views, ambiguous
with flat views.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable

from repro.core.group_object import AppStateOffer, GroupObject
from repro.core.mode_functions import StaticMajorityModeFunction
from repro.core.modes import Mode
from repro.core.versioning import newest_incarnations
from repro.evs.eview import EView
from repro.types import MessageId, ProcessId, SiteId

_LOCK_KEY = "lock_manager.state"


@dataclass
class LockHandle:
    """Client-visible state of one acquire attempt."""

    requester: ProcessId
    status: str = "pending"  # pending | granted | denied | aborted

    @property
    def done(self) -> bool:
        return self.status != "pending"


@dataclass(frozen=True)
class _AcquireReq:
    requester: ProcessId


@dataclass(frozen=True)
class _ReleaseReq:
    requester: ProcessId


@dataclass(frozen=True)
class _Denied:
    holder: ProcessId


class MajorityLockManager(GroupObject):
    """The (manager, holder) shared state plus its client protocol."""

    def __init__(self, universe: Iterable[SiteId]) -> None:
        super().__init__(StaticMajorityModeFunction(universe))
        self.holder: ProcessId | None = None
        self.grants = 0
        self.denials = 0
        self._my_request: LockHandle | None = None

    # ------------------------------------------------------------------
    # Shared-state queries
    # ------------------------------------------------------------------

    @property
    def manager(self) -> ProcessId | None:
        """The lock manager: least member of the view, in N-mode only."""
        if self.mode is not Mode.NORMAL or self.stack.view is None:
            return None
        return min(self.stack.view.members)

    def i_hold_lock(self) -> bool:
        return self.holder == self.pid

    # ------------------------------------------------------------------
    # External operations
    # ------------------------------------------------------------------

    def acquire(self) -> LockHandle:
        """Request the write lock; requires N-mode (a majority view)."""
        handle = LockHandle(self.pid)
        manager = self.manager
        if manager is None:
            handle.status = "aborted"
            return handle
        self._my_request = handle
        request = _AcquireReq(self.pid)
        if manager == self.pid:
            self._manage(self.pid, request)
        else:
            self.stack.send_direct(manager, request)
        return handle

    def release(self) -> None:
        """Give the lock back (no-op unless we hold it)."""
        if not self.i_hold_lock():
            return
        manager = self.manager
        if manager is None:
            return
        request = _ReleaseReq(self.pid)
        if manager == self.pid:
            self._manage(self.pid, request)
        else:
            self.stack.send_direct(manager, request)

    # ------------------------------------------------------------------
    # Manager protocol
    # ------------------------------------------------------------------

    def _manage(self, src: ProcessId, request: Any) -> None:
        if self.manager != self.pid:
            return  # stale request; client will retry after the view change
        if isinstance(request, _AcquireReq):
            if self.holder is None:
                self.submit_op(("grant", request.requester))
            else:
                self.denials += 1
                if request.requester == self.pid:
                    self._deny_local()
                else:
                    self.stack.send_direct(request.requester, _Denied(self.holder))
        elif isinstance(request, _ReleaseReq):
            if request.requester == self.holder:
                self.submit_op(("release", request.requester))

    def _deny_local(self) -> None:
        if self._my_request is not None and not self._my_request.done:
            self._my_request.status = "denied"
            self._my_request = None

    def on_app_direct(self, sender: ProcessId, payload: Any) -> None:
        if isinstance(payload, (_AcquireReq, _ReleaseReq)):
            self._manage(sender, payload)
        elif isinstance(payload, _Denied):
            self._deny_local()

    # ------------------------------------------------------------------
    # Replicated state updates
    # ------------------------------------------------------------------

    def apply_op(self, sender: ProcessId, op: Any, msg_id: MessageId) -> None:
        kind, subject = op
        if kind == "grant":
            self.holder = subject
            self.grants += 1
            if subject == self.pid and self._my_request is not None:
                self._my_request.status = "granted"
                self._my_request = None
        elif kind == "release":
            if self.holder == subject:
                self.holder = None
        self._persist_lock()

    def on_view(self, eview: EView) -> None:
        if self._my_request is not None and not self._my_request.done:
            self._my_request.status = "aborted"
            self._my_request = None
        # A holder outside the new view lost the lock with its view: the
        # grant was only meaningful within the majority that issued it.
        if self.holder is not None and self.holder not in eview.members:
            self.holder = None
            self._persist_lock()
        super().on_view(eview)

    # ------------------------------------------------------------------
    # Shared-state policies
    # ------------------------------------------------------------------

    def snapshot_state(self) -> Any:
        return self.holder

    def adopt_state(self, state: Any) -> None:
        self.holder = state
        self._persist_lock()

    def merge_app_states(self, offers: list[AppStateOffer]) -> Any:
        """At most one majority can have granted a lock, so at most one
        offer carries a non-None holder; prefer it (highest version wins
        ties defensively).  Retired-incarnation offers are dropped first
        so a stale pre-crash holder cannot resurface."""
        best = max(
            newest_incarnations(offers),
            key=lambda o: (o.state is not None, o.version, o.sender),
        )
        return best.state

    def _persist_lock(self) -> None:
        if self.stack is not None:
            self.stack.storage.write(_LOCK_KEY, self.holder)
