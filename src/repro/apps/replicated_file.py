"""Replicated file with weighted-vote quorums (Section 3, example 1).

    "Consider a group object implementing a file with the two external
    operations read and write. ... associate with each replica of the
    file a vote and define a quorum to be a collection of votes that can
    be obtained in at most one concurrent view."

Correctness criteria, as stated by the paper and checked by E10:

* **writes** behave as if there were a single copy of the file — a
  write is acknowledged to the client only after a quorum of replicas
  applied it, and quorum intersection plus view synchrony guarantee
  every later quorum view knows it;
* **reads** may return stale data (they are served in R-mode too).

Mode interpretation (the paper's): a quorum view is N-mode; a
non-quorum view is R-mode (reads only); a view where some members lack
an up-to-date replica is S-mode until transfer completes.

File contents are *permanent* local state (Section 3 allows part of the
local state to survive failures): every applied write is persisted, so
after a total failure state creation can recover the file from the
last process(es) to fail.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.core.group_object import AppStateOffer, GroupObject
from repro.core.mode_functions import QuorumModeFunction
from repro.core.modes import Mode
from repro.core.versioning import QuorumTally, newest_incarnations
from repro.errors import ApplicationError
from repro.evs.eview import EView
from repro.types import MessageId, ProcessId, SiteId

_FILES_KEY = "replicated_file.contents"


@dataclass
class WriteHandle:
    """Client-visible completion state of one write."""

    name: str
    value: Any
    msg_id: MessageId | None = None
    acked_votes: int = 0
    status: str = "pending"  # pending | committed | aborted
    ackers: set[ProcessId] = field(default_factory=set)

    @property
    def done(self) -> bool:
        return self.status != "pending"


@dataclass(frozen=True)
class _WriteAck:
    msg_id: MessageId


class ReplicatedFile(GroupObject):
    """A quorum-replicated map of file names to contents."""

    def __init__(self, votes: Mapping[SiteId, int]) -> None:
        super().__init__(QuorumModeFunction(votes))
        self.votes = dict(votes)
        self.files: dict[str, tuple[Any, MessageId]] = {}
        # Quorum bookkeeping (pending handles, vote counting, the
        # early-ack race with synchronous self-delivery) lives in the
        # shared tally; votes are the static per-site weights.
        self._tally = QuorumTally(votes)
        self.reads_served = 0
        self.stale_reads_possible = 0

    def bind(self, stack) -> None:
        super().bind(stack)
        persisted = stack.storage.read(_FILES_KEY)
        if persisted is not None:
            self.files = persisted

    # ------------------------------------------------------------------
    # External operations
    # ------------------------------------------------------------------

    def write(self, name: str, value: Any) -> WriteHandle:
        """Start a write; returns a handle that commits once a quorum of
        votes acknowledged the update.  Requires N-mode."""
        handle = WriteHandle(name, value)
        if self.mode is not Mode.NORMAL:
            handle.status = "aborted"
            return handle
        msg_id = self.submit_op(("write", name, value))
        if msg_id is None:
            handle.status = "aborted"  # a view change is in progress
            return handle
        handle.msg_id = msg_id
        self._tally.open(msg_id, handle, self.pid)
        return handle

    def read(self, name: str) -> Any:
        """Read a file; allowed in N-mode and (possibly stale) R-mode."""
        if self.mode is None or self.mode is Mode.SETTLING:
            raise ApplicationError("read not served while settling")
        self.reads_served += 1
        if self.mode is Mode.REDUCED:
            self.stale_reads_possible += 1
        entry = self.files.get(name)
        return entry[0] if entry is not None else None

    def listing(self) -> dict[str, Any]:
        """All file names and contents (same staleness rules as read)."""
        return {name: value for name, (value, _) in self.files.items()}

    def op_allowed(self, op: Any, mode: Mode) -> bool:
        return mode is Mode.NORMAL  # only writes go through submit_op

    # ------------------------------------------------------------------
    # Replication machinery
    # ------------------------------------------------------------------

    def apply_op(self, sender: ProcessId, op: Any, msg_id: MessageId) -> None:
        kind, name, value = op
        if kind != "write":
            raise ApplicationError(f"unknown file op {kind!r}")
        current = self.files.get(name)
        # Last-writer-wins by message identifier: identical at every
        # replica regardless of interleaving with other senders.
        if current is None or current[1] < msg_id:
            self.files[name] = (value, msg_id)
        self._persist()
        if sender == self.pid:
            self._tally.ack(msg_id, self.pid, self.pid)  # our replica counts
        else:
            self.stack.send_direct(sender, _WriteAck(msg_id))

    def on_app_direct(self, sender: ProcessId, payload: Any) -> None:
        if isinstance(payload, _WriteAck):
            self._tally.ack(payload.msg_id, sender, self.pid)

    def on_view(self, eview: EView) -> None:
        # A view change aborts unacknowledged writes: their quorum can no
        # longer be certified in the view they were issued in (2.2).
        self._tally.abort_all()
        super().on_view(eview)

    # ------------------------------------------------------------------
    # Shared-state policies
    # ------------------------------------------------------------------

    def snapshot_state(self) -> dict[str, tuple[Any, MessageId]]:
        return dict(self.files)

    def adopt_state(self, state: dict[str, tuple[Any, MessageId]]) -> None:
        self.files = dict(state)
        self._persist()

    def merge_app_states(self, offers: list[AppStateOffer]) -> Any:
        """With quorum votes at most one donor cluster can exist, but a
        divergence-tolerant merge keeps us safe even under false
        suspicions: per file, the write with the greatest identifier
        wins (identifiers embed the view epoch, so later quorums win).
        Offers from retired incarnations of a site are dropped first."""
        merged: dict[str, tuple[Any, MessageId]] = {}
        for offer in newest_incarnations(offers):
            for name, (value, stamp) in offer.state.items():
                if name not in merged or merged[name][1] < stamp:
                    merged[name] = (value, stamp)
        return merged

    def _persist(self) -> None:
        if self.stack is not None:
            self.stack.storage.write(_FILES_KEY, self.files)
