"""Parallel-lookup replicated database (Section 3, example 2).

    "Consider a group object implementing a database with a look-up
    query interface.  For performance reasons, the database is fully
    replicated within the group and the query is performed in parallel
    by the group members, each being responsible for a subset of the
    database.  Clearly ... the only external operation (look-up) can be
    performed in any view.  Thus, R-mode does not exist.  Any event
    causing a view change, however, results in a transition to S-mode
    in order to redefine the division of responsibility ...  An
    inconsistency in this global state information could result in some
    portion of the database not being searched at all or being searched
    multiple times."

The shared global state is the *responsibility assignment*: member ``i``
of the sorted view membership scans the records whose key hashes to
bucket ``i mod n``.  The assignment is recomputed during settlement and
becomes valid at Reconcile; E10 checks the paper's invariant — in every
settled view the slices partition the keyspace with no gap and no
overlap.

Inserts are allowed in any view too (the database is a grow-only
collection), which makes this the paper's "weak consistency" example:
concurrent partitions keep making progress, and partition repair is a
genuine *state merging* problem solved by set union.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.core.group_object import AppStateOffer, GroupObject
from repro.core.mode_functions import AlwaysFullModeFunction
from repro.core.modes import Mode
from repro.core.versioning import newest_incarnations
from repro.evs.eview import EView
from repro.types import MessageId, ProcessId

_BUCKETS = 64


def _bucket(key: Any) -> int:
    return hash(str(key)) % _BUCKETS


@dataclass
class LookupHandle:
    """Completion state of one parallel look-up."""

    query_id: int
    predicate_name: str
    expected_replies: int
    results: set = field(default_factory=set)
    replied: set[ProcessId] = field(default_factory=set)
    status: str = "pending"  # pending | complete | aborted

    @property
    def done(self) -> bool:
        return self.status != "pending"


@dataclass(frozen=True)
class _LookupRequest:
    query_id: int
    origin: ProcessId
    predicate_name: str


@dataclass(frozen=True)
class _LookupReply:
    query_id: int
    matches: frozenset


class ParallelLookupDatabase(GroupObject):
    """A replicated set of ``(key, value)`` records with parallel scan.

    ``predicates`` maps names to filter functions; queries refer to
    predicates by name so the multicast payload stays data-only.
    """

    _RECORDS_KEY = "replicated_db.records"

    def __init__(self, predicates: dict[str, Callable[[Any, Any], bool]] | None = None) -> None:
        super().__init__(AlwaysFullModeFunction())
        self.records: dict[Any, Any] = {}
        self.predicates = dict(predicates or {})
        self.my_slice: tuple[int, int] | None = None  # (rank, view size)
        self._queries: dict[int, LookupHandle] = {}
        self._query_counter = 0
        self.scans_performed = 0

    def bind(self, stack) -> None:
        super().bind(stack)
        stored = stack.storage.read(self._RECORDS_KEY)
        if stored is not None:
            self.records = stored

    def _persist_records(self) -> None:
        if self.stack is not None:
            self.stack.storage.write(self._RECORDS_KEY, self.records)

    # ------------------------------------------------------------------
    # External operations (allowed in any view => also in S? No: the
    # paper's S-mode serves internal operations only, so lookups issued
    # while settling are rejected and the client retries.)
    # ------------------------------------------------------------------

    def insert(self, key: Any, value: Any) -> MessageId | None:
        """Add a record (grow-only, allowed whenever mode is N)."""
        return self.submit_op(("insert", key, value))

    def lookup(self, predicate_name: str) -> LookupHandle:
        """Run a parallel query; every view member scans its slice."""
        self._query_counter += 1
        handle = LookupHandle(
            self._query_counter,
            predicate_name,
            expected_replies=len(self.stack.view.members) if self.stack.view else 0,
        )
        if self.mode is not Mode.NORMAL or predicate_name not in self.predicates:
            handle.status = "aborted"
            return handle
        self._queries[handle.query_id] = handle
        request = _LookupRequest(handle.query_id, self.pid, predicate_name)
        if self.stack.multicast(request) is None:
            handle.status = "aborted"
            del self._queries[handle.query_id]
        return handle

    def op_allowed(self, op: Any, mode: Mode) -> bool:
        return mode is Mode.NORMAL

    # ------------------------------------------------------------------
    # Parallel scan machinery
    # ------------------------------------------------------------------

    def responsibility(self) -> set[int]:
        """The hash buckets this member currently scans."""
        if self.my_slice is None:
            return set()
        rank, size = self.my_slice
        return {b for b in range(_BUCKETS) if b % size == rank}

    def _recompute_slice(self, eview: EView) -> None:
        members = sorted(eview.members)
        self.my_slice = (members.index(self.pid), len(members))

    def _scan(self, request: _LookupRequest) -> frozenset:
        predicate = self.predicates[request.predicate_name]
        mine = self.responsibility()
        self.scans_performed += 1
        return frozenset(
            (key, value)
            for key, value in self.records.items()
            if _bucket(key) in mine and predicate(key, value)
        )

    def on_app_message(self, sender: ProcessId, payload: Any, msg_id: MessageId) -> None:
        if isinstance(payload, _LookupRequest):
            if self.my_slice is None or payload.predicate_name not in self.predicates:
                return
            matches = self._scan(payload)
            reply = _LookupReply(payload.query_id, matches)
            if payload.origin == self.pid:
                self._on_reply(self.pid, reply)
            else:
                self.stack.send_direct(payload.origin, reply)

    def on_app_direct(self, sender: ProcessId, payload: Any) -> None:
        if isinstance(payload, _LookupReply):
            self._on_reply(sender, payload)

    def _on_reply(self, sender: ProcessId, reply: _LookupReply) -> None:
        handle = self._queries.get(reply.query_id)
        if handle is None or handle.done:
            return
        if sender in handle.replied:
            return
        handle.replied.add(sender)
        handle.results |= reply.matches
        if len(handle.replied) >= handle.expected_replies:
            handle.status = "complete"
            del self._queries[reply.query_id]

    # ------------------------------------------------------------------
    # Group-object plumbing
    # ------------------------------------------------------------------

    def apply_op(self, sender: ProcessId, op: Any, msg_id: MessageId) -> None:
        kind, key, value = op
        if kind == "insert":
            self.records[key] = value
            self._persist_records()

    def on_view(self, eview: EView) -> None:
        # Any in-flight query may now miss slices: abort, client retries.
        for handle in self._queries.values():
            handle.status = "aborted"
        self._queries.clear()
        self.my_slice = None  # the division of responsibility is stale
        super().on_view(eview)
        if self.mode is Mode.NORMAL:
            # A view change that kept the membership (e.g. a divergence
            # repair) does not settle; the assignment is re-derived
            # directly since it is a pure function of the membership.
            self._recompute_slice(eview)

    def on_mode_change(self, change, eview: EView) -> None:
        if change.new is Mode.NORMAL:
            # Reconcile: the new division of responsibility takes effect.
            self._recompute_slice(eview)

    def snapshot_state(self) -> dict[Any, Any]:
        return dict(self.records)

    def adopt_state(self, state: dict[Any, Any]) -> None:
        self.records = dict(state)
        self._persist_records()

    def merge_app_states(self, offers: list[AppStateOffer]) -> Any:
        """Partition repair: the database is the union of what every
        concurrent partition accumulated.

        Offers attributed to retired incarnations of a site are dropped
        before folding: a crashed-and-recovered site can be represented
        twice (its stale pre-crash state via a donor cluster that never
        merged it, and its live incarnation), and folding in
        ``(version, sender)`` order would let the retired copy shadow
        records the newer incarnation overwrote.
        """
        merged: dict[Any, Any] = {}
        for offer in sorted(
            newest_incarnations(offers), key=lambda o: (o.version, o.sender)
        ):
            merged.update(offer.state)
        return merged
