"""Versioned record store: the client-serving group object.

``repro.apps.replicated_db`` demonstrates the paper's weak-consistency
example with an opaque grow-only record set; this object grows that
data model into what an external client tier needs — agreements as
living versioned data rather than static rows:

* **append-only per-key version chains**: a put never overwrites; it
  appends a :class:`~repro.core.versioning.VersionEntry` stamped with
  the write's :class:`~repro.core.versioning.Provenance`
  ``(view_epoch, writer, seq)``, so the full audit history of every key
  survives partitions and merges;
* **provenance-aware reconciliation**: partition repair is a
  deterministic provenance-union of the divergent chains
  (:func:`~repro.core.versioning.merge_chains`) — *every* partition's
  writes survive with correct attribution, not last-writer-wins;
* **read-your-writes tokens**: a committed put returns its provenance;
  a later read presenting that token is refused (``retry``) by any
  replica whose chain does not yet contain the write;
* **quorum acknowledgements**: a put is acknowledged only after a
  majority of the current view applied it
  (:class:`~repro.core.versioning.QuorumTally`), so an acked write is
  carried by at least one donor of every future merge and can never be
  lost — the invariant the ``acked_write_loss`` fuzz checker enforces
  on traces.

Writes are allowed in every view (each partition keeps serving its
clients; chains make the repair safe), which makes this the store-side
half of the paper's partition-availability story.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.core.group_object import AppStateOffer, GroupObject
from repro.core.mode_functions import AlwaysFullModeFunction
from repro.core.modes import Mode
from repro.core.versioning import (
    Provenance,
    QuorumTally,
    VersionEntry,
    merge_chains,
    newest_incarnations,
    provenance_of,
)
from repro.evs.eview import EView
from repro.trace.events import AppEvent
from repro.types import MessageId, ProcessId

_CHAINS_KEY = "versioned_store.chains"
_LOG_KEY = "versioned_store.log"

#: Appended writes between full-base compactions of the persisted state.
_COMPACT_EVERY = 4096


def prov_tuple(prov: Provenance) -> tuple[int, int, int, int]:
    """Trace/wire-friendly flat form of a provenance coordinate."""
    return (prov.view_epoch, prov.writer.site, prov.writer.incarnation, prov.seq)


def prov_from_tuple(raw: tuple[int, int, int, int]) -> Provenance:
    epoch, site, incarnation, seq = raw
    return Provenance(int(epoch), ProcessId(int(site), int(incarnation)), int(seq))


@dataclass
class PutHandle:
    """Client-visible completion state of one put."""

    key: Any
    value: Any
    client: str = ""
    client_seq: int = 0
    msg_id: MessageId | None = None
    acked_votes: int = 0
    status: str = "pending"  # pending | committed | aborted
    ackers: set[ProcessId] = field(default_factory=set)
    #: Read-your-writes token, set when the put commits.
    token: Provenance | None = None
    #: Completion callback (service tier replies to the client here).
    on_done: Callable[["PutHandle"], None] | None = None

    @property
    def done(self) -> bool:
        return self.status != "pending"


@dataclass(frozen=True)
class ReadResult:
    """Outcome of one get/history call."""

    status: str  # ok | missing | retry
    value: Any = None
    prov: Provenance | None = None
    chain: tuple[VersionEntry, ...] = ()


@dataclass(frozen=True)
class _StoreAck:
    msg_id: MessageId


class VersionedStore(GroupObject):
    """Append-only versioned key space with quorum-acked writes."""

    def __init__(self, audit_trace: bool = True) -> None:
        super().__init__(AlwaysFullModeFunction())
        #: key -> append-only chain ordered by provenance.
        self.chains: dict[Any, tuple[VersionEntry, ...]] = {}
        #: (client, client_seq) -> (key, prov): the exactly-once index.
        self._client_index: dict[tuple[str, int], tuple[Any, Provenance]] = {}
        self._tally = QuorumTally({})
        self.audit_trace = audit_trace
        self.puts_committed = 0
        self.puts_aborted = 0
        self.gets_served = 0
        self.ryw_retries = 0
        #: Writes appended to the persisted op log since the last
        #: full-base write (compaction trigger).
        self._log_len = 0

    def bind(self, stack) -> None:
        super().bind(stack)
        persisted = stack.storage.read(_CHAINS_KEY)
        log = stack.storage.read(_LOG_KEY)
        if persisted is not None or log:
            self.chains = dict(persisted or ())
            for key, entry in log or ():
                self.chains[key] = self.chains.get(key, ()) + (entry,)
            self._log_len = len(log or ())
            self._reindex()
            if self.audit_trace:
                # A recovered incarnation re-enters holding these
                # versions; record it so trace audits (the acked-write
                # checker) see disk-restored state, not just adoptions.
                self._record_state()

    # ------------------------------------------------------------------
    # External operations
    # ------------------------------------------------------------------

    def put(
        self,
        key: Any,
        value: Any,
        client: str = "",
        client_seq: int = 0,
        on_done: Callable[[PutHandle], None] | None = None,
        trace: Any = None,
    ) -> PutHandle:
        """Append a new version of ``key``.

        Returns a handle that commits once a majority of the current
        view applied the write; a view change aborts it and the client
        retries with the same ``(client, client_seq)``, which the
        exactly-once index collapses onto the original entry.
        ``trace`` names the causal parent of the replication multicast
        (the serving tier's request span; tracing only).
        """
        handle = PutHandle(key, value, client, client_seq, on_done=on_done)
        if client:
            done = self._client_index.get((client, client_seq))
            if done is not None:
                # A retry of a write that already landed: committed with
                # its original provenance, no new chain entry.
                handle.status = "committed"
                handle.token = done[1]
                self.puts_committed += 1
                self._finish(handle)
                return handle
        if self.mode is not Mode.NORMAL:
            handle.status = "aborted"
            self.puts_aborted += 1
            self._finish(handle)
            return handle
        msg_id = self.submit_op(("put", key, value, client, client_seq), trace)
        if msg_id is None:
            handle.status = "aborted"  # a view change is in progress
            self.puts_aborted += 1
            self._finish(handle)
            return handle
        handle.msg_id = msg_id
        committed = self._tally.open(msg_id, handle, self.pid)
        if committed is not None:
            self._committed(committed)
        return handle

    def get(self, key: Any, ryw: Provenance | None = None) -> ReadResult:
        """Read the newest version of ``key``.

        Served in any view (possibly stale across a partition).  With a
        read-your-writes token the read is refused (``retry``) unless
        this replica's chain already contains the tokened write — the
        client then retries, typically against the replica that acked.
        """
        if self.mode is None or self.mode is Mode.SETTLING:
            return ReadResult("retry")
        self.gets_served += 1
        chain = self.chains.get(key, ())
        if ryw is not None and all(e.prov != ryw for e in chain):
            self.ryw_retries += 1
            return ReadResult("retry")
        if not chain:
            return ReadResult("missing")
        head = chain[-1]
        return ReadResult("ok", head.value, head.prov)

    def history(self, key: Any, ryw: Provenance | None = None) -> ReadResult:
        """The full audit chain of ``key``, oldest first."""
        if self.mode is None or self.mode is Mode.SETTLING:
            return ReadResult("retry")
        self.gets_served += 1
        chain = self.chains.get(key, ())
        if ryw is not None and all(e.prov != ryw for e in chain):
            self.ryw_retries += 1
            return ReadResult("retry")
        if not chain:
            return ReadResult("missing")
        head = chain[-1]
        return ReadResult("ok", head.value, head.prov, chain)

    def leader(self) -> ProcessId | None:
        """Leader-read anchor: the least member of the current view."""
        if self.mode is not Mode.NORMAL or self.stack.view is None:
            return None
        return min(self.stack.view.members)

    def op_allowed(self, op: Any, mode: Mode) -> bool:
        return mode is Mode.NORMAL

    # ------------------------------------------------------------------
    # Replication machinery
    # ------------------------------------------------------------------

    def apply_op(self, sender: ProcessId, op: Any, msg_id: MessageId) -> None:
        kind, key, value, client, client_seq = op
        if kind != "put":
            return
        prov = provenance_of(msg_id)
        duplicate = bool(client) and (client, client_seq) in self._client_index
        if not duplicate:
            entry = VersionEntry(value, prov, client, client_seq)
            self.chains[key] = self.chains.get(key, ()) + (entry,)
            if client:
                self._client_index[(client, client_seq)] = (key, prov)
            self._persist_entry(key, entry)
            if self.audit_trace:
                self._record(
                    "store_apply",
                    {
                        "key": key,
                        "prov": prov_tuple(prov),
                        "client": client,
                        "client_seq": client_seq,
                    },
                )
        # Acknowledge even duplicates: the writer's retry still needs
        # its quorum certificate.
        if sender == self.pid:
            committed = self._tally.ack(msg_id, self.pid, self.pid)
            if committed is not None:
                self._committed(committed)
        else:
            self.stack.send_direct(sender, _StoreAck(msg_id))

    def on_app_direct(self, sender: ProcessId, payload: Any) -> None:
        if isinstance(payload, _StoreAck):
            committed = self._tally.ack(payload.msg_id, sender, self.pid)
            if committed is not None:
                self._committed(committed)

    def _committed(self, handle: PutHandle) -> None:
        self.puts_committed += 1
        done = None
        if handle.client:
            done = self._client_index.get((handle.client, handle.client_seq))
        if done is not None:
            handle.token = done[1]
        elif handle.msg_id is not None:
            handle.token = provenance_of(handle.msg_id)
        if self.audit_trace and handle.token is not None:
            self._record(
                "store_ack",
                {
                    "key": handle.key,
                    "prov": prov_tuple(handle.token),
                    "client": handle.client,
                    "client_seq": handle.client_seq,
                },
            )
        self._finish(handle)

    def _finish(self, handle: PutHandle) -> None:
        if handle.on_done is not None:
            callback, handle.on_done = handle.on_done, None
            callback(handle)

    def on_view(self, eview: EView) -> None:
        # Quorums are per view: abort what the old view cannot certify
        # and retally over the new membership (one vote per site).
        for handle in self._tally.abort_all():
            self.puts_aborted += 1
            self._finish(handle)
        self._tally = QuorumTally({m.site: 1 for m in eview.members})
        super().on_view(eview)

    def on_mode_change(self, change, eview: EView) -> None:
        if change.new is Mode.NORMAL and self.audit_trace:
            self._record_state()

    # ------------------------------------------------------------------
    # Shared-state policies
    # ------------------------------------------------------------------

    def snapshot_state(self) -> dict[Any, tuple[VersionEntry, ...]]:
        return dict(self.chains)

    def adopt_state(self, state: dict[Any, tuple[VersionEntry, ...]]) -> None:
        """Union the decided state into the local chains.

        Adoption must not *replace*: settlement offers are snapshots,
        and a put can commit between the moment this replica's offer
        was taken and the moment the decision arrives (Section 6.2's
        undisturbed internal operations — a same-membership reinstall
        settles while client ops keep flowing).  Replacing chains with
        the decided snapshot would silently drop those concurrent,
        possibly already-acked writes on every replica at once.  The
        chain set is a grow-only provenance union, so merging the
        decision with what is held locally is deterministic, idempotent
        and always safe.
        """
        merged: dict[Any, tuple[VersionEntry, ...]] = {}
        for key in set(state) | set(self.chains):
            merged[key] = merge_chains(
                (tuple(state.get(key, ())), self.chains.get(key, ()))
            )
        self.chains = merged
        self._reindex()
        self._persist()
        if self.audit_trace:
            self._record_state()

    def merge_app_states(self, offers: list[AppStateOffer]) -> Any:
        """Partition repair: provenance-union every donor's chains.

        Offers from retired incarnations of a site are dropped first —
        their surviving writes are also carried by whichever donor
        cluster merged them, and the retired copy must not shadow the
        newer incarnation's chains.
        """
        live = newest_incarnations(offers)
        merged: dict[Any, tuple[VersionEntry, ...]] = {}
        keys = {key for offer in live for key in offer.state}
        for key in keys:
            merged[key] = merge_chains(
                offer.state.get(key, ()) for offer in live
            )
        return merged

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _reindex(self) -> None:
        self._client_index = {
            (e.client, e.client_seq): (key, e.prov)
            for key, chain in self.chains.items()
            for e in chain
            if e.client
        }

    def _persist_entry(self, key: Any, entry: VersionEntry) -> None:
        """O(1) durability for one applied write: append to the op log.

        Rewriting (and snapshotting) the whole chain set on every put is
        O(total state) work on the serving path; on realnet that stalls
        the shared event loop long enough to trip the failure detector
        under load.  Instead each apply appends ``(key, entry)`` —
        ``entry`` is a frozen dataclass, so stable storage shares it
        without a copy — and the base is rewritten only on adoption or
        every ``_COMPACT_EVERY`` appends.
        """
        if self.stack is None:
            return
        self.stack.storage.append(_LOG_KEY, (key, entry))
        self._log_len += 1
        if self._log_len >= _COMPACT_EVERY:
            self._persist()

    def _persist(self) -> None:
        """Full-base write: persist every chain and reset the op log."""
        if self.stack is not None:
            self.stack.storage.write(_CHAINS_KEY, tuple(self.chains.items()))
            self.stack.storage.write(_LOG_KEY, [])
            self._log_len = 0

    def _record_state(self) -> None:
        provs = sorted(
            prov_tuple(e.prov) for chain in self.chains.values() for e in chain
        )
        self._record("store_state", {"provs": tuple(provs)})

    def _record(self, tag: str, data: Any) -> None:
        stack = self.stack
        if stack is not None:
            stack.recorder.record(
                AppEvent(time=stack.now, pid=stack.pid, tag=tag, data=data)
            )
