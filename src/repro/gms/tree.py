"""Deterministic aggregation tree for hierarchical view agreement.

At hundreds of members, the coordinator's flat prepare/flush/install
exchange makes it both the sender and the receiver of O(n) messages per
round.  The tree spreads that fan-out/fan-in over the members: the
coordinator is the root of a ``fanout``-ary heap-shaped tree over
``[coordinator] + sorted(other members)``; prepares and installs relay
down edge by edge, flush reports aggregate up, so no process touches
more than ``fanout`` peers per hop and the coordinator's inbound burst
drops from O(n) to O(fanout).

The tree is a pure function of ``(members, coordinator, fanout)`` —
every member computes the same one from the prepare it received, with no
extra coordination messages.  It is an *optimization overlay*, not a
correctness mechanism: when relays die, the round-timeout retry path
falls back to direct coordinator↔member exchange, so the protocol's
fault tolerance is unchanged.
"""

from __future__ import annotations

from typing import Iterable

from repro.types import ProcessId


class AggregationTree:
    """Heap-indexed ``fanout``-ary tree over one round's membership."""

    def __init__(
        self,
        members: Iterable[ProcessId],
        root: ProcessId,
        fanout: int,
    ) -> None:
        if fanout < 1:
            raise ValueError(f"tree fanout must be >= 1, got {fanout}")
        self.fanout = fanout
        self.order: list[ProcessId] = [root] + sorted(
            m for m in members if m != root
        )
        self._index = {pid: i for i, pid in enumerate(self.order)}

    def __contains__(self, pid: ProcessId) -> bool:
        return pid in self._index

    def parent(self, pid: ProcessId) -> ProcessId | None:
        """The tree parent of ``pid`` (None for the root)."""
        idx = self._index[pid]
        if idx == 0:
            return None
        return self.order[(idx - 1) // self.fanout]

    def children(self, pid: ProcessId) -> list[ProcessId]:
        """The direct children of ``pid`` (empty for leaves)."""
        idx = self._index[pid]
        first = idx * self.fanout + 1
        return self.order[first : first + self.fanout]

    def subtree_size(self, pid: ProcessId) -> int:
        """Number of members in the subtree rooted at ``pid`` (inclusive)."""
        total = 0
        frontier = [self._index[pid]]
        n = len(self.order)
        while frontier:
            idx = frontier.pop()
            total += 1
            first = idx * self.fanout + 1
            frontier.extend(range(first, min(first + self.fanout, n)))
        return total

    def ancestors(self, pid: ProcessId) -> list[ProcessId]:
        """Path from ``pid``'s parent up to the root, in order."""
        path: list[ProcessId] = []
        current = self.parent(pid)
        while current is not None:
            path.append(current)
            current = self.parent(current)
        return path
