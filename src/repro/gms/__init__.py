"""Partitionable group membership service.

Implements the membership half of view synchrony (Section 2): agreed
views per connected component, with *concurrent views* in concurrent
partitions — the model the paper insists on, as opposed to Isis's
primary-partition model (which lives in :mod:`repro.isis`).

The protocol is a coordinator-driven flush/agree/install loop described
in DESIGN.md §4.1; :mod:`repro.gms.membership` holds the state machine.
"""

from repro.gms.view import View
from repro.gms.messages import (
    Leave,
    PredecessorPlan,
    RoundId,
    VcFlush,
    VcInstall,
    VcNack,
    VcPrepare,
    VcPropose,
)
from repro.gms.membership import MembershipConfig, ViewAgreement

__all__ = [
    "View",
    "RoundId",
    "VcPropose",
    "VcPrepare",
    "VcNack",
    "VcFlush",
    "VcInstall",
    "PredecessorPlan",
    "Leave",
    "MembershipConfig",
    "ViewAgreement",
]
