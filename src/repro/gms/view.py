"""The view abstraction."""

from __future__ import annotations

from dataclasses import dataclass

from repro.types import ProcessId, ViewId


@dataclass(frozen=True)
class View:
    """An agreed snapshot of the group's believed-reachable membership.

    The installing coordinator is embedded in the identifier; since the
    protocol abdicates to smaller identifiers before deciding, it is
    always the least member, and doubles as the in-view sequencer for
    e-view changes.
    """

    view_id: ViewId
    members: frozenset[ProcessId]

    @property
    def coordinator(self) -> ProcessId:
        return self.view_id.coordinator

    @property
    def epoch(self) -> int:
        return self.view_id.epoch

    def __contains__(self, pid: ProcessId) -> bool:
        return pid in self.members

    def __len__(self) -> int:
        return len(self.members)

    def __str__(self) -> str:
        names = ",".join(str(p) for p in sorted(self.members))
        return f"View({self.view_id}: {names})"
