"""Coordinator-driven view agreement for partitionable groups.

One :class:`ViewAgreement` instance runs inside every
:class:`~repro.vsync.stack.GroupStack`.  The protocol (DESIGN.md §4.1):

1. A process whose failure detector disagrees with its view (or that
   hears a reachable peer report a different view identifier) *initiates*
   a change: it proposes its reachability estimate to the least
   unsuspected identifier, the coordinator candidate.
2. The coordinator runs numbered *rounds*: it broadcasts ``VcPrepare``;
   members stop multicasting, suspend delivery and e-view application,
   and answer ``VcFlush``.  Estimates are merged until a fixed point;
   members that stay silent past a timeout are dropped and the round
   restarts; discovering a smaller live identifier makes the coordinator
   abdicate to it.
3. When every proposed member has flushed, the coordinator *decides*:
   it picks a fresh epoch, computes per-predecessor-view delivery unions
   and the authoritative e-view log, projects the old subview / sv-set
   structure onto the survivors (Property 6.3), and broadcasts
   ``VcInstall``.  Members replay the e-view log tail, deliver the union
   (Agreement, 2.1) *in the old view*, then install.

Concurrent partitions run disjoint instances of this loop and install
concurrent views — the paper's partitionable model, where two successive
views can differ by arbitrarily many members (contrast
:mod:`repro.isis`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.evs.eview import EViewStructure, Subview, SvSet
from repro.gms.messages import (
    Leave,
    PredecessorPlan,
    RoundId,
    VcFlush,
    VcFlushBatch,
    VcInstall,
    VcNack,
    VcPrepare,
    VcPropose,
)
from repro.gms.tree import AggregationTree
from repro.gms.view import View
from repro.trace.events import ViewInstallEvent
from repro.types import (
    Message,
    MessageId,
    ProcessId,
    SubviewId,
    SvSetId,
    ViewId,
    min_process,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.vsync.stack import GroupStack

_MAX_EPOCH_KEY = "gms.max_epoch"


@dataclass
class MembershipConfig:
    """Protocol timers (virtual-time units; network latency is ~1)."""

    check_interval: float = 7.0
    flush_stall_timeout: float = 45.0
    round_timeout: float = 25.0
    min_initiate_gap: float = 3.0
    #: Aggregation-tree fanout for hierarchical view agreement
    #: (:mod:`repro.gms.tree`): prepares and installs relay down the
    #: tree, flush reports aggregate up it, so the coordinator touches
    #: O(fanout) peers per round instead of O(n).  0 keeps the flat
    #: coordinator↔member exchange; rounds with no interior relay
    #: (fewer than ``tree_fanout + 2`` members) stay flat regardless.
    #: Assumes a uniform value across the cluster — members rebuild the
    #: coordinator's tree locally from the round's membership.
    tree_fanout: int = 0
    #: Coordinator-side debounce for flush-reply expansion.  At scale,
    #: restarting the round on *every* flush that names a new reachable
    #: member makes bootstrap quadratic; with a debounce the extras
    #: batch up for this long and the round restarts once.  0 restarts
    #: immediately (the original behavior).
    expand_debounce: float = 0.0


@dataclass
class _Round:
    """Coordinator-side state of one prepare/flush round."""

    round_id: RoundId
    members: frozenset[ProcessId]
    replies: dict[ProcessId, VcFlush] = field(default_factory=dict)
    attempts: int = 0
    timer: object = None
    #: Tracing: the view change's root context (carried across round
    #: restarts), the round's agree-span context, and the round start.
    trace: object = None
    agree: object = None
    t0: float = 0.0


@dataclass
class _FlushAgg:
    """Member-side aggregation state for one tree round: the flushes of
    this member's subtree, batched before going up to ``parent``."""

    round_id: RoundId
    parent: ProcessId
    expected: int
    collected: dict[ProcessId, VcFlush] = field(default_factory=dict)
    timer: object = None
    sent: bool = False


class ViewAgreement:
    """The membership state machine of one process."""

    def __init__(self, stack: "GroupStack", config: MembershipConfig | None = None) -> None:
        self.stack = stack
        self.config = config or MembershipConfig()
        self.view: View | None = None
        self.flushing = False
        self._flushed_round: RoundId | None = None
        self._flush_since = 0.0
        self._round: _Round | None = None
        self._round_counter = 0
        self._last_initiate = -1e9
        self.max_epoch = int(stack.storage.read(_MAX_EPOCH_KEY, 0))
        self.views_installed = 0
        self.last_install_time = 0.0
        # Members dropped from a timed-out round are quarantined briefly
        # so flush-reply expansion does not immediately re-admit a
        # reachable-but-unresponsive process and livelock the round.
        self._quarantine: dict[ProcessId, float] = {}
        # Hierarchical agreement state: this member's subtree aggregator
        # (at most one flush round is in progress per member) and the
        # coordinator's debounced expansion set.
        self._flush_agg: _FlushAgg | None = None
        self._pending_extra: set[ProcessId] = set()
        self._expand_timer: object = None

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Bootstrap: install a singleton view, then watch for peers.

        Joining is uniform with partition healing: a fresh process is a
        one-member group whose view merges with others as soon as the
        failure detectors on both sides hear each other.
        """
        epoch = self.max_epoch + 1
        view = View(ViewId(epoch, self.stack.pid), frozenset({self.stack.pid}))
        structure = EViewStructure.singletons(epoch, view.members)
        self._install(view, structure, predecessors={})
        self.stack.set_periodic(self.config.check_interval, self._check)

    # -- trigger logic --------------------------------------------------------

    def _check(self) -> None:
        if self.view is None:
            return
        if self.flushing:
            if self.stack.now - self._flush_since > self.config.flush_stall_timeout:
                self._initiate()
            return
        reachable = self.stack.fd.reachable() - (
            self._quarantined() - {self.stack.pid}
        )
        disagreement = self.stack.fd.view_disagreement(since=self.last_install_time)
        if reachable != self.view.members or disagreement:
            self._initiate()

    def on_fd_change(self) -> None:
        """Failure-detector output changed; maybe start a view change."""
        self._check()

    def _initiate(self) -> None:
        now = self.stack.now
        if now - self._last_initiate < self.config.min_initiate_gap:
            return
        self._last_initiate = now
        target = (self.stack.fd.reachable() | {self.stack.pid}) - (
            self._quarantined() - {self.stack.pid}
        )
        obs = self.stack.obs
        root = obs.view_trigger(self.stack.pid, now) if obs is not None else None
        candidate = min_process(target)
        if candidate == self.stack.pid:
            self._start_round(target, trace=root)
        else:
            self.stack.send(
                candidate, VcPropose(self.stack.pid, target, trace=root)
            )

    # -- coordinator side ---------------------------------------------------------

    def on_propose(self, src: ProcessId, msg: VcPropose) -> None:
        target = (
            msg.target | self.stack.fd.reachable() | {self.stack.pid}
        ) - (self._quarantined() - {self.stack.pid})
        candidate = min_process(target)
        if candidate != self.stack.pid:
            # We are not the right coordinator; forward.
            self.stack.send(
                candidate, VcPropose(self.stack.pid, target, trace=msg.trace)
            )
            return
        if self._round is not None:
            extra = target - self._round.members
            if extra:
                self._start_round(self._round.members | extra)
            return
        self._start_round(target, trace=msg.trace)

    def _start_round(
        self, members: frozenset[ProcessId], trace: object = None
    ) -> None:
        members = members | {self.stack.pid}
        candidate = min_process(members)
        if candidate != self.stack.pid:
            # A smaller identifier belongs in the coordinator seat.
            self._cancel_round()
            self.stack.send(
                candidate, VcPropose(self.stack.pid, members, trace=trace)
            )
            return
        if self._round is not None and self._round.members == members:
            # The same round is already running; restarting it here would
            # reset its timeout forever and silent members could never be
            # dropped.  Let the round's own timer drive retries/shrinks.
            return
        if trace is None and self._round is not None:
            trace = self._round.trace  # restarts stay in the same tree
        self._cancel_round()
        self._round_counter += 1
        round_id: RoundId = (self.stack.pid, self._round_counter)
        obs = self.stack.obs
        agree = None
        if obs is not None:
            if trace is None:
                trace = obs.view_trigger(self.stack.pid, self.stack.now)
            agree = obs.view_agree_ctx(trace)
        rnd = _Round(
            round_id, members, trace=trace, agree=agree, t0=self.stack.now
        )
        rnd.timer = self.stack.set_timer(self.config.round_timeout, self._round_timeout)
        self._round = rnd
        prepare = VcPrepare(round_id, members, trace=agree)
        own = self.stack.pid
        if self._round_tree(own, members) is None:
            self.stack.send_many((m for m in members if m != own), prepare)
        # Tree mode sends nothing here: the self-delivery below relays
        # the prepare to the coordinator's tree children, exactly as
        # every interior member relays it onward to its own.
        self.on_prepare(self.stack.pid, prepare)

    def _round_tree(
        self, coordinator: ProcessId, members: frozenset[ProcessId]
    ) -> AggregationTree | None:
        """The aggregation tree of one round, or None when flat.

        A pure function of the round's coordinator and membership, so
        every member reconstructs the coordinator's tree locally from
        the prepare (or install) it received.
        """
        fanout = self.config.tree_fanout
        if fanout <= 0 or len(members) <= fanout + 1:
            return None
        return AggregationTree(members, coordinator, fanout)

    def _cancel_round(self) -> None:
        if self._round is not None and self._round.timer is not None:
            self._round.timer.cancel()  # type: ignore[attr-defined]
        self._round = None
        self._pending_extra.clear()
        if self._expand_timer is not None:
            self._expand_timer.cancel()  # type: ignore[attr-defined]
            self._expand_timer = None

    def _round_timeout(self) -> None:
        rnd = self._round
        if rnd is None:
            return
        missing = rnd.members - set(rnd.replies)
        if not missing:
            return
        rnd.attempts += 1
        if rnd.attempts == 1:
            # Maybe the prepare or the reply was lost — or, in tree
            # mode, a relay on the path died.  Ask again directly,
            # bypassing the tree in both directions.
            prepare = VcPrepare(
                rnd.round_id, rnd.members, direct=True, trace=rnd.agree
            )
            self.stack.send_many(missing, prepare)
            rnd.timer = self.stack.set_timer(
                self.config.round_timeout, self._round_timeout
            )
            return
        # Give up on the silent members and re-run without them.  Only
        # the *reachable* silent ones are quarantined — they can hear us
        # yet did not flush, which is exactly the livelock the
        # quarantine guards against.  An unreachable member is already
        # excluded by the failure detector; quarantining it too would
        # outlast the partition that silenced it and stall the heal-time
        # merge until the quarantine expires.
        until = self.stack.now + 4 * self.config.round_timeout
        reachable_now = self.stack.fd.reachable()
        for silent in missing:
            if silent in reachable_now:
                self._quarantine[silent] = until
        survivors = frozenset(rnd.replies) | {self.stack.pid}
        self._start_round(survivors)

    def _quarantined(self) -> frozenset[ProcessId]:
        now = self.stack.now
        self._quarantine = {
            pid: until for pid, until in self._quarantine.items() if until > now
        }
        return frozenset(self._quarantine)

    def on_nack(self, src: ProcessId, msg: VcNack) -> None:
        rnd = self._round
        if rnd is None or msg.round_id != rnd.round_id:
            return
        if msg.better < self.stack.pid:
            members = rnd.members
            self._cancel_round()
            self.stack.send(msg.better, VcPropose(self.stack.pid, members))

    def on_flush(self, src: ProcessId, msg: VcFlush) -> None:
        rnd = self._round
        if rnd is None or msg.round_id != rnd.round_id:
            return
        rnd.replies[msg.sender] = msg
        extra = (
            (msg.reachable - rnd.members)
            & self.stack.fd.reachable()
        ) - self._quarantined()
        if extra:
            if self.config.expand_debounce > 0:
                self._pending_extra |= extra
                if self._expand_timer is None:
                    self._expand_timer = self.stack.set_timer(
                        self.config.expand_debounce, self._expand_round
                    )
            else:
                self._start_round(rnd.members | extra)
                return
        if set(rnd.replies) == set(rnd.members) and not self._pending_extra:
            self._decide(rnd)

    def _expand_round(self) -> None:
        """Debounced expansion: fold every extra member the round's
        flush replies named into one restart."""
        self._expand_timer = None
        extra = frozenset(self._pending_extra)
        self._pending_extra.clear()
        rnd = self._round
        if rnd is None:
            return
        extra = (
            (extra - rnd.members) & self.stack.fd.reachable()
        ) - self._quarantined()
        if extra:
            self._start_round(rnd.members | extra)
        elif set(rnd.replies) == set(rnd.members):
            # The extras went unreachable while we debounced; the round
            # may already be complete without them.
            self._decide(rnd)

    def on_flush_batch(self, src: ProcessId, batch: VcFlushBatch) -> None:
        """A subtree's aggregated flush reports arrived (tree mode)."""
        if batch.round_id[0] == self.stack.pid:
            for flush in batch.flushes:
                self.on_flush(flush.sender, flush)
            return
        agg = self._flush_agg
        if agg is not None and agg.round_id == batch.round_id:
            self._agg_absorb(agg, batch.flushes)
            return
        # No aggregation state for this round — we moved on, or never
        # saw its prepare.  Forward straight to the coordinator so the
        # subtree's reports are not orphaned.
        self.stack.send(batch.round_id[0], batch)

    def _decide(self, rnd: _Round) -> None:
        """All members flushed: compute and broadcast the install."""
        replies = rnd.replies
        new_epoch = 1 + max(
            [self.max_epoch]
            + [f.max_epoch for f in replies.values()]
            + [f.view_id.epoch for f in replies.values()]
        )
        view = View(ViewId(new_epoch, self.stack.pid), rnd.members)

        # Group survivors by predecessor view.
        groups: dict[ViewId, list[VcFlush]] = {}
        for flush in replies.values():
            groups.setdefault(flush.view_id, []).append(flush)

        predecessors: dict[ViewId, PredecessorPlan] = {}
        subviews: list[Subview] = []
        svsets: list[SvSet] = []
        for prev_vid, flushes in groups.items():
            authority = max(flushes, key=lambda f: (f.eview_seq, f.sender))
            union: dict[MessageId, Message] = {}
            for flush in flushes:
                for m in flush.received:
                    union[m.msg_id] = m
            # Messages tagged past the authority's e-view position can
            # only come from non-survivors (a surviving sender would have
            # reported the higher position and become the authority);
            # dropping them keeps the e-view gate consistent at install.
            messages = tuple(
                union[mid]
                for mid in sorted(union)
                if union[mid].eview_seq <= authority.eview_seq
            )
            predecessors[prev_vid] = PredecessorPlan(
                messages=messages,
                evlog=authority.evlog,
                eview_seq=authority.eview_seq,
            )
            survivors = frozenset(f.sender for f in flushes)
            self._project_structure(
                authority.structure, survivors, new_epoch, subviews, svsets
            )

        structure = EViewStructure(tuple(subviews), tuple(svsets))
        install = VcInstall(
            rnd.round_id, view, structure, predecessors, trace=rnd.agree
        )
        obs = self.stack.obs
        if obs is not None:
            obs.view_agreed(
                self.stack.pid,
                rnd.agree,
                rnd.t0,
                self.stack.now,
                attrs=(
                    ("view", str(view.view_id)),
                    ("members", str(len(view.members))),
                ),
            )
        self._cancel_round()
        own = self.stack.pid
        tree = self._round_tree(own, view.members)
        if tree is None:
            self.stack.send_many((m for m in view.members if m != own), install)
        else:
            # Tree mode: hand the install to the tree children only;
            # each receiver relays it onward before its own processing.
            self.stack.send_many(tree.children(own), install)
        self.on_install(self.stack.pid, install)

    @staticmethod
    def _project_structure(
        structure: EViewStructure,
        survivors: frozenset[ProcessId],
        new_epoch: int,
        subviews: list[Subview],
        svsets: list[SvSet],
    ) -> None:
        """Project one predecessor group's structure onto its survivors.

        Subviews and sv-sets keep their *composition* (restricted to
        survivors; empty ones disappear) but get fresh identifiers keyed
        by their least member — identifiers from the old view cannot be
        reused because two concurrent predecessor views descending from
        a common ancestor may both carry the same ones.  The least
        member is unique within the new view since subviews (sv-sets)
        are disjoint, so the derived identifiers never clash.  Appends
        into the accumulator lists shared by all predecessor groups of
        the new view.
        """
        renamed: dict = {}
        for sv in structure.subviews:
            remaining = sv.members & survivors
            if remaining:
                new_sid = SubviewId(new_epoch, min(remaining), 0)
                renamed[sv.sid] = new_sid
                subviews.append(Subview(new_sid, remaining))
        for ss in structure.svsets:
            remaining_ids = frozenset(
                renamed[sid] for sid in ss.subviews if sid in renamed
            )
            if remaining_ids:
                anchor = min(
                    member
                    for sv in subviews
                    if sv.sid in remaining_ids
                    for member in sv.members
                )
                svsets.append(
                    SvSet(SvSetId(new_epoch, anchor, 0), remaining_ids)
                )

    # -- member side --------------------------------------------------------------

    def on_prepare(self, src: ProcessId, msg: VcPrepare) -> None:
        coordinator = msg.round_id[0]
        tree = None if msg.direct else self._round_tree(coordinator, msg.members)
        if tree is not None and self.stack.pid in tree:
            # Relay down the tree before any local decision: even a
            # member that nacks or abdicates must not orphan its
            # subtree — the round's liveness would then hang on the
            # coordinator's timeout instead of one extra hop.
            children = tree.children(self.stack.pid)
            if children:
                self.stack.send_many(children, msg)
        candidate = min_process(
            msg.members | self.stack.fd.reachable() | {self.stack.pid}
        )
        if candidate == self.stack.pid and coordinator != self.stack.pid:
            # We should coordinate instead; tell them and do it.
            self.stack.send(coordinator, VcNack(msg.round_id, self.stack.pid))
            self._start_round(
                (msg.members | self.stack.fd.reachable())
                - (self._quarantined() - {self.stack.pid}),
                trace=msg.trace,
            )
            return
        if candidate < coordinator:
            self.stack.send(coordinator, VcNack(msg.round_id, candidate))
            self.stack.send(
                candidate,
                VcPropose(
                    self.stack.pid, msg.members | {candidate}, trace=msg.trace
                ),
            )
            return
        self._flush_to(msg.round_id, coordinator, tree=tree, trace=msg.trace)

    def _flush_to(
        self,
        round_id: RoundId,
        coordinator: ProcessId,
        tree: AggregationTree | None = None,
        trace: object = None,
    ) -> None:
        if self.view is None:
            return
        if not self.flushing:
            self.flushing = True
            self._flush_since = self.stack.now
            obs = self.stack.obs
            if obs is not None:
                obs.view_change_started(self.stack.pid, self.stack.now, trace=trace)
            self.stack.channels.suspend()
            self.stack.evs.suspend()
        self._flushed_round = round_id
        eview_seq, structure, evlog = self.stack.evs.flush_snapshot()
        flush = VcFlush(
            round_id=round_id,
            sender=self.stack.pid,
            view_id=self.view.view_id,
            max_epoch=self.max_epoch,
            received=self.stack.channels.flush_report(),
            eview_seq=eview_seq,
            structure=structure,
            evlog=evlog,
            reachable=self.stack.fd.reachable(),
        )
        if coordinator == self.stack.pid:
            self.on_flush(self.stack.pid, flush)
        elif tree is not None and self.stack.pid in tree:
            self._agg_begin(round_id, tree, flush)
        else:
            self.stack.send(coordinator, flush)

    # -- tree aggregation (member side) -------------------------------------

    def _agg_begin(
        self, round_id: RoundId, tree: AggregationTree, own_flush: VcFlush
    ) -> None:
        """Open this member's subtree aggregator for one round.

        Leaves have a subtree of one, so their own flush goes up
        immediately; interior members hold for their children up to a
        quarter round-timeout, then send whatever arrived — the
        coordinator's own retry path covers true stragglers.
        """
        prev = self._flush_agg
        if prev is not None and prev.timer is not None:
            prev.timer.cancel()  # type: ignore[attr-defined]
        parent = tree.parent(self.stack.pid)
        assert parent is not None  # the coordinator never aggregates
        agg = _FlushAgg(
            round_id=round_id,
            parent=parent,
            expected=tree.subtree_size(self.stack.pid),
        )
        self._flush_agg = agg
        if agg.expected > 1:
            agg.timer = self.stack.set_timer(
                self.config.round_timeout / 4,
                lambda: self._agg_hold_expired(agg),
            )
        self._agg_absorb(agg, (own_flush,))

    def _agg_absorb(
        self, agg: _FlushAgg, flushes: tuple[VcFlush, ...]
    ) -> None:
        if agg.sent:
            # Stragglers after the hold expired: forward up unbatched so
            # they still reach the coordinator within this round.
            self.stack.send(agg.parent, VcFlushBatch(agg.round_id, tuple(flushes)))
            return
        for flush in flushes:
            agg.collected[flush.sender] = flush
        if len(agg.collected) >= agg.expected:
            self._agg_send(agg)

    def _agg_send(self, agg: _FlushAgg) -> None:
        agg.sent = True
        if agg.timer is not None:
            agg.timer.cancel()  # type: ignore[attr-defined]
            agg.timer = None
        batch = VcFlushBatch(
            agg.round_id,
            tuple(agg.collected[pid] for pid in sorted(agg.collected)),
        )
        self.stack.send(agg.parent, batch)

    def _agg_hold_expired(self, agg: _FlushAgg) -> None:
        if agg is not self._flush_agg or agg.sent:
            return
        self._agg_send(agg)

    def on_install(self, src: ProcessId, msg: VcInstall) -> None:
        if src != self.stack.pid:
            # Tree mode: relay to our tree children *before* the guards
            # below — even a member that moved past this round must not
            # orphan its subtree's installs.  (The coordinator's
            # self-delivery skips this; _decide already sent to its
            # children.)
            tree = self._round_tree(msg.round_id[0], msg.view.members)
            if tree is not None and self.stack.pid in tree:
                children = tree.children(self.stack.pid)
                if children:
                    self.stack.send_many(children, msg)
        if msg.round_id != self._flushed_round:
            return  # we have moved on to a newer round
        if self.view is not None and msg.view.view_id <= self.view.view_id:
            return  # never regress
        self._install(msg.view, msg.structure, msg.predecessors, trace=msg.trace)

    def _install(
        self,
        view: View,
        structure: EViewStructure,
        predecessors,
        trace: object = None,
    ) -> None:
        prev_view_id = self.view.view_id if self.view is not None else None
        if prev_view_id is not None and prev_view_id in predecessors:
            plan = predecessors[prev_view_id]
            # First catch up on the e-view changes the authority applied,
            # then deliver the union — both still in the old view.
            self.stack.evs.replay(plan.evlog, plan.eview_seq)
            self.stack.channels.deliver_plan(plan.messages)

        self.view = view
        self.last_install_time = self.stack.now
        self.max_epoch = max(self.max_epoch, view.epoch)
        self.stack.storage.write(_MAX_EPOCH_KEY, self.max_epoch)
        self.flushing = False
        self._flushed_round = None
        self.views_installed += 1

        self.stack.channels.install(view)
        self.stack.evs.install(view, structure)
        self.stack.recorder.record(
            ViewInstallEvent(
                time=self.stack.now,
                pid=self.stack.pid,
                view_id=view.view_id,
                members=view.members,
                prev_view_id=prev_view_id,
            )
        )
        obs = self.stack.obs
        if obs is not None:
            obs.view_installed(
                self.stack.pid, self.stack.now, trace=trace, view=view.view_id
            )
        self.stack.app.on_view(self.stack.evs.eview)
        self.stack.channels.activate()
        self.stack.channels.flush_pending_sends()
        self.stack.channels.try_deliver()

    # -- leaves ----------------------------------------------------------------------

    def announce_leave(self) -> None:
        if self.view is None:
            return
        own = self.stack.pid
        self.stack.send_many(
            (m for m in self.view.members if m != own), Leave(self.stack.pid)
        )

    def on_leave(self, src: ProcessId, msg: Leave) -> None:
        self.stack.fd.force_down(msg.sender.site)
        self._check()

    def on_abort(self, src: ProcessId, msg) -> None:
        """Round-abort notification; the base protocol has no pledged
        state to release (subclasses override)."""

    # -- queries ----------------------------------------------------------------------

    def current_view_id(self) -> ViewId | None:
        return self.view.view_id if self.view is not None else None
