"""Coordinator-driven view agreement for partitionable groups.

One :class:`ViewAgreement` instance runs inside every
:class:`~repro.vsync.stack.GroupStack`.  The protocol (DESIGN.md §4.1):

1. A process whose failure detector disagrees with its view (or that
   hears a reachable peer report a different view identifier) *initiates*
   a change: it proposes its reachability estimate to the least
   unsuspected identifier, the coordinator candidate.
2. The coordinator runs numbered *rounds*: it broadcasts ``VcPrepare``;
   members stop multicasting, suspend delivery and e-view application,
   and answer ``VcFlush``.  Estimates are merged until a fixed point;
   members that stay silent past a timeout are dropped and the round
   restarts; discovering a smaller live identifier makes the coordinator
   abdicate to it.
3. When every proposed member has flushed, the coordinator *decides*:
   it picks a fresh epoch, computes per-predecessor-view delivery unions
   and the authoritative e-view log, projects the old subview / sv-set
   structure onto the survivors (Property 6.3), and broadcasts
   ``VcInstall``.  Members replay the e-view log tail, deliver the union
   (Agreement, 2.1) *in the old view*, then install.

Concurrent partitions run disjoint instances of this loop and install
concurrent views — the paper's partitionable model, where two successive
views can differ by arbitrarily many members (contrast
:mod:`repro.isis`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.evs.eview import EViewStructure, Subview, SvSet
from repro.gms.messages import (
    Leave,
    PredecessorPlan,
    RoundId,
    VcFlush,
    VcInstall,
    VcNack,
    VcPrepare,
    VcPropose,
)
from repro.gms.view import View
from repro.trace.events import ViewInstallEvent
from repro.types import (
    Message,
    MessageId,
    ProcessId,
    SubviewId,
    SvSetId,
    ViewId,
    min_process,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.vsync.stack import GroupStack

_MAX_EPOCH_KEY = "gms.max_epoch"


@dataclass
class MembershipConfig:
    """Protocol timers (virtual-time units; network latency is ~1)."""

    check_interval: float = 7.0
    flush_stall_timeout: float = 45.0
    round_timeout: float = 25.0
    min_initiate_gap: float = 3.0


@dataclass
class _Round:
    """Coordinator-side state of one prepare/flush round."""

    round_id: RoundId
    members: frozenset[ProcessId]
    replies: dict[ProcessId, VcFlush] = field(default_factory=dict)
    attempts: int = 0
    timer: object = None


class ViewAgreement:
    """The membership state machine of one process."""

    def __init__(self, stack: "GroupStack", config: MembershipConfig | None = None) -> None:
        self.stack = stack
        self.config = config or MembershipConfig()
        self.view: View | None = None
        self.flushing = False
        self._flushed_round: RoundId | None = None
        self._flush_since = 0.0
        self._round: _Round | None = None
        self._round_counter = 0
        self._last_initiate = -1e9
        self.max_epoch = int(stack.storage.read(_MAX_EPOCH_KEY, 0))
        self.views_installed = 0
        self.last_install_time = 0.0
        # Members dropped from a timed-out round are quarantined briefly
        # so flush-reply expansion does not immediately re-admit a
        # reachable-but-unresponsive process and livelock the round.
        self._quarantine: dict[ProcessId, float] = {}

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Bootstrap: install a singleton view, then watch for peers.

        Joining is uniform with partition healing: a fresh process is a
        one-member group whose view merges with others as soon as the
        failure detectors on both sides hear each other.
        """
        epoch = self.max_epoch + 1
        view = View(ViewId(epoch, self.stack.pid), frozenset({self.stack.pid}))
        structure = EViewStructure.singletons(epoch, view.members)
        self._install(view, structure, predecessors={})
        self.stack.set_periodic(self.config.check_interval, self._check)

    # -- trigger logic --------------------------------------------------------

    def _check(self) -> None:
        if self.view is None:
            return
        if self.flushing:
            if self.stack.now - self._flush_since > self.config.flush_stall_timeout:
                self._initiate()
            return
        reachable = self.stack.fd.reachable() - (
            self._quarantined() - {self.stack.pid}
        )
        disagreement = self.stack.fd.view_disagreement(since=self.last_install_time)
        if reachable != self.view.members or disagreement:
            self._initiate()

    def on_fd_change(self) -> None:
        """Failure-detector output changed; maybe start a view change."""
        self._check()

    def _initiate(self) -> None:
        now = self.stack.now
        if now - self._last_initiate < self.config.min_initiate_gap:
            return
        self._last_initiate = now
        target = (self.stack.fd.reachable() | {self.stack.pid}) - (
            self._quarantined() - {self.stack.pid}
        )
        candidate = min_process(target)
        if candidate == self.stack.pid:
            self._start_round(target)
        else:
            self.stack.send(candidate, VcPropose(self.stack.pid, target))

    # -- coordinator side ---------------------------------------------------------

    def on_propose(self, src: ProcessId, msg: VcPropose) -> None:
        target = (
            msg.target | self.stack.fd.reachable() | {self.stack.pid}
        ) - (self._quarantined() - {self.stack.pid})
        candidate = min_process(target)
        if candidate != self.stack.pid:
            # We are not the right coordinator; forward.
            self.stack.send(candidate, VcPropose(self.stack.pid, target))
            return
        if self._round is not None:
            extra = target - self._round.members
            if extra:
                self._start_round(self._round.members | extra)
            return
        self._start_round(target)

    def _start_round(self, members: frozenset[ProcessId]) -> None:
        members = members | {self.stack.pid}
        candidate = min_process(members)
        if candidate != self.stack.pid:
            # A smaller identifier belongs in the coordinator seat.
            self._cancel_round()
            self.stack.send(candidate, VcPropose(self.stack.pid, members))
            return
        if self._round is not None and self._round.members == members:
            # The same round is already running; restarting it here would
            # reset its timeout forever and silent members could never be
            # dropped.  Let the round's own timer drive retries/shrinks.
            return
        self._cancel_round()
        self._round_counter += 1
        round_id: RoundId = (self.stack.pid, self._round_counter)
        rnd = _Round(round_id, members)
        rnd.timer = self.stack.set_timer(self.config.round_timeout, self._round_timeout)
        self._round = rnd
        prepare = VcPrepare(round_id, members)
        own = self.stack.pid
        self.stack.send_many((m for m in members if m != own), prepare)
        self.on_prepare(self.stack.pid, prepare)

    def _cancel_round(self) -> None:
        if self._round is not None and self._round.timer is not None:
            self._round.timer.cancel()  # type: ignore[attr-defined]
        self._round = None

    def _round_timeout(self) -> None:
        rnd = self._round
        if rnd is None:
            return
        missing = rnd.members - set(rnd.replies)
        if not missing:
            return
        rnd.attempts += 1
        if rnd.attempts == 1:
            # Maybe the prepare or the reply was lost; ask again.
            prepare = VcPrepare(rnd.round_id, rnd.members)
            self.stack.send_many(missing, prepare)
            rnd.timer = self.stack.set_timer(
                self.config.round_timeout, self._round_timeout
            )
            return
        # Give up on the silent members and re-run without them.
        until = self.stack.now + 4 * self.config.round_timeout
        for silent in missing:
            self._quarantine[silent] = until
        survivors = frozenset(rnd.replies) | {self.stack.pid}
        self._start_round(survivors)

    def _quarantined(self) -> frozenset[ProcessId]:
        now = self.stack.now
        self._quarantine = {
            pid: until for pid, until in self._quarantine.items() if until > now
        }
        return frozenset(self._quarantine)

    def on_nack(self, src: ProcessId, msg: VcNack) -> None:
        rnd = self._round
        if rnd is None or msg.round_id != rnd.round_id:
            return
        if msg.better < self.stack.pid:
            members = rnd.members
            self._cancel_round()
            self.stack.send(msg.better, VcPropose(self.stack.pid, members))

    def on_flush(self, src: ProcessId, msg: VcFlush) -> None:
        rnd = self._round
        if rnd is None or msg.round_id != rnd.round_id:
            return
        rnd.replies[msg.sender] = msg
        extra = (
            (msg.reachable - rnd.members)
            & self.stack.fd.reachable()
        ) - self._quarantined()
        if extra:
            self._start_round(rnd.members | extra)
            return
        if set(rnd.replies) == set(rnd.members):
            self._decide(rnd)

    def _decide(self, rnd: _Round) -> None:
        """All members flushed: compute and broadcast the install."""
        replies = rnd.replies
        new_epoch = 1 + max(
            [self.max_epoch]
            + [f.max_epoch for f in replies.values()]
            + [f.view_id.epoch for f in replies.values()]
        )
        view = View(ViewId(new_epoch, self.stack.pid), rnd.members)

        # Group survivors by predecessor view.
        groups: dict[ViewId, list[VcFlush]] = {}
        for flush in replies.values():
            groups.setdefault(flush.view_id, []).append(flush)

        predecessors: dict[ViewId, PredecessorPlan] = {}
        subviews: list[Subview] = []
        svsets: list[SvSet] = []
        for prev_vid, flushes in groups.items():
            authority = max(flushes, key=lambda f: (f.eview_seq, f.sender))
            union: dict[MessageId, Message] = {}
            for flush in flushes:
                for m in flush.received:
                    union[m.msg_id] = m
            # Messages tagged past the authority's e-view position can
            # only come from non-survivors (a surviving sender would have
            # reported the higher position and become the authority);
            # dropping them keeps the e-view gate consistent at install.
            messages = tuple(
                union[mid]
                for mid in sorted(union)
                if union[mid].eview_seq <= authority.eview_seq
            )
            predecessors[prev_vid] = PredecessorPlan(
                messages=messages,
                evlog=authority.evlog,
                eview_seq=authority.eview_seq,
            )
            survivors = frozenset(f.sender for f in flushes)
            self._project_structure(
                authority.structure, survivors, new_epoch, subviews, svsets
            )

        structure = EViewStructure(tuple(subviews), tuple(svsets))
        install = VcInstall(rnd.round_id, view, structure, predecessors)
        self._cancel_round()
        own = self.stack.pid
        self.stack.send_many((m for m in view.members if m != own), install)
        self.on_install(self.stack.pid, install)

    @staticmethod
    def _project_structure(
        structure: EViewStructure,
        survivors: frozenset[ProcessId],
        new_epoch: int,
        subviews: list[Subview],
        svsets: list[SvSet],
    ) -> None:
        """Project one predecessor group's structure onto its survivors.

        Subviews and sv-sets keep their *composition* (restricted to
        survivors; empty ones disappear) but get fresh identifiers keyed
        by their least member — identifiers from the old view cannot be
        reused because two concurrent predecessor views descending from
        a common ancestor may both carry the same ones.  The least
        member is unique within the new view since subviews (sv-sets)
        are disjoint, so the derived identifiers never clash.  Appends
        into the accumulator lists shared by all predecessor groups of
        the new view.
        """
        renamed: dict = {}
        for sv in structure.subviews:
            remaining = sv.members & survivors
            if remaining:
                new_sid = SubviewId(new_epoch, min(remaining), 0)
                renamed[sv.sid] = new_sid
                subviews.append(Subview(new_sid, remaining))
        for ss in structure.svsets:
            remaining_ids = frozenset(
                renamed[sid] for sid in ss.subviews if sid in renamed
            )
            if remaining_ids:
                anchor = min(
                    member
                    for sv in subviews
                    if sv.sid in remaining_ids
                    for member in sv.members
                )
                svsets.append(
                    SvSet(SvSetId(new_epoch, anchor, 0), remaining_ids)
                )

    # -- member side --------------------------------------------------------------

    def on_prepare(self, src: ProcessId, msg: VcPrepare) -> None:
        coordinator = msg.round_id[0]
        candidate = min_process(
            msg.members | self.stack.fd.reachable() | {self.stack.pid}
        )
        if candidate == self.stack.pid and coordinator != self.stack.pid:
            # We should coordinate instead; tell them and do it.
            self.stack.send(coordinator, VcNack(msg.round_id, self.stack.pid))
            self._start_round(
                (msg.members | self.stack.fd.reachable())
                - (self._quarantined() - {self.stack.pid})
            )
            return
        if candidate < coordinator:
            self.stack.send(coordinator, VcNack(msg.round_id, candidate))
            self.stack.send(
                candidate, VcPropose(self.stack.pid, msg.members | {candidate})
            )
            return
        self._flush_to(msg.round_id, coordinator)

    def _flush_to(self, round_id: RoundId, coordinator: ProcessId) -> None:
        if self.view is None:
            return
        if not self.flushing:
            self.flushing = True
            self._flush_since = self.stack.now
            obs = self.stack.obs
            if obs is not None:
                obs.view_change_started(self.stack.pid, self.stack.now)
            self.stack.channels.suspend()
            self.stack.evs.suspend()
        self._flushed_round = round_id
        eview_seq, structure, evlog = self.stack.evs.flush_snapshot()
        flush = VcFlush(
            round_id=round_id,
            sender=self.stack.pid,
            view_id=self.view.view_id,
            max_epoch=self.max_epoch,
            received=self.stack.channels.flush_report(),
            eview_seq=eview_seq,
            structure=structure,
            evlog=evlog,
            reachable=self.stack.fd.reachable(),
        )
        if coordinator == self.stack.pid:
            self.on_flush(self.stack.pid, flush)
        else:
            self.stack.send(coordinator, flush)

    def on_install(self, src: ProcessId, msg: VcInstall) -> None:
        if msg.round_id != self._flushed_round:
            return  # we have moved on to a newer round
        if self.view is not None and msg.view.view_id <= self.view.view_id:
            return  # never regress
        self._install(msg.view, msg.structure, msg.predecessors)

    def _install(
        self,
        view: View,
        structure: EViewStructure,
        predecessors,
    ) -> None:
        prev_view_id = self.view.view_id if self.view is not None else None
        if prev_view_id is not None and prev_view_id in predecessors:
            plan = predecessors[prev_view_id]
            # First catch up on the e-view changes the authority applied,
            # then deliver the union — both still in the old view.
            self.stack.evs.replay(plan.evlog, plan.eview_seq)
            self.stack.channels.deliver_plan(plan.messages)

        self.view = view
        self.last_install_time = self.stack.now
        self.max_epoch = max(self.max_epoch, view.epoch)
        self.stack.storage.write(_MAX_EPOCH_KEY, self.max_epoch)
        self.flushing = False
        self._flushed_round = None
        self.views_installed += 1

        self.stack.channels.install(view)
        self.stack.evs.install(view, structure)
        self.stack.recorder.record(
            ViewInstallEvent(
                time=self.stack.now,
                pid=self.stack.pid,
                view_id=view.view_id,
                members=view.members,
                prev_view_id=prev_view_id,
            )
        )
        obs = self.stack.obs
        if obs is not None:
            obs.view_installed(self.stack.pid, self.stack.now)
        self.stack.app.on_view(self.stack.evs.eview)
        self.stack.channels.activate()
        self.stack.channels.flush_pending_sends()
        self.stack.channels.try_deliver()

    # -- leaves ----------------------------------------------------------------------

    def announce_leave(self) -> None:
        if self.view is None:
            return
        own = self.stack.pid
        self.stack.send_many(
            (m for m in self.view.members if m != own), Leave(self.stack.pid)
        )

    def on_leave(self, src: ProcessId, msg: Leave) -> None:
        self.stack.fd.force_down(msg.sender.site)
        self._check()

    def on_abort(self, src: ProcessId, msg) -> None:
        """Round-abort notification; the base protocol has no pledged
        state to release (subclasses override)."""

    # -- queries ----------------------------------------------------------------------

    def current_view_id(self) -> ViewId | None:
        return self.view.view_id if self.view is not None else None
