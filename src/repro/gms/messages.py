"""Wire messages of the view-agreement protocol.

The protocol (DESIGN.md §4.1) uses five message types:

``VcPropose``  any process → coordinator candidate: "membership looks
               like ``target``, please run a view change".
``VcPrepare``  coordinator → proposed members: start of a round; the
               receiver stops sending application multicasts and flushes.
``VcFlush``    member → coordinator: everything the coordinator needs to
               decide — the member's predecessor view, every message it
               received in it, its e-view position and delta log, its own
               reachability estimate, and the largest epoch it has seen.
``VcNack``     member → coordinator: "a smaller-identifier coordinator
               candidate exists; abdicate to it".
``VcInstall``  coordinator → members: the decision.  Per predecessor
               view it carries the union of received messages (whose
               delivery before installation is exactly what yields
               Agreement, Property 2.1) and the authoritative e-view
               delta log (whose replay preserves Properties 6.1-6.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.evs.eview import EvDelta, EViewStructure
from repro.gms.view import View
from repro.types import Message, ProcessId, ViewId

# A round is identified by its coordinator plus a per-coordinator counter.
RoundId = tuple[ProcessId, int]


@dataclass(frozen=True)
class VcPropose:
    """Request that ``target`` become the next view.

    ``trace`` roots the causal tree of the resulting view change at the
    proposer's trigger (tracing only; ``None`` when tracing is off).
    """

    sender: ProcessId
    target: frozenset[ProcessId]
    trace: Any = None


@dataclass(frozen=True)
class VcPrepare:
    """Round start: flush and report back.

    ``direct`` asks the receiver to bypass the aggregation tree and
    flush straight to the coordinator — set on round-timeout resends,
    where a dead relay may be exactly why the first prepare (or its
    aggregated reply) never made it.
    """

    round_id: RoundId
    members: frozenset[ProcessId]
    direct: bool = False
    #: Causal context of the coordinator's agree span; members parent
    #: their flush spans under it (tracing only).
    trace: Any = None


@dataclass(frozen=True)
class VcNack:
    """Refusal: ``better`` should coordinate instead."""

    round_id: RoundId
    better: ProcessId


@dataclass(frozen=True)
class VcFlush:
    """A member's flush report for one round.

    ``structure`` snapshots the member's e-view structure at its applied
    sequence number ``eview_seq``; the coordinator adopts, per
    predecessor view, the snapshot of the member with the highest
    ``eview_seq`` (the *authority*) and replays its ``evlog`` tail at the
    other survivors so everyone leaves the view at the same structure.
    """

    round_id: RoundId
    sender: ProcessId
    view_id: ViewId
    max_epoch: int
    received: tuple[Message, ...]
    eview_seq: int
    structure: EViewStructure
    evlog: tuple[EvDelta, ...]
    reachable: frozenset[ProcessId]


@dataclass(frozen=True)
class PredecessorPlan:
    """What survivors of one predecessor view must do before installing:
    deliver ``messages`` (the union over survivors) and replay the
    authoritative e-view delta log up to ``eview_seq``."""

    messages: tuple[Message, ...]
    evlog: tuple[EvDelta, ...]
    eview_seq: int


@dataclass(frozen=True)
class VcInstall:
    """The coordinator's decision for a round."""

    round_id: RoundId
    view: View
    structure: EViewStructure
    predecessors: Mapping[ViewId, PredecessorPlan] = field(default_factory=dict)
    #: Causal context of the round's agree span; members parent their
    #: install spans under it (tracing only).
    trace: Any = None


@dataclass(frozen=True)
class VcFlushBatch:
    """Relay → tree parent: flush reports aggregated up the tree.

    With hierarchical agreement (``MembershipConfig.tree_fanout > 0``)
    members do not send :class:`VcFlush` to the coordinator directly;
    each interior member of the aggregation tree collects its subtree's
    reports and forwards them as one batch, so the coordinator's inbound
    burst per round is O(fanout), not O(n).
    """

    round_id: RoundId
    flushes: tuple[VcFlush, ...]


@dataclass(frozen=True)
class VcAbort:
    """Coordinator -> members: the round is dead, release whatever you
    pledged to it (the Isis baseline's endorsement, notably).  The base
    partitionable protocol never needs it — members there re-flush
    freely — but a linear-membership member must not stay pledged to a
    coordinator whose every decision is blocked by the majority rule."""

    round_id: RoundId


@dataclass(frozen=True)
class Leave:
    """Graceful departure announcement."""

    sender: ProcessId
