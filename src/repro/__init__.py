"""Reproduction of *On Programming with View Synchrony* (ICDCS 1996).

Babaoğlu, Bartoli and Dini's paper analyses the *shared state problem*
in view-synchronous programming — state transfer, state creation and
state merging — and proposes *enriched view synchrony* (subviews and
sv-sets) to make the problem locally classifiable.  This package builds
the complete system the paper describes, from the asynchronous network
up:

``repro.sim`` / ``repro.net``
    deterministic discrete-event kernel and partitionable network;
``repro.fd`` / ``repro.gms`` / ``repro.vsync``
    failure detection, partitionable membership, view-synchronous
    multicast (Properties 2.1-2.3);
``repro.evs``
    enriched views: subviews, sv-sets, merge calls (Properties 6.1-6.3);
``repro.core``
    the paper's application model — N/R/S modes (Figure 1), the
    shared-state taxonomy and its classifiers, group objects, state
    transfer / creation / merging machinery;
``repro.isis``
    the Isis-style primary-partition baseline (Section 5);
``repro.apps``
    the paper's example applications (replicated file, parallel-lookup
    database, majority lock manager);
``repro.trace`` / ``repro.workload`` / ``repro.bench``
    trace recording, property checkers, fault-schedule generators and
    the experiment harness behind EXPERIMENTS.md.

Quickstart::

    from repro import Cluster

    cluster = Cluster(n_sites=3, config=None)
    cluster.settle()
    cluster.stack_at(0).multicast("hello group")
    cluster.run_for(10)
"""

from repro.errors import (
    ApplicationError,
    ClassificationError,
    EnrichedViewError,
    InvariantViolation,
    MembershipError,
    NetworkError,
    ReproError,
    SimulationError,
    ViewSynchronyError,
)
from repro.types import (
    Message,
    MessageId,
    ProcessId,
    SiteId,
    SubviewId,
    SvSetId,
    ViewId,
)
from repro.gms.view import View
from repro.evs.eview import EView, EViewStructure, Subview, SvSet
from repro.vsync.events import GroupApplication
from repro.vsync.stack import GroupStack, StackConfig
from repro.runtime.cluster import Cluster, ClusterConfig

__version__ = "1.0.0"

__all__ = [
    "ReproError",
    "SimulationError",
    "NetworkError",
    "MembershipError",
    "ViewSynchronyError",
    "EnrichedViewError",
    "ApplicationError",
    "InvariantViolation",
    "ClassificationError",
    "ProcessId",
    "SiteId",
    "ViewId",
    "MessageId",
    "Message",
    "SubviewId",
    "SvSetId",
    "View",
    "EView",
    "EViewStructure",
    "Subview",
    "SvSet",
    "GroupApplication",
    "GroupStack",
    "StackConfig",
    "Cluster",
    "ClusterConfig",
    "__version__",
]
