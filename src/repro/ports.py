"""Backend ports: the contracts between protocols and their runtime.

The protocol layers (:mod:`repro.fd`, :mod:`repro.gms`, :mod:`repro.vsync`,
:mod:`repro.evs`) never name a concrete scheduler or network class — they
talk to whatever their :class:`~repro.sim.process.Process` was wired to.
Historically those contracts were implicit duck types defined by the
simulator; this module states them explicitly so every backend — the
deterministic discrete-event simulator (:mod:`repro.sim` +
:mod:`repro.net`) and the asyncio real-network runtime
(:mod:`repro.realnet`) — is checked against the *same* interface, by the
type checker and by the conformance tests in
``tests/test_realnet_unit.py``.

Three ports exist:

:class:`SchedulerPort`
    A clock plus two scheduling lanes.  The cancellable lane
    (:meth:`~SchedulerPort.at` / :meth:`~SchedulerPort.after`) returns a
    :class:`CancellableEvent` handle — timers use it.  The fire-and-forget
    lane (:meth:`~SchedulerPort.fire_at` / :meth:`~SchedulerPort.fire_after`)
    allocates no handle — message deliveries use it.  ``now`` is *backend
    time*: virtual units in the simulator, seconds since backend start on
    a wall clock.  Protocol code must only ever compare or difference
    ``now`` values, never interpret them absolutely.

:class:`NetworkPort`
    Registration plus the four transmission calls the stack uses:
    point-to-point and multicast, each in process-addressed and
    site-addressed (reach-the-current-incarnation) flavours.  All four
    are fire-and-forget and may silently drop — every protocol above is
    written to tolerate loss.

:class:`ClusterPort`
    The contract one layer up: what the harness code *around* the stacks
    (workload clients, fault scenarios, invariant monitors, trace-based
    property checks, the CLI) needs from a running cluster, regardless
    of which backend drives it.  The simulator's
    :class:`~repro.runtime.cluster.Cluster` satisfies it natively; the
    real-network runtime satisfies it through the blocking
    :class:`~repro.realnet.driver.RealClusterDriver` adapter (the
    underlying :class:`~repro.realnet.cluster.RealCluster` exposes the
    same surface with ``async`` waiting methods for asyncio-native
    callers).  :func:`make_cluster` builds either backend behind the
    port, so consumers never name a concrete cluster class.

Keep this module import-light: it must be importable from
:mod:`repro.sim.process` without touching :mod:`repro.net` (which imports
the process module back).  Runtime modules are only imported lazily,
inside :func:`make_cluster`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Iterable, Protocol, runtime_checkable

from repro.types import ProcessId, SiteId

if TYPE_CHECKING:  # heavy imports: types only, never at runtime
    from repro.net.faults import FaultSchedule
    from repro.trace.recorder import TraceRecorder


@runtime_checkable
class CancellableEvent(Protocol):
    """Handle for a scheduled callback that may be rescinded.

    ``cancel`` must be idempotent and must be safe to call after the
    event has already fired (a no-op in that case).
    """

    def cancel(self) -> None: ...


@runtime_checkable
class ProcessPort(Protocol):
    """What a network backend needs from a registered process."""

    pid: ProcessId
    alive: bool

    def attach(self, network: "NetworkPort") -> None: ...

    def deliver_network(self, src: ProcessId, payload: Any) -> None: ...


@runtime_checkable
class SchedulerPort(Protocol):
    """Clock + timer service shared by every backend.

    Backends differ in what ``now`` means and in how strictly they treat
    the past: the simulator raises on an attempt to schedule before
    ``now`` (it would break determinism), a wall-clock backend clamps it
    to "as soon as possible" (the wall clock moves between reading
    ``now`` and scheduling, so a marginally-past deadline is normal, not
    a bug).  Protocol code only ever schedules relative to ``now``, so
    both behaviours are indistinguishable to it.
    """

    @property
    def now(self) -> float: ...

    def at(self, time: float, callback: Any, *args: Any) -> CancellableEvent: ...

    def after(self, delay: float, callback: Any, *args: Any) -> CancellableEvent: ...

    def fire_at(self, time: float, callback: Any, *args: Any) -> None: ...

    def fire_after(self, delay: float, callback: Any, *args: Any) -> None: ...


@runtime_checkable
class NetworkPort(Protocol):
    """Transmission service shared by every backend.

    All sends are fire-and-forget and lossy; None of these calls may
    raise on an unreachable / unknown / crashed destination — they drop
    (and account for) the payload instead.  ``send_to_site`` and
    ``multicast_sites`` address *sites* rather than process
    incarnations: they reach whichever incarnation currently lives
    there, which is how heartbeats and join probes find a recovered
    process without knowing its fresh identifier.
    """

    def register(self, process: ProcessPort) -> None: ...

    def send(self, src: ProcessId, dst: ProcessId, payload: Any) -> None: ...

    def multicast(
        self, src: ProcessId, dsts: Iterable[ProcessId], payload: Any
    ) -> None: ...

    def send_to_site(self, src: ProcessId, site: SiteId, payload: Any) -> None: ...

    def multicast_sites(
        self, src: ProcessId, sites: Iterable[SiteId], payload: Any
    ) -> None: ...


@runtime_checkable
class ClusterPort(Protocol):
    """Runtime-agnostic contract of a running cluster.

    Everything above the protocol stacks — workload clients, fault
    scenarios, invariant monitors, property checks, the CLI — drives a
    cluster exclusively through this surface, so the same harness code
    runs over simulated time and over real sockets.

    **Time.**  ``now`` is backend time (virtual units in the simulator,
    wall seconds on the real network) and ``time_scale`` is the bridge
    between them: the backend-time cost of one *scenario unit*, the
    unit every :class:`~repro.net.faults.FaultSchedule` and workload
    interval is written in.  The simulator's scale is ``1.0``; the
    realnet runtime maps one scenario unit onto its timer profile
    (~0.01 wall seconds per unit at ``scale=1.0``), mirroring how
    :func:`~repro.realnet.node.realnet_stack_config` scales the
    protocol timers themselves.  Multiply scenario quantities by
    ``time_scale`` before handing them to ``run_for`` / ``settle`` /
    ``wait_until`` / ``after``, which all speak backend time.

    **Waiting.**  All waiting methods block the caller and take hard
    timeouts: ``run_for`` advances/passes a backend-time duration,
    ``settle`` waits for membership convergence, ``wait_until`` polls an
    arbitrary predicate (called with the cluster itself).  On the
    simulator blocking is free (virtual time); on the real network the
    blocking adapter parks the calling thread while the event loop runs.

    **Lifecycle.**  The environment actions are a superset of
    :class:`~repro.net.faults.FaultTarget`, so a declarative fault
    schedule applies to any backend; ``arm`` schedules a whole
    :class:`~repro.net.faults.FaultSchedule` (written in scenario
    units) against this cluster.  ``recover`` and ``join`` return the
    fresh :class:`~repro.vsync.stack.GroupStack` on both backends.

    **Introspection.**  ``gather_trace`` returns one recorder holding
    the whole execution history — the simulator's single shared
    recorder, or the realnet per-node recorders merged by
    :meth:`~repro.trace.recorder.TraceRecorder.merge` — which is what
    the property checkers consume.  ``close`` releases backend
    resources (sockets, threads); it is a no-op on the simulator and
    idempotent everywhere.
    """

    #: Which backend this port fronts: one of :data:`RUNTIMES`.
    runtime: str

    # -- time ----------------------------------------------------------

    @property
    def now(self) -> float: ...

    @property
    def time_scale(self) -> float: ...

    def run_for(self, duration: float) -> float: ...

    def settle(self, timeout: float = ..., poll: float = ...) -> bool: ...

    def wait_until(
        self, predicate: Callable[[Any], Any], timeout: float = ..., poll: float = ...
    ) -> bool: ...

    def is_settled(self) -> bool: ...

    def after(self, delay: float, callback: Any, *args: Any) -> CancellableEvent: ...

    # -- lifecycle / environment actions -------------------------------

    def crash(self, site: SiteId) -> None: ...

    def recover(self, site: SiteId) -> Any: ...

    def join(self, site: SiteId) -> Any: ...

    def partition(self, groups: Any) -> None: ...

    def heal(self) -> None: ...

    def isolate(self, site: SiteId) -> None: ...

    def arm(self, schedule: "FaultSchedule") -> None: ...

    def close(self) -> None: ...

    # -- introspection -------------------------------------------------

    def stack_at(self, site: SiteId) -> Any: ...

    def app_at(self, site: SiteId) -> Any: ...

    def live_stacks(self) -> list[Any]: ...

    def live_pids(self) -> set[ProcessId]: ...

    def views(self) -> dict[SiteId, str]: ...

    def gather_trace(self) -> "TraceRecorder": ...

    def network_stats(self) -> Any: ...

    @property
    def metrics(self) -> Any: ...

    def metrics_snapshot(self, source: str = "cluster") -> Any: ...


#: Names accepted by :func:`make_cluster`.
RUNTIMES = ("sim", "realnet", "realnet-proc")


def make_cluster(
    runtime: str,
    n_sites: int,
    app_factory: Callable[[ProcessId], Any] | None = None,
    *,
    seed: int = 0,
    loss_prob: float = 0.0,
    trace_level: str = "full",
    **knobs: Any,
) -> ClusterPort:
    """Build a cluster of ``n_sites`` behind the :class:`ClusterPort`.

    ``runtime`` selects the backend: ``"sim"`` returns a
    :class:`~repro.runtime.cluster.Cluster` over the deterministic
    simulator; ``"realnet"`` boots a localhost-TCP
    :class:`~repro.realnet.cluster.RealCluster` wrapped in the blocking
    :class:`~repro.realnet.driver.RealClusterDriver`, already started
    and ready for synchronous calls.  Extra ``knobs`` are forwarded to
    the backend's config dataclass (:class:`~repro.runtime.cluster.
    ClusterConfig` / :class:`~repro.realnet.cluster.RealClusterConfig`).

    Callers own the result's lifetime: ``close()`` it (or use
    ``contextlib.closing``) when done — mandatory for ``realnet``,
    where it tears down sockets and the driver thread.

    The runtime modules are imported lazily so this module stays
    import-light for :mod:`repro.sim.process`.
    """
    if runtime == "sim":
        from repro.runtime.cluster import Cluster, ClusterConfig

        config = ClusterConfig(
            seed=seed, loss_prob=loss_prob, trace_level=trace_level, **knobs
        )
        return Cluster(n_sites, app_factory=app_factory, config=config)
    if runtime == "realnet":
        from repro.realnet.cluster import RealClusterConfig
        from repro.realnet.driver import RealClusterDriver

        real_config = RealClusterConfig(
            seed=seed, loss_prob=loss_prob, trace_level=trace_level, **knobs
        )
        return RealClusterDriver(
            n_sites, app_factory=app_factory, config=real_config
        ).start()
    if runtime == "realnet-proc":
        from repro.realnet.proc_driver import ProcClusterConfig, ProcRealClusterDriver

        if app_factory is not None:
            raise ValueError(
                "realnet-proc selects applications by name (the 'app' knob); "
                "a factory closure cannot cross the process boundary"
            )
        proc_config = ProcClusterConfig(
            seed=seed, loss_prob=loss_prob, trace_level=trace_level, **knobs
        )
        return ProcRealClusterDriver(n_sites, config=proc_config).start()
    raise ValueError(f"unknown runtime {runtime!r}; pick one of {RUNTIMES}")
