"""Backend ports: the contracts between protocols and their runtime.

The protocol layers (:mod:`repro.fd`, :mod:`repro.gms`, :mod:`repro.vsync`,
:mod:`repro.evs`) never name a concrete scheduler or network class — they
talk to whatever their :class:`~repro.sim.process.Process` was wired to.
Historically those contracts were implicit duck types defined by the
simulator; this module states them explicitly so every backend — the
deterministic discrete-event simulator (:mod:`repro.sim` +
:mod:`repro.net`) and the asyncio real-network runtime
(:mod:`repro.realnet`) — is checked against the *same* interface, by the
type checker and by the conformance tests in
``tests/test_realnet_unit.py``.

Two ports exist:

:class:`SchedulerPort`
    A clock plus two scheduling lanes.  The cancellable lane
    (:meth:`~SchedulerPort.at` / :meth:`~SchedulerPort.after`) returns a
    :class:`CancellableEvent` handle — timers use it.  The fire-and-forget
    lane (:meth:`~SchedulerPort.fire_at` / :meth:`~SchedulerPort.fire_after`)
    allocates no handle — message deliveries use it.  ``now`` is *backend
    time*: virtual units in the simulator, seconds since backend start on
    a wall clock.  Protocol code must only ever compare or difference
    ``now`` values, never interpret them absolutely.

:class:`NetworkPort`
    Registration plus the four transmission calls the stack uses:
    point-to-point and multicast, each in process-addressed and
    site-addressed (reach-the-current-incarnation) flavours.  All four
    are fire-and-forget and may silently drop — every protocol above is
    written to tolerate loss.

Keep this module import-light: it must be importable from
:mod:`repro.sim.process` without touching :mod:`repro.net` (which imports
the process module back).
"""

from __future__ import annotations

from typing import Any, Iterable, Protocol, runtime_checkable

from repro.types import ProcessId, SiteId


@runtime_checkable
class CancellableEvent(Protocol):
    """Handle for a scheduled callback that may be rescinded.

    ``cancel`` must be idempotent and must be safe to call after the
    event has already fired (a no-op in that case).
    """

    def cancel(self) -> None: ...


@runtime_checkable
class ProcessPort(Protocol):
    """What a network backend needs from a registered process."""

    pid: ProcessId
    alive: bool

    def attach(self, network: "NetworkPort") -> None: ...

    def deliver_network(self, src: ProcessId, payload: Any) -> None: ...


@runtime_checkable
class SchedulerPort(Protocol):
    """Clock + timer service shared by every backend.

    Backends differ in what ``now`` means and in how strictly they treat
    the past: the simulator raises on an attempt to schedule before
    ``now`` (it would break determinism), a wall-clock backend clamps it
    to "as soon as possible" (the wall clock moves between reading
    ``now`` and scheduling, so a marginally-past deadline is normal, not
    a bug).  Protocol code only ever schedules relative to ``now``, so
    both behaviours are indistinguishable to it.
    """

    @property
    def now(self) -> float: ...

    def at(self, time: float, callback: Any, *args: Any) -> CancellableEvent: ...

    def after(self, delay: float, callback: Any, *args: Any) -> CancellableEvent: ...

    def fire_at(self, time: float, callback: Any, *args: Any) -> None: ...

    def fire_after(self, delay: float, callback: Any, *args: Any) -> None: ...


@runtime_checkable
class NetworkPort(Protocol):
    """Transmission service shared by every backend.

    All sends are fire-and-forget and lossy; None of these calls may
    raise on an unreachable / unknown / crashed destination — they drop
    (and account for) the payload instead.  ``send_to_site`` and
    ``multicast_sites`` address *sites* rather than process
    incarnations: they reach whichever incarnation currently lives
    there, which is how heartbeats and join probes find a recovered
    process without knowing its fresh identifier.
    """

    def register(self, process: ProcessPort) -> None: ...

    def send(self, src: ProcessId, dst: ProcessId, payload: Any) -> None: ...

    def multicast(
        self, src: ProcessId, dsts: Iterable[ProcessId], payload: Any
    ) -> None: ...

    def send_to_site(self, src: ProcessId, site: SiteId, payload: Any) -> None: ...

    def multicast_sites(
        self, src: ProcessId, sites: Iterable[SiteId], payload: Any
    ) -> None: ...
