"""Real TCP store clients: dial a node socket, pipeline requests.

:class:`AsyncStoreClient` is the asyncio-native client: one TCP
connection to one serving node, the standard ``hello``/``welcome``
codec negotiation (same as :func:`repro.obs.watch.fetch_snapshot`),
then pipelined ``CLI_KIND`` frames with replies matched to in-flight
requests by ``req_id``.  Pipelining matters: put replies are deferred
server-side until quorum commit, so one connection can carry many
outstanding operations — the open-loop load generator depends on that.

:meth:`AsyncStoreClient.call` also implements the client half of the
retry contract: on ``retry`` it backs off and resubmits *the same*
``(client, client_seq)`` (the store's exactly-once index collapses
duplicates of writes that actually landed), on ``not_leader`` it
redials the named site, and on connection loss it redials and
resubmits — an acked write is therefore acked exactly once, whatever
views did in between.

:class:`DriverStoreClient` is the blocking facade over a
:class:`~repro.realnet.driver.RealClusterDriver`: it runs one
:class:`AsyncStoreClient` on the driver's loop thread and exposes the
same ``submit``/``put``/``get``/``history`` surface as the sim port.
"""

from __future__ import annotations

import asyncio
from typing import Any, Mapping

from repro.client.protocol import (
    ClientReply,
    ClientRequest,
    client_request_frame,
    parse_client_reply,
)
from repro.errors import CodecError
from repro.realnet.codec import _LEN, decode_frame_body, encode_frame
from repro.realnet.codec_bin import (
    FORMAT_JSON,
    WIRE_FORMATS,
    schema_fingerprint,
    supported_formats,
)

#: Wall seconds between resubmissions of a retried operation.
RETRY_DELAY = 0.2

#: Attempts before giving up on an operation.
MAX_ATTEMPTS = 25

#: Wall seconds to await one reply before treating the attempt as lost.
REPLY_TIMEOUT = 10.0


async def _read_raw_frame(reader: asyncio.StreamReader) -> bytes:
    prefix = await reader.readexactly(_LEN.size)
    (length,) = _LEN.unpack(prefix)
    return await reader.readexactly(length)


class AsyncStoreClient:
    """One client identity over TCP; redials across faults and views.

    ``addresses`` maps sites to ``(host, port)`` so ``not_leader``
    redirects and reconnects after a crash can find their target; a
    bare ``(host, port)`` pair in ``target`` works for single-node use.
    """

    def __init__(
        self,
        target: tuple[str, int] | None = None,
        *,
        addresses: Mapping[int, tuple[str, int]] | None = None,
        site: int = 0,
        client_id: str = "c0",
        codec: str = "bin",
        read_mode: str = "any",
        retry_delay: float = RETRY_DELAY,
        max_attempts: int = MAX_ATTEMPTS,
        reply_timeout: float = REPLY_TIMEOUT,
    ) -> None:
        if target is None and not addresses:
            raise ValueError("need a target address or an address book")
        self.addresses: dict[int, tuple[str, int]] = dict(addresses or {})
        if target is not None:
            self.addresses.setdefault(site, target)
        self.site = site
        self.client_id = client_id
        self.codec = codec
        self.read_mode = read_mode
        self.retry_delay = retry_delay
        self.max_attempts = max_attempts
        self.reply_timeout = reply_timeout
        #: Read-your-writes token: provenance of our last acked put.
        self.last_token: tuple | None = None
        self._seq = 0
        self._req = 0
        self._fmt: Any = None
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._read_task: asyncio.Task | None = None
        self._inflight: dict[int, asyncio.Future] = {}
        self._connected_site: int | None = None

    # -- connection ----------------------------------------------------

    async def connect(self, site: int | None = None) -> None:
        """Dial ``site`` (default: the configured one) and negotiate."""
        await self.close()
        dial = self.site if site is None else site
        host, port = self.addresses[dial]
        reader, writer = await asyncio.open_connection(host, port)
        writer.write(
            encode_frame(
                {
                    "k": "hello",
                    "src": [-1, 0],  # not a site: an external client
                    "codecs": list(supported_formats(self.codec)),
                    "schema": schema_fingerprint(),
                }
            )
        )
        await writer.drain()
        welcome = decode_frame_body(await _read_raw_frame(reader))
        name = welcome.get("codec") if welcome.get("k") == "welcome" else None
        self._fmt = WIRE_FORMATS[name if name in WIRE_FORMATS else FORMAT_JSON]
        self._reader, self._writer = reader, writer
        self._connected_site = dial
        self._read_task = asyncio.ensure_future(self._read_loop(reader))

    async def close(self) -> None:
        task, writer = self._read_task, self._writer
        self._read_task = self._reader = self._writer = None
        self._connected_site = None
        if task is not None:
            task.cancel()
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        if writer is not None:
            writer.close()
            try:
                await writer.wait_closed()
            except OSError:
                pass
        self._fail_inflight(ConnectionResetError("connection closed"))

    def _fail_inflight(self, exc: Exception) -> None:
        inflight, self._inflight = self._inflight, {}
        for future in inflight.values():
            if not future.done():
                future.set_exception(exc)

    async def _read_loop(self, reader: asyncio.StreamReader) -> None:
        try:
            while True:
                reply = parse_client_reply(self._fmt, await _read_raw_frame(reader))
                if reply is None:
                    continue  # another layer's frame on a shared socket
                future = self._inflight.pop(reply.req_id, None)
                if future is not None and not future.done():
                    future.set_result(reply)
        except asyncio.CancelledError:
            raise
        except (OSError, EOFError, asyncio.IncompleteReadError, CodecError) as exc:
            self._fail_inflight(exc)

    # -- one attempt ---------------------------------------------------

    async def request(self, request: ClientRequest) -> ClientReply:
        """Send one request on the live connection, await its reply."""
        if self._writer is None:
            raise ConnectionResetError("not connected")
        future: asyncio.Future = asyncio.get_event_loop().create_future()
        self._inflight[request.req_id] = future
        try:
            self._writer.write(client_request_frame(self._fmt, request))
            await self._writer.drain()
            return await asyncio.wait_for(future, timeout=self.reply_timeout)
        finally:
            self._inflight.pop(request.req_id, None)
            if future.done() and not future.cancelled():
                # A drain that raised leaves the parked future behind for
                # close() to fail; consume the exception so an abandoned
                # reply never logs "exception was never retrieved".
                future.exception()

    # -- retrying operations -------------------------------------------

    def _next_request(
        self,
        op: str,
        key: Any,
        value: Any,
        read_mode: str | None,
        ryw: tuple | None,
    ) -> ClientRequest:
        self._req += 1
        if op == "put":
            self._seq += 1
        return ClientRequest(
            req_id=self._req,
            op=op,
            key=key,
            value=value,
            client=self.client_id,
            client_seq=self._seq if op == "put" else 0,
            read_mode=read_mode or self.read_mode,
            ryw=ryw,
        )

    async def call(
        self,
        op: str,
        key: Any = None,
        value: Any = None,
        read_mode: str | None = None,
        ryw: tuple | None = None,
    ) -> ClientReply:
        """One operation, retried to completion across views and faults."""
        request = self._next_request(op, key, value, read_mode, ryw)
        dial: int | None = None
        last = ClientReply(request.req_id, "retry")
        for attempt in range(self.max_attempts):
            if attempt:
                await asyncio.sleep(self.retry_delay)
                # Fresh req_id per attempt (a stale reply to a timed-out
                # attempt must not satisfy the resubmission), same
                # client_seq (so a put retry stays exactly-once).
                request = ClientRequest(
                    req_id=self._bump(),
                    op=request.op,
                    key=request.key,
                    value=request.value,
                    client=request.client,
                    client_seq=request.client_seq,
                    read_mode=request.read_mode,
                    ryw=request.ryw,
                )
            try:
                if self._writer is None or (
                    dial is not None and dial != self._connected_site
                ):
                    await self.connect(dial)
                reply = await self.request(request)
            except (OSError, EOFError, asyncio.TimeoutError, ConnectionError):
                # Dead or wedged connection: redial somewhere and retry
                # the same client_seq — never double-acked, thanks to
                # the store's exactly-once index.
                await self.close()
                dial = self._fallback_site(dial)
                continue
            last = reply
            if reply.status == "retry":
                continue
            if reply.status == "not_leader":
                if reply.leader_site >= 0 and reply.leader_site in self.addresses:
                    dial = reply.leader_site
                    continue
                continue
            if op == "put" and reply.status == "ok":
                self.last_token = reply.prov
            return reply
        return last

    def _bump(self) -> int:
        self._req += 1
        return self._req

    def _fallback_site(self, dial: int | None) -> int | None:
        """Next site to try once the current one stops answering."""
        sites = sorted(self.addresses)
        if not sites:
            return dial
        current = dial if dial is not None else self.site
        try:
            where = sites.index(current)
        except ValueError:
            return sites[0]
        return sites[(where + 1) % len(sites)]

    # -- conveniences --------------------------------------------------

    async def put(self, key: Any, value: Any) -> ClientReply:
        return await self.call("put", key, value)

    async def get(self, key: Any, ryw: tuple | None = None) -> ClientReply:
        return await self.call("get", key, ryw=ryw)

    async def history(self, key: Any) -> ClientReply:
        return await self.call("history", key)

    async def ping(self) -> ClientReply:
        return await self.call("ping")


class DriverStoreClient:
    """Blocking store client over a :class:`RealClusterDriver`.

    Mirrors the sim port's blocking surface: each call submits the
    coroutine to the driver's loop thread and waits for the final
    (post-retry) reply.
    """

    def __init__(
        self,
        driver: Any,
        site: int = 0,
        client_id: str = "c0",
        codec: str = "bin",
        read_mode: str = "any",
    ) -> None:
        self.driver = driver
        # In-process realnet keeps the address book on the inner
        # cluster; the multi-process driver keeps it on itself.
        book = getattr(driver, "address_book", None)
        if not book:
            book = driver.cluster.address_book
        self._client = AsyncStoreClient(
            addresses=dict(book),
            site=site,
            client_id=client_id,
            codec=codec,
            read_mode=read_mode,
        )

    @property
    def last_token(self) -> tuple | None:
        return self._client.last_token

    def _run(self, coro: Any) -> ClientReply:
        return self.driver._submit(coro, timeout=60.0)

    def put(self, key: Any, value: Any) -> ClientReply:
        return self._run(self._client.put(key, value))

    def get(self, key: Any, ryw: tuple | None = None) -> ClientReply:
        return self._run(self._client.get(key, ryw=ryw))

    def history(self, key: Any) -> ClientReply:
        return self._run(self._client.history(key))

    def ping(self) -> ClientReply:
        return self._run(self._client.ping())

    def close(self) -> None:
        self._run(self._client.close())
