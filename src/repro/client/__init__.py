"""Client service tier: external access to a :class:`VersionedStore`.

The store's client API is one request/reply vocabulary
(:mod:`repro.client.protocol`) served by one router
(:mod:`repro.client.service`) and reachable two ways:

* **realnet**: ``CLI_KIND`` frames on every node's normal listening
  socket (:mod:`repro.client.client` — real TCP clients);
* **sim**: an in-process port with the same request/reply semantics
  (:mod:`repro.client.sim`), so workloads drive both runtimes through
  one client surface.

:func:`store_client` picks the right implementation for a
:class:`~repro.ports.ClusterPort`.
"""

from __future__ import annotations

from typing import Any

from repro.client.protocol import CLI_KIND, ClientReply, ClientRequest
from repro.client.service import StoreService

__all__ = [
    "CLI_KIND",
    "ClientRequest",
    "ClientReply",
    "StoreService",
    "store_client",
]


def store_client(cluster: Any, site: int = 0, client_id: str = "c0") -> Any:
    """A blocking store client for ``cluster``, whatever its runtime.

    Sim clusters get the in-process port; realnet clusters get a real
    TCP client dialing ``site``'s listening socket (driven on the
    cluster's loop thread, so calls block the way every other driver
    action does).
    """
    runtime = getattr(cluster, "runtime", "sim")
    if runtime == "sim":
        from repro.client.sim import SimStoreClient

        return SimStoreClient(cluster, site=site, client_id=client_id)
    from repro.client.client import DriverStoreClient

    return DriverStoreClient(cluster, site=site, client_id=client_id)
