"""Server side of the client protocol: route requests into the store.

One :class:`StoreService` fronts one node's :class:`~repro.apps.
versioned_store.VersionedStore`.  The core router
(:meth:`handle_request`) is runtime-agnostic — it maps a
:class:`~repro.client.protocol.ClientRequest` to store calls and hands
every :class:`~repro.client.protocol.ClientReply` to a callback, which
is what makes replies *asynchronous*: a put's reply fires from the
store's quorum-commit callback, not from the request dispatch.  The
sim client port calls the router directly; on realnet
:meth:`handle_control` adapts it to the transport's control hook,
parsing ``CLI_KIND`` frames and writing framed replies back through
the connection's ``send`` callback.

Retry-on-view-change is the client's half of the contract: the service
never blocks an operation across a view change — it answers ``retry``
(put aborted by the view change, read refused while settling or by a
read-your-writes token) and the client resubmits, with put idempotence
guaranteed by the store's ``(client, client_seq)`` index.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Callable

from repro.apps.versioned_store import (
    PutHandle,
    VersionedStore,
    prov_from_tuple,
    prov_tuple,
)
from repro.client.protocol import (
    OPS,
    ClientReply,
    ClientRequest,
    client_reply_frame,
    parse_client_request,
)
from repro.errors import CodecError

ReplyCb = Callable[[ClientReply], None]


class StoreService:
    """Request router for one serving replica."""

    def __init__(
        self, store: VersionedStore, registry: Any = None, obs: Any = None
    ) -> None:
        self.store = store
        self._registry = registry
        self._obs = obs
        self._requests = None
        self._duration = None
        if registry is not None:
            self._requests = registry.counter(
                "client_requests_total",
                "Client store requests served, by operation and reply status.",
                ("op", "status"),
            )
            self._duration = registry.histogram(
                "client_op_duration",
                "Server-side latency of client store operations "
                "(request dispatch to reply, in the runtime's clock units).",
                ("op",),
            )
        if registry is not None:
            self._now = registry.now
        elif obs is not None:
            self._now = obs.registry.now
        else:
            self._now = lambda: 0.0

    # ------------------------------------------------------------------
    # Core router (both runtimes)
    # ------------------------------------------------------------------

    def handle_request(self, request: ClientRequest, reply_cb: ReplyCb) -> None:
        """Serve one request; every path ends in exactly one reply.

        With tracing on, the request is a root event: its context is
        minted here (or taken from a tracing client's ``request.trace``),
        parents every downstream protocol span, and is echoed back on
        the reply so drivers can correlate.
        """
        start = self._now()
        obs = self._obs
        ctx = obs.client_ctx(request.trace) if obs is not None else request.trace

        def finish(reply: ClientReply) -> None:
            if self._requests is not None:
                self._requests.labels(request.op, reply.status).inc()
                self._duration.labels(request.op).observe(self._now() - start)
            if obs is not None:
                obs.client_op(
                    self.store.pid, request.op, ctx, start, self._now(),
                    reply.status,
                )
            if ctx is not None and reply.trace is None:
                reply = replace(reply, trace=ctx)
            reply_cb(reply)

        op = request.op
        if op == "put":
            self._put(request, finish, ctx, start)
        elif op == "get" or op == "history":
            finish(self._read(request))
        elif op == "ping":
            finish(ClientReply(request.req_id, "ok"))
        else:
            finish(ClientReply(request.req_id, "error", value=f"unknown op {op!r}"))

    def _put(
        self,
        request: ClientRequest,
        finish: ReplyCb,
        ctx: Any = None,
        start: float = 0.0,
    ) -> None:
        req_id = request.req_id
        obs = self._obs

        def on_done(handle: PutHandle) -> None:
            if obs is not None:
                obs.put_quorum(
                    self.store.pid, start, self._now(), ctx, handle.status
                )
            if handle.status == "committed" and handle.token is not None:
                finish(ClientReply(req_id, "ok", prov=prov_tuple(handle.token)))
            else:
                # Aborted by a view change (or refused mid-settlement):
                # the client resubmits; the exactly-once index collapses
                # a retry of a write that actually landed.
                finish(ClientReply(req_id, "retry"))

        if obs is not None:
            obs.put_route(self.store.pid, start, ctx)
        self.store.put(
            request.key,
            request.value,
            client=request.client,
            client_seq=request.client_seq,
            on_done=on_done,
            trace=ctx,
        )

    def _read(self, request: ClientRequest) -> ClientReply:
        req_id = request.req_id
        store = self.store
        if request.read_mode == "leader":
            leader = store.leader()
            if leader is None:
                return ClientReply(req_id, "retry")
            if leader != store.pid:
                return ClientReply(req_id, "not_leader", leader_site=leader.site)
        ryw = prov_from_tuple(request.ryw) if request.ryw is not None else None
        if request.op == "history":
            result = store.history(request.key, ryw=ryw)
        else:
            result = store.get(request.key, ryw=ryw)
        if result.status != "ok":
            return ClientReply(req_id, result.status)
        chain = tuple(
            (e.value, prov_tuple(e.prov), e.client, e.client_seq)
            for e in result.chain
        )
        return ClientReply(
            req_id,
            "ok",
            value=result.value,
            prov=prov_tuple(result.prov) if result.prov is not None else None,
            chain=chain,
        )

    # ------------------------------------------------------------------
    # Realnet adapter: the transport's client-frame hook
    # ------------------------------------------------------------------

    def handle_control(
        self, fmt: Any, body: bytes, send: Callable[[bytes], None]
    ) -> bytes | None:
        """Serve one ``CLI_KIND`` frame; None for other control kinds.

        Replies (including deferred put acks) travel through ``send`` on
        the originating connection, so the synchronous return is always
        None for frames this layer owns.
        """
        try:
            request = parse_client_request(fmt, body)
        except CodecError:
            # A recognisable client frame with a garbled payload: tell
            # the peer rather than leaving its request hanging.
            send(client_reply_frame(fmt, ClientReply(-1, "error", value="bad request")))
            return None
        if request is None:
            return None
        if request.op not in OPS:
            send(
                client_reply_frame(
                    fmt,
                    ClientReply(request.req_id, "error", value=f"unknown op {request.op!r}"),
                )
            )
            return None
        self.handle_request(
            request, lambda reply: send(client_reply_frame(fmt, reply))
        )
        return None
