"""Client wire vocabulary: ``CLI_KIND`` frames on the node socket.

External clients talk to a serving node over the node's *normal*
listening socket, reusing the transport's ``hello``/``welcome``
negotiation — the client protocol works over both wire codecs with no
extra port and no extra configuration, exactly like the obs snapshot
service (:mod:`repro.obs.watch`):

* JSON: request ``{"k": "cli_req", "p": <tagged ClientRequest>}``,
  reply ``{"k": "cli_rep", "p": <tagged ClientReply>}``.
* bin1: a body opening with the frame-kind byte :data:`CLI_KIND`
  (``0x04``) followed by the bin1-encoded dataclass.

Unlike obs polls, replies are **asynchronous**: a put is answered only
once a quorum of the current view applied it, so the server keeps the
connection's ``send`` callback and replies when the store commits.
``req_id`` matches replies to pipelined requests on one connection.

Reply statuses and the client's obligations:

=============  ==========================================================
``ok``         the operation completed; ``prov`` carries the version
               provenance (for puts this is the read-your-writes token)
``missing``    a read of a key with no versions
``retry``      a view change aborted the operation (or a read could not
               satisfy its read-your-writes token / the replica is
               settling): resubmit unchanged — ``(client, client_seq)``
               makes put retries exactly-once
``not_leader`` a leader-mode read reached a non-leader replica;
               ``leader_site`` names the replica to redial
``error``      the request was malformed or the node has no store
=============  ==========================================================

Provenance travels as the flat tuple ``(view_epoch, writer_site,
writer_incarnation, seq)``; history chains as tuples of ``(value,
prov, client, client_seq)``.  Flat shapes keep the client payloads
independent of the protocol-internal dataclasses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.errors import CodecError

__all__ = [
    "CLI_KIND",
    "ClientRequest",
    "ClientReply",
    "client_request_frame",
    "client_reply_frame",
    "parse_client_request",
    "parse_client_reply",
]

#: Frame-kind byte for bin1 client frames (msg 0x01, obs 0x02, ctl 0x03).
CLI_KIND = 0x04

#: The operations a request may name.
OPS = ("put", "get", "history", "ping")

#: Read routing modes: served by whichever replica was dialed, or only
#: by the current view's leader (least member).
READ_MODES = ("any", "leader")


@dataclass(frozen=True)
class ClientRequest:
    """One client operation as it travels on the wire."""

    req_id: int
    op: str  # one of OPS
    key: Any = None
    value: Any = None
    client: str = ""
    client_seq: int = 0
    read_mode: str = "any"  # one of READ_MODES
    #: Read-your-writes token: the flat provenance of the client's last
    #: acked put, or None for an unconditional read.
    ryw: tuple | None = None
    #: Client-minted causal context; the service adopts it as the root
    #: of the operation's trace (tracing only, zero bytes when off).
    trace: Any = None


@dataclass(frozen=True)
class ClientReply:
    """The server's answer to one :class:`ClientRequest`."""

    req_id: int
    status: str  # ok | missing | retry | not_leader | error
    value: Any = None
    prov: tuple | None = None
    #: For history: ((value, prov, client, client_seq), ...) oldest first.
    chain: tuple = ()
    #: For not_leader: the site to redial (-1 when unknown).
    leader_site: int = -1
    #: The operation's root causal context, echoed back so a client can
    #: correlate its reply with the server-side trace (tracing only).
    trace: Any = None


# -- frame builders / parsers (both codecs) --------------------------------
#
# codec_bin imports are deferred to call time: the shared payload
# registry in repro.realnet.codec registers these dataclasses at its own
# import, and a module-level import here would cycle through the
# partially-initialised codec_bin when codec_bin is imported first.


def client_request_frame(fmt: Any, request: ClientRequest) -> bytes:
    """One framed client request in the connection's negotiated format."""
    from repro.realnet.codec import _LEN, encode_frame, encode_value
    from repro.realnet.codec_bin import encode_value_bin

    if fmt.binary:
        body = bytes([CLI_KIND]) + encode_value_bin(request)
        return _LEN.pack(len(body)) + body
    return encode_frame({"k": "cli_req", "p": encode_value(request)})


def client_reply_frame(fmt: Any, reply: ClientReply) -> bytes:
    """One framed client reply in the connection's negotiated format."""
    from repro.realnet.codec import _LEN, encode_frame, encode_value
    from repro.realnet.codec_bin import encode_value_bin

    if fmt.binary:
        body = bytes([CLI_KIND]) + encode_value_bin(reply)
        return _LEN.pack(len(body)) + body
    return encode_frame({"k": "cli_rep", "p": encode_value(reply)})


def parse_client_request(fmt: Any, body: bytes) -> ClientRequest | None:
    """Decode a non-``msg`` frame body as a client request, or None.

    None means "not a client frame" (some other control kind); a frame
    that *is* a client frame but carries garbage raises
    :class:`CodecError` like every other malformed body.
    """
    from repro.realnet.codec import decode_frame_body, decode_value
    from repro.realnet.codec_bin import decode_value_bin

    if fmt.binary:
        if not body or body[0] != CLI_KIND:
            return None
        value = decode_value_bin(body[1:])
    else:
        try:
            frame = decode_frame_body(body)
        except CodecError:
            return None  # not even JSON: some other layer's bytes
        if frame.get("k") != "cli_req":
            return None
        value = decode_value(frame.get("p"))
    if not isinstance(value, ClientRequest):
        raise CodecError(f"client request frame carried {type(value).__name__}")
    return value


def parse_client_reply(fmt: Any, body: bytes) -> ClientReply | None:
    """Decode one frame body as a client reply, or None for other kinds."""
    from repro.realnet.codec import decode_frame_body, decode_value
    from repro.realnet.codec_bin import decode_value_bin

    if fmt.binary:
        if not body or body[0] != CLI_KIND:
            return None
        value = decode_value_bin(body[1:])
    else:
        frame = decode_frame_body(body)
        if frame.get("k") != "cli_rep":
            return None
        value = decode_value(frame.get("p"))
    if not isinstance(value, ClientReply):
        raise CodecError(f"client reply frame carried {type(value).__name__}")
    return value
