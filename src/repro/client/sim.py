"""In-process client port: the client API on the simulator runtime.

The simulator has no sockets, but workloads must drive the store
through the *same* request/reply vocabulary and retry semantics as the
TCP clients, so this port routes real
:class:`~repro.client.protocol.ClientRequest` objects through a real
:class:`~repro.client.service.StoreService` on the target site — only
the wire framing is skipped.  Everything above the frame layer is
shared: deferred put replies, ``retry`` on view change with idempotent
resubmission, ``not_leader`` redirects, read-your-writes tokens.

Two calling styles:

* :meth:`submit` returns a :class:`PendingOp` immediately and completes
  it as virtual time advances — the form workload drivers use from
  inside scheduler callbacks;
* :meth:`put` / :meth:`get` / :meth:`history` block by running the
  cluster until the operation completes — the form tests use at the
  top level.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.client.protocol import ClientReply, ClientRequest
from repro.client.service import StoreService

#: Scenario units between resubmissions of a retried operation.
RETRY_DELAY = 20.0

#: Attempts before a PendingOp gives up with its last reply.
MAX_ATTEMPTS = 10


@dataclass
class PendingOp:
    """Completion state of one client operation (across retries)."""

    request: ClientRequest
    site: int
    reply: ClientReply | None = None
    attempts: int = 0
    #: Transient replies consumed by the retry loop (for diagnostics).
    retries: list[str] = field(default_factory=list)
    #: Fired once with this op when the final reply lands (open-loop
    #: load measures completion latency through it).
    on_done: Any = None

    @property
    def done(self) -> bool:
        return self.reply is not None

    @property
    def ok(self) -> bool:
        return self.reply is not None and self.reply.status == "ok"

    def _finish(self, reply: ClientReply) -> None:
        self.reply = reply
        callback, self.on_done = self.on_done, None
        if callback is not None:
            callback(self)


class SimStoreClient:
    """The client API of one external client, over a sim cluster."""

    def __init__(
        self,
        cluster: Any,
        site: int = 0,
        client_id: str = "c0",
        read_mode: str = "any",
        retry_delay: float = RETRY_DELAY,
        max_attempts: int = MAX_ATTEMPTS,
    ) -> None:
        self.cluster = cluster
        self.site = site
        self.client_id = client_id
        self.read_mode = read_mode
        self.retry_delay = retry_delay
        self.max_attempts = max_attempts
        #: Read-your-writes token: provenance of our last acked put.
        self.last_token: tuple | None = None
        self._seq = 0
        self._req = 0

    # ------------------------------------------------------------------
    # Async form (usable from scheduler callbacks)
    # ------------------------------------------------------------------

    def submit(
        self,
        op: str,
        key: Any = None,
        value: Any = None,
        read_mode: str | None = None,
        ryw: tuple | None = None,
        on_done: Any = None,
    ) -> PendingOp:
        """Issue one operation; completion arrives as the sim runs."""
        self._req += 1
        if op == "put":
            self._seq += 1
        request = ClientRequest(
            req_id=self._req,
            op=op,
            key=key,
            value=value,
            client=self.client_id,
            client_seq=self._seq if op == "put" else 0,
            read_mode=read_mode or self.read_mode,
            ryw=ryw,
        )
        pending = PendingOp(request, self.site, on_done=on_done)
        self._dispatch(pending, self.site)
        return pending

    def _dispatch(self, pending: PendingOp, site: int) -> None:
        pending.attempts += 1
        app = None
        try:
            app = self.cluster.app_at(site)
        except Exception:
            pass
        stack = getattr(app, "stack", None)
        if app is None or stack is None or not getattr(stack, "alive", False):
            # The dialed replica is down: same as a connection refusal —
            # back off and try again (the site may recover).
            self._reschedule(pending, site)
            return
        service = StoreService(
            app, registry=self.cluster.metrics, obs=self.cluster.obs
        )
        service.handle_request(
            pending.request, lambda reply: self._on_reply(pending, site, reply)
        )

    def _on_reply(self, pending: PendingOp, site: int, reply: ClientReply) -> None:
        if pending.done:
            return
        if reply.status == "retry" and pending.attempts < self.max_attempts:
            pending.retries.append(reply.status)
            self._reschedule(pending, site)
            return
        if (
            reply.status == "not_leader"
            and reply.leader_site >= 0
            and pending.attempts < self.max_attempts
        ):
            pending.retries.append(reply.status)
            self._dispatch(pending, reply.leader_site)
            return
        if pending.request.op == "put" and reply.status == "ok":
            self.last_token = reply.prov
        pending._finish(reply)

    def _reschedule(self, pending: PendingOp, site: int) -> None:
        if pending.attempts >= self.max_attempts:
            pending._finish(ClientReply(pending.request.req_id, "retry"))
            return
        self.cluster.after(
            self.retry_delay * self.cluster.time_scale,
            self._dispatch,
            pending,
            site,
        )

    # ------------------------------------------------------------------
    # Blocking form (top-level callers)
    # ------------------------------------------------------------------

    def _wait(self, pending: PendingOp, timeout: float) -> PendingOp:
        deadline = self.cluster.now + timeout * self.cluster.time_scale
        while not pending.done and self.cluster.now < deadline:
            self.cluster.run_for(self.retry_delay * self.cluster.time_scale)
        if pending.reply is None:
            pending._finish(ClientReply(pending.request.req_id, "retry"))
        return pending

    def put(self, key: Any, value: Any, timeout: float = 2000.0) -> PendingOp:
        return self._wait(self.submit("put", key, value), timeout)

    def get(
        self, key: Any, ryw: tuple | None = None, timeout: float = 2000.0
    ) -> PendingOp:
        return self._wait(self.submit("get", key, ryw=ryw), timeout)

    def history(self, key: Any, timeout: float = 2000.0) -> PendingOp:
        return self._wait(self.submit("history", key), timeout)

    def close(self) -> None:
        """Symmetry with the TCP clients; nothing to release."""
