"""Primary-partition, one-at-a-time membership (the Isis model).

Implemented as a :class:`~repro.gms.membership.ViewAgreement` subclass
that restricts *which* views may be decided:

* only a *primary* process coordinates installs, and a decision is legal
  only if the new membership contains a strict majority of the
  coordinator's current view (linear membership: every primary view has
  a majority of its predecessor, so primary views are totally ordered
  and concurrent primaries are impossible);
* an expansion admits exactly one new member per view change; the
  remaining candidates are absorbed by subsequent changes, which the
  failure detector keeps triggering until the estimate and the view
  agree;
* installed structures are *degenerate* e-views (one sv-set, one
  subview): Isis has flat views, so the enriched-view machinery above
  this layer sees exactly what an Isis application would.

Bootstrap: the process at ``IsisConfig.bootstrap_site`` forms the
initial primary; everyone else starts blocked and is absorbed by joins.
A recovered process is never primary on its own — if the primary
majority is ever lost, the group halts, which is precisely the total
failure scenario whose repair the paper calls the state creation
problem.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.evs.eview import EViewStructure
from repro.gms.membership import MembershipConfig, ViewAgreement, _Round
from repro.gms.messages import VcAbort, VcPropose
from repro.gms.view import View
from repro.types import ProcessId, min_process

if TYPE_CHECKING:  # pragma: no cover
    from repro.isis.transfer_tool import BlockingTransferTool
    from repro.vsync.stack import GroupStack


@dataclass
class IsisConfig:
    """Baseline-specific knobs on top of the common membership timers.

    ``sticky_endorsement=False`` is an ablation switch: without the
    one-coordinator-per-view endorsement, racing coordinators can
    install concurrent primaries (see benchmarks/bench_ablations.py).
    """

    bootstrap_site: int = 0
    membership: MembershipConfig | None = None
    sticky_endorsement: bool = True


class PrimaryPartitionAgreement(ViewAgreement):
    """The Isis-style view agreement."""

    def __init__(
        self,
        stack: "GroupStack",
        isis_config: IsisConfig | None = None,
        transfer_tool: "BlockingTransferTool | None" = None,
    ) -> None:
        isis_config = isis_config or IsisConfig()
        super().__init__(stack, isis_config.membership)
        self.isis_config = isis_config
        self.transfer_tool = transfer_tool
        self.primary = (
            stack.pid.site == isis_config.bootstrap_site
            and stack.pid.incarnation == 0
        )
        self.blocked_decisions = 0
        self._bootstrapping = False
        # While a blocking state transfer is in flight, the decided
        # install is deferred; starting new rounds meanwhile would make
        # members re-flush and orphan the install when it finally ships.
        self._transfer_pending = False
        self._transfer_token = 0
        # Sticky endorsement: while in one view, flush only for a single
        # coordinator.  Without it two coordinators could concurrently
        # assemble "majorities" of the same predecessor view (each
        # member endorsing both, one after the other) and install
        # concurrent primaries — exactly what linear membership forbids.
        self._endorsed: ProcessId | None = None

    def start(self) -> None:
        """Everyone bootstraps a singleton view (it provides the flush
        predecessor for absorption), but only the bootstrap process's
        singleton is a *primary* view."""
        self._bootstrapping = True
        try:
            super().start()
        finally:
            self._bootstrapping = False

    # -- coordination restrictions ------------------------------------------------

    def on_propose(self, src: ProcessId, msg: VcPropose) -> None:
        if not self.primary or self._transfer_pending:
            return  # only primary members may run view changes
        target = msg.target | self.stack.fd.reachable() | {self.stack.pid}
        if self.view is not None:
            candidate = min_process(
                {p for p in target if p in self.view.members}
            )
            if candidate != self.stack.pid:
                self.stack.send(candidate, VcPropose(self.stack.pid, target))
                return
        if self._round is not None:
            extra = target - self._round.members
            if extra:
                self._start_round(self._round.members | extra)
            return
        self._start_round(target)

    def _initiate(self) -> None:
        if self._transfer_pending:
            return
        target = self.stack.fd.reachable() | {self.stack.pid}
        if not self.primary:
            # A blocked process cannot coordinate; it can only knock on
            # every reachable door and hope a primary member answers.
            for pid in target:
                if pid != self.stack.pid:
                    self.stack.send(pid, VcPropose(self.stack.pid, target))
            return
        # The coordinator must be a reachable *primary* member — the
        # least identifier overall may be a blocked joiner or a stale
        # incarnation of the bootstrap site.
        candidates = (
            target & self.view.members if self.view is not None else {self.stack.pid}
        )
        candidate = min_process(candidates or {self.stack.pid})
        if candidate == self.stack.pid:
            self._start_round(target)
        else:
            self.stack.send(candidate, VcPropose(self.stack.pid, target))

    def _abort_round_if_any(self) -> None:
        """Cancel our in-flight round AND release its members' pledges;
        leaving them endorsed to us while we stop coordinating would
        deadlock the group (they ignore the real coordinator forever)."""
        if self._round is None:
            return
        abort = VcAbort(self._round.round_id)
        for member in self._round.members:
            if member != self.stack.pid:
                self.stack.send(member, abort)
        self.on_abort(self.stack.pid, abort)
        self._cancel_round()

    def _fresher_primary(self) -> ProcessId | None:
        """A reachable peer whose current view identifier dominates ours.

        After a heal, a *stale* primary member (left behind by the real
        primary chain during the partition) must not coordinate: the
        current primary's views carry strictly larger identifiers, and
        heartbeats expose them.  Returns the peer to defer to, or None
        if our view is the freshest we can see.
        """
        if self.view is None:
            return None
        best: ProcessId | None = None
        best_epoch = self.view.epoch
        for pid in self.stack.fd.reachable():
            if pid == self.stack.pid:
                continue
            theirs = self.stack.fd.heard_view(pid)
            # Strictly larger *epoch* only: the coordinator component of
            # a view identifier is a tie-break, not evidence of a fresher
            # chain (bootstrap singletons all share epoch 1, for one).
            if theirs is not None and theirs.epoch > best_epoch:
                best, best_epoch = pid, theirs.epoch
        return best

    def _start_round(self, members: frozenset[ProcessId]) -> None:
        if not self.primary:
            return
        # Both linear-membership guards (freshness deference here, the
        # endorsement rule in on_prepare) hang off the same ablation
        # switch: together they are what makes concurrent primaries
        # impossible (benchmarks/bench_ablations.py, A3).
        fresher = (
            self._fresher_primary()
            if self.isis_config.sticky_endorsement
            else None
        )
        if fresher is not None:
            # We are a stale primary: defer to the fresher chain.
            self._abort_round_if_any()
            self.stack.send(fresher, VcPropose(self.stack.pid, members))
            return
        # The coordinator must be a primary member, not merely the least
        # identifier overall — a blocked joiner with a small id must not
        # seize coordination.
        if self.view is not None:
            primary_candidates = members & self.view.members
            if primary_candidates and min_process(primary_candidates) != self.stack.pid:
                # Hand coordination to the better candidate.
                self._abort_round_if_any()
                self.stack.send(
                    min_process(primary_candidates),
                    VcPropose(self.stack.pid, members),
                )
                return
        self._run_round(members)

    def _run_round(self, members: frozenset[ProcessId]) -> None:
        """The unrestricted round-start logic of the base class."""
        members = members | {self.stack.pid}
        self._cancel_round()
        self._round_counter += 1
        round_id = (self.stack.pid, self._round_counter)
        rnd = _Round(round_id, members)
        rnd.timer = self.stack.set_timer(self.config.round_timeout, self._round_timeout)
        self._round = rnd
        from repro.gms.messages import VcPrepare

        prepare = VcPrepare(round_id, members)
        for member in members:
            if member != self.stack.pid:
                self.stack.send(member, prepare)
        self.on_prepare(self.stack.pid, prepare)

    def on_prepare(self, src: ProcessId, msg) -> None:
        # Members never nack towards a smaller non-primary identifier;
        # they flush to whoever coordinates — but endorse at most one
        # coordinator per view, releasing the endorsement only when that
        # coordinator is suspected (it may have crashed mid-round) or
        # when a challenger demonstrably belongs to a *fresher* primary
        # chain (strictly larger heard view identifier).  The strictness
        # is what keeps endorsement safe: two coordinators racing over
        # the same predecessor view have equal identifiers and can never
        # steal each other's members.
        coordinator = msg.round_id[0]
        if (
            self.isis_config.sticky_endorsement
            and self._endorsed is not None
            and self._endorsed != coordinator
            and self._endorsed in self.stack.fd.reachable()
            and not self._challenger_is_fresher(coordinator)
        ):
            return
        self._endorsed = coordinator
        self._flush_to(msg.round_id, coordinator)

    def _heard_view_of(self, pid: ProcessId):
        if pid == self.stack.pid:
            return self.view.view_id if self.view is not None else None
        return self.stack.fd.heard_view(pid)

    def _challenger_is_fresher(self, challenger: ProcessId) -> bool:
        held = self._heard_view_of(self._endorsed)
        offered = self._heard_view_of(challenger)
        if offered is None:
            return False
        return held is None or offered.epoch > held.epoch

    def _decide(self, rnd: _Round) -> None:
        """Apply the Isis restrictions, then decide as usual."""
        members = rnd.members
        current = self.view.members if self.view is not None else frozenset()
        # Primary-partition rule: majority of the current view required.
        if current and 2 * len(members & current) <= len(current):
            self.blocked_decisions += 1
            self._cancel_round()
            # Tell the members the round died so they release their
            # endorsement; without this, a minority coordinator's
            # members stay pledged to it forever and ignore the real
            # primary's prepares after the partition heals.
            abort = VcAbort(rnd.round_id)
            for member in rnd.members:
                if member != self.stack.pid:
                    self.stack.send(member, abort)
            self.on_abort(self.stack.pid, abort)
            return  # minority: block (no view is ever installed here)
        # One-at-a-time growth.
        joiners = members - current
        if current and len(joiners) > 1:
            admitted = min(joiners)
            excluded = joiners - {admitted}
            members = (members & current) | {admitted}
            rnd = _Round(rnd.round_id, members, replies={
                pid: f for pid, f in rnd.replies.items() if pid in members
            })
            # The joiners deferred to the next change DID flush to this
            # round and pledged themselves to us; release them or they
            # will ignore every subsequent prepare (including ours).
            abort = VcAbort(rnd.round_id)
            for member in excluded:
                self.stack.send(member, abort)
        trimmed = rnd
        if self.transfer_tool is not None and current:
            new_members = members - current
            if new_members:
                joiner = min(new_members)
                self._cancel_round()
                self._transfer_pending = True
                self._transfer_token += 1
                token = self._transfer_token
                chunks = self.transfer_tool.run(
                    joiner, on_done=lambda: self._finish_decide(trimmed)
                )
                # Safety valve: if the joiner dies mid-transfer, unfreeze
                # coordination so the group is not wedged forever.  The
                # token pins the timer to THIS transfer: a stale timer
                # from a completed one must not unfreeze a later one.
                deadline = 40.0 + 4.0 * chunks
                self.stack.set_timer(
                    deadline, lambda: self._abort_stuck_transfer(token)
                )
                return
        self._finish_decide(trimmed)

    def _abort_stuck_transfer(self, token: int) -> None:
        if self._transfer_pending and self._transfer_token == token:
            self._transfer_pending = False

    def on_abort(self, src: ProcessId, msg) -> None:
        if self._flushed_round == msg.round_id:
            self._endorsed = None

    def _finish_decide(self, rnd: _Round) -> None:
        self._transfer_pending = False
        super()._decide(rnd)

    def _install(
        self, view: View, structure: EViewStructure, predecessors, trace=None
    ) -> None:
        # Isis views are flat: collapse whatever structure the generic
        # decision computed into the degenerate single-subview form.
        flat = EViewStructure.degenerate(
            view.epoch, view.coordinator, view.members
        )
        super()._install(view, flat, predecessors, trace=trace)
        self._endorsed = None
        if not self._bootstrapping:
            # Every non-bootstrap install comes from a primary round, so
            # installing it absorbs us into the primary partition.
            self.primary = True
