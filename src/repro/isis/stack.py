"""Plugging the Isis baseline into the cluster harness."""

from __future__ import annotations

from dataclasses import replace
from typing import TYPE_CHECKING, Any, Callable

from repro.isis.membership import IsisConfig, PrimaryPartitionAgreement
from repro.isis.transfer_tool import BlockingTransferTool
from repro.vsync.stack import StackConfig

if TYPE_CHECKING:  # pragma: no cover
    from repro.vsync.stack import GroupStack


def isis_stack_config(
    base: StackConfig | None = None,
    isis_config: IsisConfig | None = None,
    blocking_transfer: bool = False,
    size_of: Callable[[Any], int] | None = None,
) -> StackConfig:
    """A :class:`StackConfig` whose stacks run the Isis-style protocol.

    ``blocking_transfer=True`` additionally wires the Section 5 blocking
    state-transfer tool into every view change that admits a joiner.
    """
    base = base or StackConfig()
    isis = isis_config or IsisConfig()

    def factory(stack: "GroupStack") -> PrimaryPartitionAgreement:
        tool = (
            BlockingTransferTool(stack, size_of=size_of)
            if blocking_transfer
            else None
        )
        return PrimaryPartitionAgreement(stack, isis, transfer_tool=tool)

    return replace(base, membership_factory=factory)
