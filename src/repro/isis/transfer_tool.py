"""The Isis state-transfer tool (Section 5).

"Isis ... provides a state transfer tool that permits a process joining
the group to bring itself up-to-date automatically ... a state transfer
is performed *before* installing a new view that includes the joining
process", guaranteeing every view member is up to date, at the cost of
"additional synchrony between the application and the external
environment" — the view is blocked for the whole transfer.

The tool runs at the coordinator deciding a view that admits a joiner:
it snapshots the local application state (the coordinator is by
construction up to date in the primary), streams it to the joiner as
``size`` chunks (one chunk per round trip, so blocking time grows
linearly in the state size — experiment E8), installs the state at the
joiner, and only then releases the deferred view installation.

Works with any application; with a :class:`~repro.core.group_object.
GroupObject` it moves real state and marks the joiner fresh, so the
joiner enters the view ready to reconcile immediately.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable

from repro.core.settlement import StateAdopt
from repro.core.state_transfer import ChunkSender, TAck, TChunk
from repro.types import ProcessId

if TYPE_CHECKING:  # pragma: no cover
    from repro.vsync.stack import GroupStack


@dataclass(frozen=True)
class _IsisState:
    """Final chunk payload carrying the snapshot envelope."""

    envelope: Any


class BlockingTransferTool:
    """Coordinator-side blocking transfer, one instance per stack.

    ``size_of`` maps the application to its transferable state size in
    chunks; the default asks the application for ``transfer_size()`` if
    it has one, else uses a single chunk.
    """

    def __init__(
        self,
        stack: "GroupStack",
        size_of: Callable[[Any], int] | None = None,
    ) -> None:
        self.stack = stack
        self.size_of = size_of
        self._senders: dict = {}
        self.transfers_started = 0
        self.transfers_completed = 0
        self.blocked_time = 0.0
        stack.app_transfer_hook = self  # for the receiving side

    # -- donor side ----------------------------------------------------------

    def run(self, joiner: ProcessId, on_done: Callable[[], None]) -> int:
        """Stream our state to ``joiner``; call ``on_done`` when it has
        acknowledged everything (the deferred view may then install).
        Returns the number of chunks the transfer will take."""
        self.transfers_started += 1
        started = self.stack.now
        app = self.stack.app
        size = self._state_size(app)
        envelope = self._snapshot_envelope(app)
        chunks: list[Any] = [None] * max(0, size - 1) + [_IsisState(envelope)]

        def finished() -> None:
            self.transfers_completed += 1
            self.blocked_time += self.stack.now - started
            on_done()

        sender = ChunkSender(self.stack, joiner, chunks, finished)
        self._senders[sender.transfer_id] = sender
        sender.start()
        return len(chunks)

    def _state_size(self, app: Any) -> int:
        if self.size_of is not None:
            return max(1, self.size_of(app))
        if hasattr(app, "transfer_size"):
            return max(1, app.transfer_size())
        return 1

    @staticmethod
    def _snapshot_envelope(app: Any) -> Any:
        if hasattr(app, "snapshot_state") and hasattr(app, "version"):
            return (
                app.snapshot_state(),
                frozenset(getattr(app, "_applied_ops", frozenset())),
                app.version,
            )
        return None

    # -- message handling (both sides) -------------------------------------------

    def on_direct(self, src: ProcessId, payload: Any) -> bool:
        """Intercept transfer traffic; returns True when consumed."""
        if isinstance(payload, TChunk):
            if isinstance(payload.payload, _IsisState):
                self._install_state(payload.payload.envelope)
            self.stack.send_direct(src, TAck(payload.transfer, payload.index))
            return True
        if isinstance(payload, TAck):
            sender = self._senders.get(payload.transfer)
            if sender is not None:
                sender.on_ack(payload)
                if sender.done:
                    del self._senders[payload.transfer]
            return True
        return False

    def _install_state(self, envelope: Any) -> None:
        app = self.stack.app
        if envelope is not None and hasattr(app, "_on_adopt"):
            app._on_adopt(StateAdopt((self.stack.pid, 0), envelope))
