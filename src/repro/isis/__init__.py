"""The Isis-style baseline (Section 5).

Three design decisions of Isis that the paper analyses:

* **primary partition** (linear membership): only the component holding
  a majority of the previous view installs new views; minority
  components block.  Consequence: state merging "can never arise ...
  since primary partitions are totally ordered" — at the price of "the
  inability to support applications with weak consistency requirements
  that could make progress in multiple concurrent partitions";
* **one-member-at-a-time view growth**: two consecutive views may
  expand by at most one member, which makes post-view-change local
  reasoning easy but costs ``m`` view changes to absorb ``m`` processes
  (the paper's merge example) — experiment E5;
* **blocking state transfer**: the new view is withheld until the
  joiner has received the application state, so "all processes in the
  current view have an up-to-date state" — at the price of an
  installation latency proportional to the state size — experiment E8.

:func:`isis_stack_config` plugs all of this into the regular
:class:`~repro.runtime.cluster.Cluster` harness.
"""

from repro.isis.membership import IsisConfig, PrimaryPartitionAgreement
from repro.isis.transfer_tool import BlockingTransferTool
from repro.isis.stack import isis_stack_config

__all__ = [
    "IsisConfig",
    "PrimaryPartitionAgreement",
    "BlockingTransferTool",
    "isis_stack_config",
]
