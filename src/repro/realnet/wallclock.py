"""Wall-clock scheduler: :class:`repro.ports.SchedulerPort` on asyncio.

The protocol stacks schedule everything through the two port lanes
(cancellable timers via :meth:`WallClockScheduler.after`, fire-and-forget
deliveries via :meth:`WallClockScheduler.fire_after`); here both map to
``loop.call_at``.  ``now`` is *seconds since the scheduler was created*,
so stack timer configs express real seconds and traces from co-located
nodes that share one scheduler share one time base.

Differences from the simulator's scheduler, all deliberate:

* **The past is clamped, not an error.**  Between a callback reading
  ``now`` and the resulting ``call_at``, the wall clock moves; a
  deadline that slipped marginally into the past means "run as soon as
  possible", which is what ``call_at`` with a past deadline already
  does.  The simulator's raise-on-past is a determinism guard that has
  no analogue on a real clock.
* **No ``run``/``step``.**  The asyncio loop drives execution; the
  scheduler is only a clock plus timer facade.  Tests and orchestrators
  wait on real conditions (``await``-ing predicates) instead of
  stepping virtual time.
* **Equal deadlines may reorder.**  asyncio's timer heap does not
  promise insertion order on ties, so unlike the simulator (whose
  ``seq`` tie-break makes execution a pure function of the schedule)
  two callbacks for the same instant can swap.  The protocols are
  sequence-number-guarded against exactly this — the simulated
  network's non-FIFO mode exercises it deterministically.

Callbacks must not raise: an exception would otherwise vanish into the
loop's exception handler mid-protocol, so it is caught, counted and
reported through ``on_error`` (default: log to stderr) instead.
"""

from __future__ import annotations

import asyncio
import logging
from typing import Any, Awaitable, Callable, TypeVar

try:  # pragma: no cover - depends on the environment
    import uvloop  # type: ignore[import-not-found]
except ImportError:  # stdlib fallback — uvloop is never a hard dependency
    uvloop = None

logger = logging.getLogger("repro.realnet.wallclock")

#: True when uvloop is importable; every realnet loop entry point then
#: runs on it.  The scheduler/transport code is loop-agnostic — the only
#: uvloop-specific accommodation is that batch buffers are never reused
#: across ``write()`` calls (uvloop keeps a reference to the object).
HAVE_UVLOOP = uvloop is not None

_T = TypeVar("_T")


def new_event_loop() -> asyncio.AbstractEventLoop:
    """A fresh event loop: uvloop when available, stdlib otherwise.

    Realnet drivers that own a loop (background-thread drivers, the
    standalone node) create theirs through here so they all pick up the
    faster loop opportunistically.
    """
    if uvloop is not None:
        return uvloop.new_event_loop()
    return asyncio.new_event_loop()


def run(main: Awaitable[_T]) -> _T:
    """``asyncio.run`` equivalent on :func:`new_event_loop`."""
    loop = new_event_loop()
    try:
        asyncio.set_event_loop(loop)
        return loop.run_until_complete(main)
    finally:
        try:
            tasks = asyncio.all_tasks(loop)
            for task in tasks:
                task.cancel()
            if tasks:
                loop.run_until_complete(
                    asyncio.gather(*tasks, return_exceptions=True)
                )
            loop.run_until_complete(loop.shutdown_asyncgens())
        finally:
            asyncio.set_event_loop(None)
            loop.close()


class WallClockEvent:
    """Cancellable handle wrapping an :class:`asyncio.TimerHandle`."""

    __slots__ = ("_handle", "cancelled")

    def __init__(self, handle: asyncio.TimerHandle) -> None:
        self._handle = handle
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from firing; idempotent, safe after fire."""
        if not self.cancelled:
            self.cancelled = True
            self._handle.cancel()


class WallClockScheduler:
    """:class:`repro.ports.SchedulerPort` over a running asyncio loop."""

    def __init__(
        self,
        loop: asyncio.AbstractEventLoop | None = None,
        on_error: Callable[[BaseException], None] | None = None,
    ) -> None:
        self._loop = loop if loop is not None else asyncio.get_event_loop()
        self._t0 = self._loop.time()
        self._events_run = 0
        self._errors = 0
        self.on_error = on_error

    @property
    def now(self) -> float:
        """Seconds elapsed since this scheduler was created."""
        return self._loop.time() - self._t0

    @property
    def events_run(self) -> int:
        """Number of scheduled callbacks executed so far."""
        return self._events_run

    @property
    def errors(self) -> int:
        """Number of callbacks that raised (and were contained)."""
        return self._errors

    # -- scheduling -------------------------------------------------------

    def at(self, time: float, callback: Callable[..., None], *args: Any) -> WallClockEvent:
        """Schedule ``callback(*args)`` at scheduler time ``time``.

        A ``time`` already in the past runs as soon as the loop is free.
        """
        when = self._t0 + time
        return WallClockEvent(self._loop.call_at(when, self._run, callback, args))

    def after(self, delay: float, callback: Callable[..., None], *args: Any) -> WallClockEvent:
        """Schedule ``callback(*args)`` after ``delay`` seconds (>= 0)."""
        return self.at(self.now + max(0.0, delay), callback, *args)

    def fire_at(self, time: float, callback: Callable[..., None], *args: Any) -> None:
        """Fire-and-forget lane: no cancellable handle is returned.

        On asyncio both lanes cost one ``TimerHandle`` either way; the
        lane split exists so the port contract (and the simulator's
        genuinely cheaper fast lane) is honoured.
        """
        self._loop.call_at(self._t0 + time, self._run, callback, args)

    def fire_after(self, delay: float, callback: Callable[..., None], *args: Any) -> None:
        """Fire-and-forget lane, relative to now."""
        self.fire_at(self.now + max(0.0, delay), callback, *args)

    # -- execution --------------------------------------------------------

    def _run(self, callback: Callable[..., None], args: tuple[Any, ...]) -> None:
        self._events_run += 1
        try:
            callback(*args)
        except Exception as exc:  # noqa: BLE001 - must not kill the loop
            self._errors += 1
            if self.on_error is not None:
                self.on_error(exc)
            else:
                # ERROR level: visible via logging.lastResort even when
                # no handler is configured, like the old stderr print.
                logger.error(
                    "scheduler callback %r raised", callback, exc_info=True
                )
