"""Real-network implementation of :class:`repro.ports.NetworkPort`.

One :class:`RealNetwork` instance is one node's view of the wire: a
frame server listening on its own localhost port plus one outbound
:class:`~repro.realnet.transport.PeerLink` per peer site, addressed
through a (possibly shared, possibly mutating) *address book* mapping
``site -> (host, port)``.  The protocol stack registered on it is
exactly the stack the simulator runs — same :meth:`send` /
:meth:`multicast` / :meth:`send_to_site` / :meth:`multicast_sites`
surface, same drop-never-raise semantics, same
:class:`~repro.net.network.NetworkStats` accounting.

Fault injection carries over from the simulated network:

* ``loss_prob`` drops outgoing frames at the sender with the same
  seeded substream discipline (:class:`~repro.sim.rng.RngStreams`);
* ``latency`` (any :mod:`repro.net.latency` model) delays frames via
  the wall-clock scheduler before they reach the socket;
* ``connectivity`` is a predicate over ``(src_site, dst_site)`` —
  the orchestrator wires it to a live :class:`~repro.net.topology.Topology`
  so :class:`~repro.net.faults.FaultSchedule` partitions/heals (and even
  one-way cuts) apply to real sockets unchanged.  It is enforced on
  **both** send and receive, mirroring the simulator's "a partition that
  forms while a message is in flight destroys it" semantics at
  firewall granularity.

Self-addressed traffic never touches a socket: it is looped back
through the scheduler (never synchronously — a send must not reenter
the stack before returning, an invariant the simulator provides for
free and protocol code implicitly relies on).

Frames addressed to a specific incarnation are dropped by the receiver
when a different incarnation now lives at the site — the wire analogue
of the simulator delivering only to the registered ``ProcessId``.
"""

from __future__ import annotations

import logging
from typing import Any, Callable, Iterable

from repro.errors import CodecError, TransportError
from repro.net.network import NetworkStats
from repro.ports import ProcessPort
from repro.realnet.codec_bin import WIRE_FORMATS, ParsedMsg, supported_formats
from repro.realnet.transport import (
    FrameServer,
    OutMessage,
    PeerLink,
    enable_stderr_logging,
)
from repro.realnet.wallclock import WallClockScheduler
from repro.sim.rng import RngStreams
from repro.types import ProcessId, SiteId

logger = logging.getLogger("repro.realnet.network")

Connectivity = Callable[[SiteId, SiteId], bool]

AddressBook = "dict[SiteId, tuple[str, int]]"


class RealNetwork:
    """One node's :class:`~repro.ports.NetworkPort` over TCP sockets."""

    def __init__(
        self,
        scheduler: WallClockScheduler,
        site: SiteId,
        address_book: dict[SiteId, tuple[str, int]],
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        connectivity: Connectivity | None = None,
        loss_prob: float = 0.0,
        latency: Any = None,
        rng: RngStreams | None = None,
        detailed_stats: bool = True,
        codec: str = "bin",
        flush_tick: float | None = None,
        batch_bytes: int | None = None,
        quiet: bool = True,
    ) -> None:
        self.scheduler = scheduler
        self.site = site
        self.address_book = address_book
        self.host = host
        self._requested_port = port
        self.connectivity = connectivity or (lambda src, dst: True)
        self.loss_prob = loss_prob
        self.latency = latency
        self._rng = (rng or RngStreams(0)).stream(f"realnet.{site}")
        self.stats = NetworkStats(detailed=detailed_stats)
        self._formats = supported_formats(codec)
        self._preferred = WIRE_FORMATS[self._formats[0]]
        self._flush_tick = flush_tick
        self._batch_bytes = batch_bytes
        if not quiet:
            enable_stderr_logging()
        self._proc: ProcessPort | None = None
        self._server: FrameServer | None = None
        self._links: dict[SiteId, PeerLink] = {}
        #: Callable returning a MetricsSnapshot, set by the node when a
        #: metrics registry exists; serves ``repro obs watch`` requests
        #: arriving on the normal listening socket.
        self.snapshot_provider: Any = None
        #: Callable returning a TraceDump, set by the node when tracing
        #: is on; serves flight-recorder pulls over the same obs frame
        #: kind (see repro.obs.watch).
        self.trace_provider: Any = None
        #: Optional second-stage control hook ``(fmt, body) -> bytes |
        #: None`` consulted after the obs handler: the supervised node's
        #: lifecycle control protocol (see repro.realnet.procnode).
        self.control_handler: Any = None
        #: Optional third-stage control hook ``(fmt, body, send) ->
        #: bytes | None`` serving external client requests; ``send``
        #: writes framed replies back on the originating connection at
        #: any later time (see repro.client.service.StoreService).
        self.client_handler: Any = None

    # -- lifecycle -----------------------------------------------------

    async def start(self) -> tuple[str, int]:
        """Bind and start the frame server; publish our address.

        Port 0 binds an ephemeral port; the actually-bound address is
        written into the shared address book and returned.
        """
        if self._server is not None:
            raise TransportError(f"site {self.site}: transport already started")
        self._server = FrameServer(
            self.host, self._requested_port, self._on_msg,
            accept_formats=self._formats,
            on_control=self._on_control,
        )
        address = await self._server.start()
        self.address_book[self.site] = address
        return address

    async def stop(self) -> None:
        """Close every link and the server; safe to call twice."""
        links, self._links = self._links, {}
        for link in links.values():
            await link.stop()
        server, self._server = self._server, None
        if server is not None:
            await server.stop()

    def register(self, process: ProcessPort) -> None:
        """Attach the (single) local protocol stack.

        A *dead* registered stack may be replaced — the in-process
        recover path of the multi-process node boots a fresh incarnation
        on the same transport (same port, same live connections) after
        the previous stack crashed.  Replacing a live stack stays an
        error.
        """
        if self._proc is not None and self._proc.alive:
            raise TransportError(f"site {self.site}: a process is already registered")
        self._proc = process
        process.attach(self)
        pid = process.pid
        for link in self._links.values():
            link.rebind_src((pid.site, pid.incarnation))

    # -- NetworkPort: transmission -------------------------------------

    def send(self, src: ProcessId, dst: ProcessId, payload: Any) -> None:
        stats = self.stats
        stats.sent += 1
        if stats.detailed:
            stats.record_type(payload)
        self._transmit(dst.site, dst.incarnation, payload, {})

    def send_to_site(self, src: ProcessId, site: SiteId, payload: Any) -> None:
        stats = self.stats
        stats.sent += 1
        if stats.detailed:
            stats.record_type(payload)
        self._transmit(site, None, payload, {})

    def multicast(self, src: ProcessId, dsts: Iterable[ProcessId], payload: Any) -> None:
        self._fan_out(tuple((d.site, d.incarnation) for d in dsts), payload)

    def multicast_sites(self, src: ProcessId, sites: Iterable[SiteId], payload: Any) -> None:
        self._fan_out(tuple((site, None) for site in sites), payload)

    def _fan_out(
        self, targets: tuple[tuple[SiteId, int | None], ...], payload: Any
    ) -> None:
        """Shared fan-out: one payload-encoding cell across every target."""
        stats = self.stats
        stats.sent += len(targets)
        if stats.detailed:
            for _ in targets:
                stats.record_type(payload)
        cell: dict[str, Any] = {}
        for site, incarnation in targets:
            self._transmit(site, incarnation, payload, cell)

    def _transmit(
        self,
        dst_site: SiteId,
        dst_inc: int | None,
        payload: Any,
        cell: dict[str, Any],
    ) -> None:
        """Route one payload; ``cell`` shares encodings across a fan-out.

        Drop accounting mirrors the simulator: unknown/unreachable site
        -> ``dropped_dead``, firewall -> ``dropped_partition``, injected
        or congestion loss -> ``dropped_loss``.
        """
        stats = self.stats
        if not self.connectivity(self.site, dst_site):
            stats.dropped_partition += 1
            return
        if self.loss_prob > 0 and self._rng.random() < self.loss_prob:
            stats.dropped_loss += 1
            return
        delay = self.latency.sample(self._rng) if self.latency is not None else 0.0
        if dst_site == self.site:
            # Loop back locally — but never synchronously: the stack
            # must not be reentered before its send() returns.
            self.scheduler.fire_after(delay, self._deliver_local, dst_inc, payload)
            return
        if dst_site not in self.address_book:
            stats.dropped_dead += 1
            return
        fmt = self._preferred
        if fmt.name not in cell:
            # Encode eagerly in our preferred format: the work is shared
            # across the fan-out and an unencodable payload raises here,
            # in the sender's context, not in a background link task.
            cell[fmt.name] = fmt.encode_payload(payload)
        msg = OutMessage(dst_inc, payload, cell)
        if delay > 0:
            self.scheduler.fire_after(delay, self._offer, dst_site, msg)
        else:
            self._offer(dst_site, msg)

    def _offer(self, dst_site: SiteId, msg: OutMessage) -> None:
        link = self._links.get(dst_site)
        if link is None:
            pid = self._pid()
            link = PeerLink(
                name=f"{self.site}->{dst_site}",
                src=(pid.site, pid.incarnation),
                dst_site=dst_site,
                resolve=lambda site=dst_site: self.address_book.get(site),
                offer_formats=self._formats,
                **(
                    {}
                    if self._flush_tick is None
                    else {"flush_tick": self._flush_tick}
                ),
                **(
                    {}
                    if self._batch_bytes is None
                    else {"batch_bytes": self._batch_bytes}
                ),
            )
            self._links[dst_site] = link
            link.start()
        if not link.offer(msg):
            self.stats.dropped_loss += 1

    def _pid(self) -> ProcessId:
        if self._proc is None:
            raise TransportError(f"site {self.site}: no process registered")
        return self._proc.pid

    def _deliver_local(self, dst_inc: int | None, payload: Any) -> None:
        """Scheduler-looped self-delivery (same checks as the wire path)."""
        stats = self.stats
        proc = self._proc
        if proc is None or not proc.alive:
            stats.dropped_dead += 1
            return
        if dst_inc is not None and dst_inc != proc.pid.incarnation:
            stats.dropped_dead += 1
            return
        stats.delivered += 1
        proc.deliver_network(proc.pid, payload)

    # -- receive path --------------------------------------------------

    def _on_msg(self, msg: ParsedMsg) -> None:
        """Validate and deliver one inbound ``msg`` frame."""
        stats = self.stats
        if msg.dst_site != self.site:
            stats.dropped_dead += 1  # misdelivered: stale address book
            return
        # Delivery-time firewall check: a partition installed while the
        # frame was in flight (or queued) destroys it, as in the sim.
        if not self.connectivity(msg.src_site, self.site):
            stats.dropped_partition += 1
            return
        proc = self._proc
        if proc is None or not proc.alive:
            stats.dropped_dead += 1
            return
        if msg.dst_inc is not None and msg.dst_inc != proc.pid.incarnation:
            stats.dropped_dead += 1  # addressed to a previous incarnation
            return
        try:
            payload = msg.payload()
        except CodecError as exc:
            stats.dropped_dead += 1
            logger.info("site %s: undecodable payload from %s: %s",
                        self.site, msg.src_site, exc)
            return
        except Exception:
            stats.dropped_dead += 1
            return
        stats.delivered += 1
        proc.deliver_network(ProcessId(msg.src_site, msg.src_inc), payload)

    def _on_control(
        self, fmt: Any, body: bytes, send: Any = None
    ) -> bytes | None:
        """Serve non-``msg`` frames: obs snapshot polls, then the
        node's control protocol, then the client service (when those
        hooks are installed)."""
        from repro.obs.watch import handle_obs_control

        reply = handle_obs_control(
            fmt, body, self.snapshot_provider, self.trace_provider
        )
        if reply is not None:
            return reply
        if self.control_handler is not None:
            reply = self.control_handler(fmt, body)
            if reply is not None:
                return reply
        if self.client_handler is not None and send is not None:
            return self.client_handler(fmt, body, send)
        return None

    # -- introspection -------------------------------------------------

    @property
    def address(self) -> tuple[str, int] | None:
        return self.address_book.get(self.site)

    def link_stats(self) -> dict[SiteId, dict[str, Any]]:
        """Per-peer link counters, including batching and codec state."""
        return {
            site: {
                "frames_sent": link.frames_sent,
                "frames_dropped": link.frames_dropped,
                "encode_errors": link.encode_errors,
                "connects": link.connects,
                "flushes": link.flushes,
                "bytes_sent": link.bytes_sent,
                "max_batch": link.max_batch,
                "codec": link.wire_format,
            }
            for site, link in sorted(self._links.items())
        }

    def transport_stats(self) -> dict[str, Any]:
        """This node's wire totals: links + server, one flat dict."""
        totals = {
            "frames_sent": 0,
            "frames_dropped": 0,
            "encode_errors": 0,
            "connects": 0,
            "flushes": 0,
            "bytes_sent": 0,
            "max_batch": 0,
            "frames_received": 0,
            "bytes_received": 0,
            "reads": 0,
            "max_frames_per_read": 0,
            "bad_connections": 0,
            "bad_frames": 0,
        }
        codecs: dict[str, int] = {}
        for link in self._links.values():
            totals["frames_sent"] += link.frames_sent
            totals["frames_dropped"] += link.frames_dropped
            totals["encode_errors"] += link.encode_errors
            totals["connects"] += link.connects
            totals["flushes"] += link.flushes
            totals["bytes_sent"] += link.bytes_sent
            totals["max_batch"] = max(totals["max_batch"], link.max_batch)
            if link.wire_format is not None:
                codecs[link.wire_format] = codecs.get(link.wire_format, 0) + 1
        server = self._server
        if server is not None:
            totals["frames_received"] = server.frames_received
            totals["bytes_received"] = server.bytes_received
            totals["reads"] = server.reads
            totals["max_frames_per_read"] = server.max_frames_per_read
            totals["bad_connections"] = server.bad_connections
            totals["bad_frames"] = server.bad_frames
        totals["codecs"] = codecs
        return totals

    def frames_received(self) -> int:
        return self._server.frames_received if self._server is not None else 0
