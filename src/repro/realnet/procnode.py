"""Supervised node process: the child side of the multi-core cluster.

One OS process per site.  The parent (:class:`~repro.realnet.
proc_driver.ProcRealClusterDriver`) spawns ``repro realnet node
--supervised`` children and steers them over their *normal listening
sockets* with **control frames** — a third frame kind (:data:`CTL_KIND`,
``0x03``) next to ``msg`` (``0x01``) and the obs snapshot kind
(``0x02``).  A control request carries one ``(op, arg)`` value in the
connection's negotiated codec; the reply carries ``(ok, result)``.
Lifecycle (crash / recover / boot / topology pushes / join bookkeeping),
workload injection, trace collection and wire-stat scraping all travel
through this one protocol, so the parent needs no side channels: the
same port that serves protocol traffic and ``repro obs watch`` serves
the cluster driver.

Design decisions worth naming:

* **Crash is a control op, not a SIGKILL.**  Killing the process would
  destroy its :class:`~repro.trace.recorder.TraceRecorder`, and the
  property checkers need every node's history (a delivery whose
  multicast was never recorded reads as a violation).  So ``crash``
  kills the *stack* — the transport and control surface stay up, frames
  addressed to the dead incarnation are dropped exactly as the
  simulator drops them — and ``recover`` boots a fresh incarnation in
  the same process.
* **Connectivity is pushed, not shared.**  Each child owns a local
  :class:`~repro.net.topology.Topology`; the parent mirrors every
  mutation (partition / heal / isolate / one-way cuts / joins) to all
  children wholesale via the ``topology`` op, so fault schedules
  written against the parent apply to real sockets across processes.
* **Clocks are aligned by wall epoch.**  Every ``status`` / ``trace``
  reply includes ``epoch = time.time() - scheduler.now`` (the wall time
  of the child's t=0); the parent shifts child event times by the epoch
  difference before merging, putting all recorders on one comparable
  time base.
"""

from __future__ import annotations

import asyncio
import signal
import time
from typing import Any

from repro.apps.factories import app_factory
from repro.errors import CodecError, SimulationError
from repro.net.topology import Topology
from repro.obs.instrument import ClusterObs
from repro.obs.registry import MetricsRegistry
from repro.obs.tracing import FlightRecorder, Tracer
from repro.realnet.network import RealNetwork
from repro.realnet.node import realnet_stack_config
from repro.realnet.codec import _LEN, decode_frame_body, decode_value, encode_frame, encode_value
from repro.realnet.codec_bin import decode_value_bin, encode_value_bin
from repro.realnet.wallclock import WallClockScheduler
from repro.sim.rng import RngStreams
from repro.sim.stable_storage import StableStore
from repro.trace.events import CrashEvent, RecoverEvent
from repro.trace.export import event_to_json
from repro.trace.recorder import TraceRecorder
from repro.types import ProcessId, SiteId
from repro.vsync.events import GroupApplication
from repro.vsync.stack import GroupStack, StackConfig

#: Frame-kind byte for bin1 control frames (``msg`` 0x01, obs 0x02).
CTL_KIND = 0x03


# -- control frames (both codecs) ------------------------------------------


def ctl_request_frame(fmt: Any, op: str, arg: Any = None) -> bytes:
    """One framed ``(op, arg)`` control request in ``fmt``."""
    if fmt.binary:
        body = bytes([CTL_KIND]) + encode_value_bin((op, arg))
        return _LEN.pack(len(body)) + body
    return encode_frame({"k": "ctl", "p": encode_value((op, arg))})


def ctl_reply_frame(fmt: Any, ok: bool, result: Any) -> bytes:
    """One framed ``(ok, result)`` control reply in ``fmt``."""
    if fmt.binary:
        body = bytes([CTL_KIND]) + encode_value_bin((ok, result))
        return _LEN.pack(len(body)) + body
    return encode_frame({"k": "ctl_r", "p": encode_value((ok, result))})


def _parse_pair(fmt: Any, body: bytes, json_kind: str) -> tuple | None:
    if fmt.binary:
        if not body or body[0] != CTL_KIND:
            return None
        value = decode_value_bin(bytes(body[1:]))
    else:
        try:
            frame = decode_frame_body(body)
        except CodecError:
            return None
        if frame.get("k") != json_kind:
            return None
        value = decode_value(frame.get("p"))
    if not isinstance(value, tuple) or len(value) != 2:
        raise CodecError("malformed control frame body")
    return value


def parse_ctl_request(fmt: Any, body: bytes) -> tuple[str, Any] | None:
    """``(op, arg)`` if this non-``msg`` body is a control request."""
    return _parse_pair(fmt, body, "ctl")


def parse_ctl_reply(fmt: Any, body: bytes) -> tuple[bool, Any] | None:
    """``(ok, result)`` if this body is a control reply."""
    return _parse_pair(fmt, body, "ctl_r")


# -- the supervised node ---------------------------------------------------


class NodeSupervisor:
    """One site's transport + (re)bootable stack + control dispatcher.

    Owns everything the in-process :class:`~repro.realnet.cluster.
    RealCluster` wires per site, but for exactly one site in its own
    process: a wall-clock scheduler, a metrics registry + ClusterObs, a
    local topology mirror, per-incarnation trace recorders (retired
    recorders are kept for ``gather_trace``) and one
    :class:`~repro.realnet.network.RealNetwork` on a fixed port.  The
    stack is **not** booted at construction — the parent issues ``boot``
    once every child's transport is up, the same two-phase start the
    in-process orchestrator uses.
    """

    def __init__(
        self,
        site: SiteId,
        address_book: dict[SiteId, tuple[str, int]],
        *,
        app: str = "none",
        scale: float = 1.0,
        stack_config: StackConfig | None = None,
        loss_prob: float = 0.0,
        seed: int = 0,
        codec: str = "bin",
        trace_level: str = "full",
        quiet: bool = True,
        tracing: bool = False,
        flight_budget: int = 256 * 1024,
        trace_sample: int = 16,
    ) -> None:
        if site not in address_book:
            raise ValueError(f"site {site} missing from the address book")
        self.site = site
        self.address_book = dict(address_book)
        self.scheduler = WallClockScheduler()
        self.registry = MetricsRegistry(
            clock=lambda: self.scheduler.now, runtime="realnet"
        )
        self.flight: FlightRecorder | None = None
        tracer = None
        if tracing:
            # Per-process tracer, salted by site (see repro.obs.tracing):
            # children mint span ids with no cross-process coordination.
            self.flight = FlightRecorder(
                f"site{site}", "realnet",
                budget=flight_budget,
                epoch=time.time() - self.scheduler.now,
            )
            tracer = Tracer(
                self.flight,
                lambda: self.scheduler.now,
                salt=site,
                root_sample=trace_sample,
            )
        self.obs = ClusterObs(self.registry, tracer)
        self.topology = Topology(sorted(self.address_book))
        self.store = StableStore()
        self.trace_level = trace_level
        self.env_recorder = TraceRecorder(level=trace_level, label=f"env{site}")
        self._retired: list[TraceRecorder] = []
        self.recorder: TraceRecorder | None = None
        self.app_name = app
        self.stack_config = (
            stack_config if stack_config is not None else realnet_stack_config(scale)
        )
        self.stack: GroupStack | None = None
        self.app: Any = None
        self._incarnation = -1
        self.stop_event: asyncio.Event = asyncio.Event()
        host, port = self.address_book[site]
        self.network = RealNetwork(
            self.scheduler,
            site,
            self.address_book,
            host=host,
            port=port,
            connectivity=self.topology.allows,
            loss_prob=loss_prob,
            rng=RngStreams(seed),
            codec=codec,
            quiet=quiet,
        )
        self.network.snapshot_provider = lambda: self.registry.snapshot(
            f"site{site}"
        )
        if self.flight is not None:
            self.network.trace_provider = self.flight.dump
        self.network.control_handler = self._handle_ctl

    # -- lifecycle -----------------------------------------------------

    async def start_transport(self) -> tuple[str, int]:
        return await self.network.start()

    async def shutdown(self) -> None:
        if self.stack is not None and self.stack.alive:
            self.stack.crash()
        await self.network.stop()

    @property
    def epoch(self) -> float:
        """Wall time of this scheduler's t=0 (for cross-process merge)."""
        return time.time() - self.scheduler.now

    def boot(self) -> ProcessId:
        """(Re)start the stack under a fresh incarnation."""
        if self.stack is not None and self.stack.alive:
            raise SimulationError(f"site {self.site} is up; cannot boot")
        if self.recorder is not None:
            self._retired.append(self.recorder)
        self._incarnation += 1
        pid = ProcessId(self.site, self._incarnation)
        self.recorder = TraceRecorder(
            level=self.trace_level,
            label=f"site{self.site}/inc{self._incarnation}",
        )
        factory = app_factory(self.app_name, len(self.address_book))
        self.app = factory(pid) if factory is not None else GroupApplication()
        stack = GroupStack(
            pid,
            self.scheduler,
            self.store.site(self.site),
            self.app,
            self.recorder,
            universe=lambda: set(self.topology.sites),
            config=self.stack_config,
            obs=self.obs,
        )
        self.network.register(stack)
        self.stack = stack
        if self._incarnation > 0:
            self.env_recorder.record(
                RecoverEvent(time=self.scheduler.now, pid=pid, site=self.site)
            )
        return pid

    def crash(self) -> bool:
        """Kill the stack; transport and control surface stay up."""
        stack = self.stack
        if stack is None or not stack.alive:
            return False
        stack.crash()
        self.env_recorder.record(
            CrashEvent(time=self.scheduler.now, pid=stack.pid)
        )
        self.obs.process_crashed(stack.pid, self.scheduler.now)
        return True

    # -- control dispatch ----------------------------------------------

    def _handle_ctl(self, fmt: Any, body: bytes) -> bytes | None:
        request = parse_ctl_request(fmt, body)
        if request is None:
            return None
        op, arg = request
        try:
            result = self._dispatch(op, arg)
        except Exception as exc:  # noqa: BLE001 - reply, don't kill the link
            return ctl_reply_frame(fmt, False, f"{type(exc).__name__}: {exc}")
        return ctl_reply_frame(fmt, True, result)

    def _dispatch(self, op: str, arg: Any) -> Any:
        if op == "status":
            return self._status()
        if op == "mcast":
            return self._mcast(arg)
        if op == "mcast_many":
            count, payload = arg
            accepted = 0
            for _ in range(count):
                if not self._mcast(payload):
                    break
                accepted += 1
            return accepted
        if op == "counts":
            snap = self.registry.snapshot(f"site{self.site}")
            return (
                int(snap.total("multicasts_total")),
                int(snap.total("deliveries_total")),
            )
        if op == "ping":
            return "pong"
        if op == "boot":
            pid = self.boot()
            return (pid.site, pid.incarnation)
        if op == "crash":
            return self.crash()
        if op == "topology":
            components, oneway_cuts, sites = arg
            self.topology.restore(components, oneway_cuts, sites)
            return True
        if op == "add_site":
            site, host, port = arg
            self.address_book[site] = (host, port)
            return True
        if op == "trace":
            return self._trace()
        if op == "flight":
            # The flight recorder's current ring (None without tracing);
            # TraceDump is codec-registered, so it crosses the control
            # protocol in either negotiated format.
            return self.flight.dump() if self.flight is not None else None
        if op == "net_stats":
            return self._net_stats()
        if op == "shutdown":
            # Reply first; the event loop flushes the reply before the
            # scheduler callback tears the transport down.
            self.scheduler.after(0.1, self.stop_event.set)
            return True
        raise SimulationError(f"unknown control op {op!r}")

    def _mcast(self, payload: Any) -> bool:
        stack = self.stack
        if stack is None or not stack.alive or stack.is_flushing:
            return False
        stack.multicast(payload)
        return True

    def _status(self) -> dict[str, Any]:
        stack = self.stack
        alive = stack is not None and stack.alive
        view = stack.view if alive else None
        return {
            "site": self.site,
            "inc": self._incarnation,
            "alive": alive,
            "view": view.view_id if view is not None else None,
            "view_str": str(view) if view is not None else "",
            "members": (
                tuple(
                    sorted(view.members, key=lambda p: (p.site, p.incarnation))
                )
                if view is not None
                else ()
            ),
            "flushing": bool(stack.is_flushing) if alive else False,
            "now": self.scheduler.now,
            "epoch": self.epoch,
        }

    def _trace(self) -> tuple[float, tuple]:
        recorders = [self.env_recorder, *self._retired]
        if self.recorder is not None:
            recorders.append(self.recorder)
        dumped = tuple(
            (rec.label, tuple(event_to_json(event) for event in rec.events))
            for rec in recorders
        )
        return (self.epoch, dumped)

    def _net_stats(self) -> dict[str, Any]:
        stats = self.network.stats
        return {
            "sent": stats.sent,
            "delivered": stats.delivered,
            "dropped_partition": stats.dropped_partition,
            "dropped_loss": stats.dropped_loss,
            "dropped_dead": stats.dropped_dead,
            "by_type": dict(stats.by_type),
            "transport": self.network.transport_stats(),
        }


async def run_supervised(
    site: SiteId,
    address_book: dict[SiteId, tuple[str, int]],
    *,
    app: str = "none",
    scale: float = 1.0,
    loss_prob: float = 0.0,
    seed: int = 0,
    codec: str = "bin",
    trace_level: str = "full",
    quiet: bool = True,
    tracing: bool = False,
    stop_event: asyncio.Event | None = None,
) -> NodeSupervisor:
    """Run one supervised node until ``shutdown`` (or SIGINT/SIGTERM).

    The transport comes up immediately so the parent can connect its
    control client; the *stack* waits for the parent's ``boot`` op, the
    same two-phase start the in-process orchestrator performs, so no
    child heartbeats into the void while its siblings are still
    importing Python.
    """
    supervisor = NodeSupervisor(
        site,
        address_book,
        app=app,
        scale=scale,
        loss_prob=loss_prob,
        seed=seed,
        codec=codec,
        trace_level=trace_level,
        quiet=quiet,
        tracing=tracing,
    )
    stop = stop_event if stop_event is not None else asyncio.Event()
    supervisor.stop_event = stop
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(sig, stop.set)
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            pass
    await supervisor.start_transport()
    try:
        await stop.wait()
    finally:
        await supervisor.shutdown()
    return supervisor
