"""Compact binary wire codec + the wire-format negotiation layer.

The tagged-JSON codec (:mod:`repro.realnet.codec`) is self-describing
and ``jq``-able, but it pays for that on every frame: the value walk
allocates a tagged intermediate structure, ``json.dumps`` re-serializes
the whole frame per destination, and identifiers explode into
``{"__c__": "ProcessId", "f": {...}}`` objects many times their
information content.  Group-communication systems in this paper's
lineage (Isis/Horus, Spread) all moved to compact binary framing for
exactly this reason: codec cost dominates small-multicast throughput.

This module provides the binary alternative, ``bin1``:

* **Values** are encoded with one tag byte per value: varint (LEB128,
  zigzag for sign) integers, raw 8-byte doubles (so ``inf``/``nan``
  travel natively), length-prefixed UTF-8 strings, count-prefixed
  containers, and — the payoff — registered dataclasses as a *class id
  plus positional fields*, no field names on the wire.  Small ints
  (0..127, the bulk of protocol traffic: sites, seqnos, epochs) are a
  single byte.
* **Field tables** are derived from the shared payload registry in
  :mod:`repro.realnet.codec`: classes are numbered in sorted-name
  order, fields in dataclass declaration order.  Positional encoding
  only works when both ends agree on the layout, so a **schema
  fingerprint** (hash over every registered class's name and field
  names) is exchanged in the ``hello`` handshake; peers whose
  fingerprints differ fall back to JSON instead of mis-decoding.
* **Negotiation**: the dialing side lists the formats it speaks in its
  (always-JSON) ``hello``; the server picks the first mutually
  supported one — binary only on a fingerprint match — and answers
  with a ``welcome`` naming the choice.  A JSON-only peer therefore
  interoperates with a binary-capable one automatically, and ``bin1``
  upgrades nothing unless both ends prove they share a schema.

Both formats are wrapped in :class:`WireFormat` objects with a common
surface (``encode_payload`` / ``frame_msg`` / ``parse_msg``) so the
transport treats the codec as per-connection state.  Framing on the
socket is unchanged — 4-byte big-endian length + body, capped at
:data:`~repro.realnet.codec.MAX_FRAME_BYTES` — only the body bytes
differ.  See docs/protocol.md §7.
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import fields
from operator import attrgetter
from typing import Any, Callable

from repro.errors import CodecError
from repro.realnet import codec as _json_codec
from repro.realnet.codec import MAX_FRAME_BYTES, _LEN, _REGISTRY

FORMAT_JSON = "json"
FORMAT_BIN = "bin1"

# -- value tags -----------------------------------------------------------
#
# One byte per value.  Tags >= 0x80 encode the small int (tag & 0x7F)
# inline — sites, incarnations, seqnos and epochs are nearly always in
# that range, so most protocol integers cost a single byte.

_T_NONE = 0x00
_T_TRUE = 0x01
_T_FALSE = 0x02
_T_INT = 0x03
_T_FLOAT = 0x04
_T_STR = 0x05
_T_LIST = 0x06
_T_TUPLE = 0x07
_T_FROZENSET = 0x08
_T_SET = 0x09
_T_DICT = 0x0A
_T_CLASS = 0x0B
_SMALL_INT = 0x80

_F64 = struct.Struct(">d")

#: Frame-kind byte opening every binary body.  Unknown kinds are
#: ignored (future compatibility), mirroring the JSON server loop.
MSG_KIND = 0x01


# -- class table ----------------------------------------------------------
#
# Derived from the shared registry; rebuilt whenever a new payload class
# is registered (the registry only grows).  Encode side: class -> (id,
# attrgetter over the field names).  Decode side: id -> (class, arity).


class _ClassTable:
    __slots__ = ("version", "by_class", "by_id", "fingerprint")

    def __init__(self) -> None:
        names = sorted(_REGISTRY)
        self.version = len(_REGISTRY)
        self.by_class: dict[type, tuple[int, Callable[[Any], Any], int]] = {}
        self.by_id: list[tuple[type, int]] = []
        lines = []
        for class_id, name in enumerate(names):
            cls = _REGISTRY[name]
            field_names = tuple(f.name for f in fields(cls))
            if len(field_names) > 1:
                getter = attrgetter(*field_names)
            elif field_names:
                getter = lambda v, _n=field_names[0]: (getattr(v, _n),)  # noqa: E731
            else:
                getter = lambda v: ()  # noqa: E731
            self.by_class[cls] = (class_id, getter, len(field_names))
            self.by_id.append((cls, len(field_names)))
            lines.append(f"{name}({','.join(field_names)})")
        self.fingerprint = hashlib.sha256("\n".join(lines).encode()).hexdigest()[:16]


_TABLE: _ClassTable | None = None


def class_table() -> _ClassTable:
    """The current registry's field tables (rebuilt after registrations)."""
    global _TABLE
    table = _TABLE
    if table is None or table.version != len(_REGISTRY):
        table = _TABLE = _ClassTable()
    return table


def schema_fingerprint() -> str:
    """Hash of every registered class's name + field layout.

    Exchanged in the ``hello`` handshake: binary encoding is positional,
    so it is only enabled between peers with identical fingerprints.
    """
    return class_table().fingerprint


# -- encoder --------------------------------------------------------------


def _enc_uvarint(out: bytearray, value: int) -> None:
    while value > 0x7F:
        out.append((value & 0x7F) | 0x80)
        value >>= 7
    out.append(value)


def _enc_int(out: bytearray, value: int) -> None:
    if 0 <= value <= 0x7F:
        out.append(_SMALL_INT | value)
        return
    out.append(_T_INT)
    # zigzag, arbitrary precision
    _enc_uvarint(out, (value << 1) if value >= 0 else ((-value << 1) - 1))


def _enc(out: bytearray, value: Any) -> None:
    if value is None:
        out.append(_T_NONE)
        return
    if value is True:
        out.append(_T_TRUE)
        return
    if value is False:
        out.append(_T_FALSE)
        return
    cls = type(value)
    if cls is int:
        _enc_int(out, value)
        return
    if cls is str:
        raw = value.encode("utf-8")
        out.append(_T_STR)
        _enc_uvarint(out, len(raw))
        out += raw
        return
    if cls is float:
        out.append(_T_FLOAT)
        out += _F64.pack(value)
        return
    if cls is tuple:
        out.append(_T_TUPLE)
        _enc_uvarint(out, len(value))
        for item in value:
            _enc(out, item)
        return
    if cls is list:
        out.append(_T_LIST)
        _enc_uvarint(out, len(value))
        for item in value:
            _enc(out, item)
        return
    if cls is frozenset or cls is set:
        out.append(_T_FROZENSET if cls is frozenset else _T_SET)
        _enc_uvarint(out, len(value))
        for item in value:
            _enc(out, item)
        return
    if cls is dict:
        out.append(_T_DICT)
        _enc_uvarint(out, len(value))
        for k, v in value.items():
            _enc(out, k)
            _enc(out, v)
        return
    entry = class_table().by_class.get(cls)
    if entry is not None:
        class_id, getter, arity = entry
        out.append(_T_CLASS)
        _enc_uvarint(out, class_id)
        _enc_uvarint(out, arity)
        if arity == 1:
            _enc(out, getter(value)[0])
        else:
            for item in getter(value):
                _enc(out, item)
        return
    # Uncommon shapes (bool/int/str subclasses, unregistered classes):
    # defer to the JSON codec's vocabulary check so both codecs accept
    # and reject exactly the same values.
    if isinstance(value, bool):
        out.append(_T_TRUE if value else _T_FALSE)
        return
    if isinstance(value, int):
        _enc_int(out, int(value))
        return
    if isinstance(value, str):
        _enc(out, str(value))
        return
    _json_codec.encode_value(value)  # raises CodecError with the canonical message
    raise CodecError(f"cannot binary-encode {cls.__name__} value: {value!r}")


def encode_value_bin(value: Any) -> bytes:
    """Encode one value to ``bin1`` bytes (no framing)."""
    out = bytearray()
    _enc(out, value)
    return bytes(out)


# -- decoder --------------------------------------------------------------


def _uvarint_at(buf: bytes, pos: int) -> tuple[int, int]:
    """Multi-byte tail of a LEB128 varint (callers inline the 1-byte case)."""
    result = 0
    shift = 0
    while True:
        byte = buf[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
        if shift > 128:
            raise CodecError("varint too long")


def _dec_at(buf: bytes, pos: int, by_id: list) -> tuple[Any, int]:
    """Decode one value starting at ``pos``; returns ``(value, next_pos)``.

    Hot path of the receive side: flat positional reads on local
    variables, a single-byte fast path for every varint (counts, class
    ids and small ints are almost always < 0x80), and *implicit* bounds
    checks — an overrun raises ``IndexError``/``struct.error``, which
    the entry points translate to the canonical truncation CodecError.
    """
    tag = buf[pos]
    pos += 1
    if tag >= _SMALL_INT:
        return tag & 0x7F, pos
    if tag == _T_CLASS:
        class_id = buf[pos]
        pos += 1
        if class_id >= 0x80:
            class_id, pos = _uvarint_at(buf, pos - 1)
        if class_id >= len(by_id):
            raise CodecError(f"unknown wire payload class id: {class_id}")
        cls, arity = by_id[class_id]
        n_fields = buf[pos]
        pos += 1
        if n_fields >= 0x80:
            n_fields, pos = _uvarint_at(buf, pos - 1)
        if n_fields != arity:
            raise CodecError(
                f"{cls.__name__}: field-layout mismatch "
                f"(peer sent {n_fields} fields, local class has {arity})"
            )
        args = []
        append = args.append
        for _ in range(arity):
            head = buf[pos]
            if head >= _SMALL_INT:
                append(head & 0x7F)
                pos += 1
            else:
                value, pos = _dec_at(buf, pos, by_id)
                append(value)
        return cls(*args), pos
    if tag == _T_STR:
        n = buf[pos]
        pos += 1
        if n >= 0x80:
            n, pos = _uvarint_at(buf, pos - 1)
        end = pos + n
        if end > len(buf):
            raise CodecError("truncated binary frame")
        return buf[pos:end].decode("utf-8"), end
    if tag == _T_TUPLE or tag == _T_LIST:
        n = buf[pos]
        pos += 1
        if n >= 0x80:
            n, pos = _uvarint_at(buf, pos - 1)
        items = []
        append = items.append
        for _ in range(n):
            # Inline the two scalar shapes that dominate container
            # bodies (seqno vectors, float vectors): one dispatch, no
            # recursive call.
            head = buf[pos]
            if head >= _SMALL_INT:
                append(head & 0x7F)
                pos += 1
            elif head == _T_FLOAT:
                append(_F64.unpack_from(buf, pos + 1)[0])
                pos += 9
            else:
                value, pos = _dec_at(buf, pos, by_id)
                append(value)
        return (tuple(items) if tag == _T_TUPLE else items), pos
    if tag == _T_INT:
        raw, pos = _uvarint_at(buf, pos)
        return ((raw >> 1) if not raw & 1 else -((raw + 1) >> 1)), pos
    if tag == _T_FLOAT:
        value = _F64.unpack_from(buf, pos)[0]
        return value, pos + 8
    if tag == _T_NONE:
        return None, pos
    if tag == _T_TRUE:
        return True, pos
    if tag == _T_FALSE:
        return False, pos
    if tag == _T_FROZENSET or tag == _T_SET:
        n = buf[pos]
        pos += 1
        if n >= 0x80:
            n, pos = _uvarint_at(buf, pos - 1)
        items = []
        append = items.append
        for _ in range(n):
            value, pos = _dec_at(buf, pos, by_id)
            append(value)
        return (frozenset(items) if tag == _T_FROZENSET else set(items)), pos
    if tag == _T_DICT:
        n = buf[pos]
        pos += 1
        if n >= 0x80:
            n, pos = _uvarint_at(buf, pos - 1)
        out: dict = {}
        for _ in range(n):
            key, pos = _dec_at(buf, pos, by_id)
            value, pos = _dec_at(buf, pos, by_id)
            out[key] = value
        return out, pos
    raise CodecError(f"unknown binary value tag: 0x{tag:02x}")


def decode_value_bin(data: bytes) -> Any:
    """Inverse of :func:`encode_value_bin`; rejects trailing bytes."""
    try:
        value, pos = _dec_at(data, 0, class_table().by_id)
    except (IndexError, struct.error):
        raise CodecError("truncated binary frame") from None
    if pos != len(data):
        raise CodecError(f"{len(data) - pos} trailing bytes after binary value")
    return value


# -- wire formats ---------------------------------------------------------


class ParsedMsg:
    """One decoded-enough inbound ``msg`` frame.

    Header fields are decoded eagerly (the receiver filters on them);
    the payload decodes lazily via :meth:`payload` so frames destroyed
    by the firewall or addressed to a dead incarnation never pay for
    payload decoding.
    """

    __slots__ = ("src_site", "src_inc", "dst_site", "dst_inc", "_thunk")

    def __init__(self, src_site, src_inc, dst_site, dst_inc, thunk) -> None:
        self.src_site = src_site
        self.src_inc = src_inc
        self.dst_site = dst_site
        self.dst_inc = dst_inc
        self._thunk = thunk

    def payload(self) -> Any:
        """Decode the payload; raises :class:`CodecError` on garbage."""
        return self._thunk()


class JsonWireFormat:
    """The PR-2 tagged-JSON data path behind the common format surface."""

    name = FORMAT_JSON
    binary = False

    def encode_payload(self, payload: Any) -> Any:
        return _json_codec.encode_value(payload)

    def frame_msg(
        self,
        src: tuple[int, int],
        dst_site: int,
        dst_inc: int | None,
        encoded_payload: Any,
    ) -> bytes:
        return _json_codec.encode_frame(
            {
                "k": "msg",
                "src": [src[0], src[1]],
                "ds": dst_site,
                "di": dst_inc,
                "p": encoded_payload,
            }
        )

    def parse_msg(self, body: bytes) -> ParsedMsg | None:
        frame = _json_codec.decode_frame_body(body)
        if frame.get("k") != "msg":
            return None  # future frame kinds: ignore, don't kill the link
        try:
            src_site, src_inc = frame["src"]
            dst_site = frame["ds"]
            dst_inc = frame["di"]
        except (KeyError, TypeError, ValueError):
            raise CodecError("malformed msg frame header") from None
        return ParsedMsg(
            src_site,
            src_inc,
            dst_site,
            dst_inc,
            lambda: _json_codec.decode_value(frame.get("p")),
        )


class BinWireFormat:
    """``bin1``: positional binary bodies behind the same surface.

    Body layout (after the shared 4-byte length prefix)::

        kind:u8 = 0x01 | src_site:varint | src_inc:varint
                | dst_site:varint | dst_inc:(0x00 | 0x01 varint)
                | payload:value

    Sites and incarnations use the zigzag varint (sites are ints by
    contract but nothing forces them non-negative).
    """

    name = FORMAT_BIN
    binary = True

    def encode_payload(self, payload: Any) -> bytes:
        return encode_value_bin(payload)

    def frame_msg(
        self,
        src: tuple[int, int],
        dst_site: int,
        dst_inc: int | None,
        encoded_payload: bytes,
    ) -> bytes:
        head = bytearray()
        head.append(MSG_KIND)
        _enc_int(head, src[0])
        _enc_int(head, src[1])
        _enc_int(head, dst_site)
        if dst_inc is None:
            head.append(0x00)
        else:
            head.append(0x01)
            _enc_int(head, dst_inc)
        length = len(head) + len(encoded_payload)
        if length > MAX_FRAME_BYTES:
            raise CodecError(f"frame of {length} bytes exceeds cap {MAX_FRAME_BYTES}")
        return _LEN.pack(length) + bytes(head) + encoded_payload

    def parse_msg(self, body: bytes) -> ParsedMsg | None:
        by_id = class_table().by_id
        try:
            if body[0] != MSG_KIND:
                return None  # future frame kinds: ignore, don't kill the link
            src_site, pos = _dec_at(body, 1, by_id)
            src_inc, pos = _dec_at(body, pos, by_id)
            dst_site, pos = _dec_at(body, pos, by_id)
            if body[pos]:
                dst_inc, pos = _dec_at(body, pos + 1, by_id)
            else:
                dst_inc = None
                pos += 1
        except (IndexError, struct.error):
            raise CodecError("truncated binary frame") from None

        def thunk(start: int = pos) -> Any:
            try:
                value, end = _dec_at(body, start, by_id)
            except (IndexError, struct.error):
                raise CodecError("truncated binary frame") from None
            if end != len(body):
                raise CodecError(
                    f"{len(body) - end} trailing bytes after msg payload"
                )
            return value

        return ParsedMsg(src_site, src_inc, dst_site, dst_inc, thunk)


JSON_FORMAT = JsonWireFormat()
BIN_FORMAT = BinWireFormat()

#: Every format this build can speak, by wire name.
WIRE_FORMATS: dict[str, Any] = {FORMAT_JSON: JSON_FORMAT, FORMAT_BIN: BIN_FORMAT}


# -- negotiation ----------------------------------------------------------


def supported_formats(codec: str) -> tuple[str, ...]:
    """Preference list for a node configured with ``codec``.

    ``"bin"``/``"bin1"`` nodes offer (and accept) binary first with a
    JSON fallback; ``"json"`` nodes are JSON-only (the debug/compat
    mode — also what a pre-binary peer effectively offers).
    """
    if codec in (FORMAT_JSON,):
        return (FORMAT_JSON,)
    if codec in ("bin", FORMAT_BIN):
        return (FORMAT_BIN, FORMAT_JSON)
    raise CodecError(f"unknown wire codec {codec!r} (expected 'bin' or 'json')")


def choose_format(
    offered: Any, peer_schema: Any, accept: tuple[str, ...]
) -> str:
    """Server-side pick: first mutually supported format, JSON fallback.

    Binary formats are only chosen when the peer's schema fingerprint
    matches ours — positional field tables must agree exactly.  A hello
    without a ``codecs`` list (a pre-binary peer) yields JSON.
    """
    if not isinstance(offered, (list, tuple)):
        return FORMAT_JSON
    local = schema_fingerprint()
    for name in offered:
        if name not in accept or name not in WIRE_FORMATS:
            continue
        if WIRE_FORMATS[name].binary and peer_schema != local:
            continue
        return name
    return FORMAT_JSON
