"""Compact binary wire codec + the wire-format negotiation layer.

The tagged-JSON codec (:mod:`repro.realnet.codec`) is self-describing
and ``jq``-able, but it pays for that on every frame: the value walk
allocates a tagged intermediate structure, ``json.dumps`` re-serializes
the whole frame per destination, and identifiers explode into
``{"__c__": "ProcessId", "f": {...}}`` objects many times their
information content.  Group-communication systems in this paper's
lineage (Isis/Horus, Spread) all moved to compact binary framing for
exactly this reason: codec cost dominates small-multicast throughput.

This module provides the binary alternative, ``bin1``:

* **Values** are encoded with one tag byte per value: varint (LEB128,
  zigzag for sign) integers, raw 8-byte doubles (so ``inf``/``nan``
  travel natively), length-prefixed UTF-8 strings, count-prefixed
  containers, and — the payoff — registered dataclasses as a *class id
  plus positional fields*, no field names on the wire.  Small ints
  (0..127, the bulk of protocol traffic: sites, seqnos, epochs) are a
  single byte.
* **Field tables** are derived from the shared payload registry in
  :mod:`repro.realnet.codec`: classes are numbered in sorted-name
  order, fields in dataclass declaration order.  Positional encoding
  only works when both ends agree on the layout, so a **schema
  fingerprint** (hash over every registered class's name and field
  names) is exchanged in the ``hello`` handshake; peers whose
  fingerprints differ fall back to JSON instead of mis-decoding.
* **Negotiation**: the dialing side lists the formats it speaks in its
  (always-JSON) ``hello``; the server picks the first mutually
  supported one — binary only on a fingerprint match — and answers
  with a ``welcome`` naming the choice.  A JSON-only peer therefore
  interoperates with a binary-capable one automatically, and ``bin1``
  upgrades nothing unless both ends prove they share a schema.

Both formats are wrapped in :class:`WireFormat` objects with a common
surface (``encode_payload`` / ``frame_msg`` / ``parse_msg``) so the
transport treats the codec as per-connection state.  Framing on the
socket is unchanged — 4-byte big-endian length + body, capped at
:data:`~repro.realnet.codec.MAX_FRAME_BYTES` — only the body bytes
differ.  See docs/protocol.md §7.
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import fields
from operator import attrgetter
from typing import Any, Callable

from repro.errors import CodecError
from repro.realnet import codec as _json_codec
from repro.realnet.codec import MAX_FRAME_BYTES, _LEN, _REGISTRY

FORMAT_JSON = "json"
FORMAT_BIN = "bin1"

# -- value tags -----------------------------------------------------------
#
# One byte per value.  Tags >= 0x80 encode the small int (tag & 0x7F)
# inline — sites, incarnations, seqnos and epochs are nearly always in
# that range, so most protocol integers cost a single byte.

_T_NONE = 0x00
_T_TRUE = 0x01
_T_FALSE = 0x02
_T_INT = 0x03
_T_FLOAT = 0x04
_T_STR = 0x05
_T_LIST = 0x06
_T_TUPLE = 0x07
_T_FROZENSET = 0x08
_T_SET = 0x09
_T_DICT = 0x0A
_T_CLASS = 0x0B
_SMALL_INT = 0x80

_F64 = struct.Struct(">d")

#: Frame-kind byte opening every binary body.  Unknown kinds are
#: ignored (future compatibility), mirroring the JSON server loop.
MSG_KIND = 0x01


# -- class table ----------------------------------------------------------
#
# Derived from the shared registry; rebuilt whenever a new payload class
# is registered (the registry only grows).  Encode side: class -> (id,
# attrgetter over the field names).  Decode side: id -> (class, arity,
# min_arity).
#
# Trailing fields whose dataclass default is ``None`` are *elidable*:
# when their values are all None the encoder writes a reduced field
# count and the decoder lets the constructor defaults fill them in.
# This is what makes optional context fields (tracing) cost zero wire
# bytes while unused, and lets a peer one optional-field generation
# behind still decode.


class _ClassTable:
    __slots__ = ("version", "by_class", "by_id", "fingerprint")

    def __init__(self) -> None:
        names = sorted(_REGISTRY)
        self.version = len(_REGISTRY)
        self.by_class: dict[type, tuple[int, Callable[[Any], Any], int, int]] = {}
        self.by_id: list[tuple[type, int, int]] = []
        lines = []
        for class_id, name in enumerate(names):
            cls = _REGISTRY[name]
            class_fields = fields(cls)
            field_names = tuple(f.name for f in class_fields)
            if len(field_names) > 1:
                getter = attrgetter(*field_names)
            elif field_names:
                getter = lambda v, _n=field_names[0]: (getattr(v, _n),)  # noqa: E731
            else:
                getter = lambda v: ()  # noqa: E731
            elidable = 0
            for f in reversed(class_fields):
                if f.default is not None:  # MISSING or a non-None default
                    break
                elidable += 1
            arity = len(field_names)
            self.by_class[cls] = (class_id, getter, arity, elidable)
            self.by_id.append((cls, arity, arity - elidable))
            lines.append(f"{name}({','.join(field_names)})")
        self.fingerprint = hashlib.sha256("\n".join(lines).encode()).hexdigest()[:16]


_TABLE: _ClassTable | None = None


def class_table() -> _ClassTable:
    """The current registry's field tables (rebuilt after registrations)."""
    global _TABLE
    table = _TABLE
    if table is None or table.version != len(_REGISTRY):
        table = _TABLE = _ClassTable()
    return table


def schema_fingerprint() -> str:
    """Hash of every registered class's name + field layout.

    Exchanged in the ``hello`` handshake: binary encoding is positional,
    so it is only enabled between peers with identical fingerprints.
    """
    return class_table().fingerprint


# -- encoder --------------------------------------------------------------
#
# One precomputed **packer table** maps ``type(value)`` straight to a
# packing function: builtins get module-level packers, every registered
# dataclass gets a closure whose tag + class-id + arity header bytes
# were rendered once at table-build time.  The hot path is therefore a
# single dict lookup per value — no isinstance chain, no per-value
# varint rendering for the class header.  Values whose exact type is
# not in the table (bool/int/str subclasses, unregistered classes) take
# the slow fallback, which defers to the JSON codec's vocabulary check
# so both codecs accept and reject exactly the same values.


def _enc_uvarint(out: bytearray, value: int) -> None:
    while value > 0x7F:
        out.append((value & 0x7F) | 0x80)
        value >>= 7
    out.append(value)


def _enc_int(out: bytearray, value: int) -> None:
    if 0 <= value <= 0x7F:
        out.append(_SMALL_INT | value)
        return
    out.append(_T_INT)
    # zigzag, arbitrary precision
    _enc_uvarint(out, (value << 1) if value >= 0 else ((-value << 1) - 1))


def _enc_none(out: bytearray, value: Any) -> None:
    out.append(_T_NONE)


def _enc_bool(out: bytearray, value: Any) -> None:
    out.append(_T_TRUE if value else _T_FALSE)


def _enc_str(out: bytearray, value: str) -> None:
    raw = value.encode("utf-8")
    out.append(_T_STR)
    _enc_uvarint(out, len(raw))
    out += raw


def _enc_float(out: bytearray, value: float) -> None:
    out.append(_T_FLOAT)
    out += _F64.pack(value)


def _make_container_packer(tag: int) -> Callable[[bytearray, Any], None]:
    def pack(out: bytearray, value: Any) -> None:
        out.append(tag)
        _enc_uvarint(out, len(value))
        for item in value:
            _enc(out, item)

    return pack


def _enc_dict(out: bytearray, value: dict) -> None:
    out.append(_T_DICT)
    _enc_uvarint(out, len(value))
    for k, v in value.items():
        _enc(out, k)
        _enc(out, v)


def _make_class_packer(
    headers: tuple[bytes, ...], getter: Callable[[Any], Any], arity: int
) -> Callable[[bytearray, Any], None]:
    """Packer for one registered class: precomputed tag+id+count bytes.

    ``headers[k]`` is the header announcing ``arity - k`` fields; the
    packer counts the trailing run of None values among the class's
    elidable fields and picks the matching header, so unused optional
    fields cost zero bytes.  Classes without elidable fields keep the
    single-header fast paths.
    """
    elidable = len(headers) - 1
    header = headers[0]
    if elidable == 0:
        if arity == 1:

            def pack1(out: bytearray, value: Any) -> None:
                out += header
                _enc(out, getter(value)[0])

            return pack1

        def pack(out: bytearray, value: Any) -> None:
            out += header
            for item in getter(value):
                _enc(out, item)

        return pack

    if arity == 1:  # one field, and it is optional

        def pack1_opt(out: bytearray, value: Any) -> None:
            item = getter(value)[0]
            if item is None:
                out += headers[1]
            else:
                out += header
                _enc(out, item)

        return pack1_opt

    def pack_opt(out: bytearray, value: Any) -> None:
        items = getter(value)
        skip = 0
        while skip < elidable and items[arity - 1 - skip] is None:
            skip += 1
        out += headers[skip]
        for index in range(arity - skip):
            _enc(out, items[index])

    return pack_opt


def _build_packers(table: _ClassTable) -> dict[type, Callable[[bytearray, Any], None]]:
    packers: dict[type, Callable[[bytearray, Any], None]] = {
        type(None): _enc_none,
        bool: _enc_bool,
        int: _enc_int,
        str: _enc_str,
        float: _enc_float,
        tuple: _make_container_packer(_T_TUPLE),
        list: _make_container_packer(_T_LIST),
        frozenset: _make_container_packer(_T_FROZENSET),
        set: _make_container_packer(_T_SET),
        dict: _enc_dict,
    }
    for cls, (class_id, getter, arity, elidable) in table.by_class.items():
        headers = []
        for skip in range(elidable + 1):
            header = bytearray([_T_CLASS])
            _enc_uvarint(header, class_id)
            _enc_uvarint(header, arity - skip)
            headers.append(bytes(header))
        packers[cls] = _make_class_packer(tuple(headers), getter, arity)
    return packers


_PACKERS: dict[type, Callable[[bytearray, Any], None]] = {}
_PACKERS_VERSION = -1


def packer_table() -> dict[type, Callable[[bytearray, Any], None]]:
    """The current registry's type -> packer dispatch table.

    Entry points call this once per encode; :func:`_enc` then reads the
    module-level table directly (registrations only happen at import
    time, never mid-encode).
    """
    global _PACKERS, _PACKERS_VERSION
    if _PACKERS_VERSION != len(_REGISTRY):
        _PACKERS = _build_packers(class_table())
        _PACKERS_VERSION = len(_REGISTRY)
    return _PACKERS


def _enc_fallback(out: bytearray, value: Any) -> None:
    """Uncommon shapes: subclasses of the scalar builtins, or garbage."""
    if isinstance(value, bool):
        out.append(_T_TRUE if value else _T_FALSE)
        return
    if isinstance(value, int):
        _enc_int(out, int(value))
        return
    if isinstance(value, str):
        _enc_str(out, str(value))
        return
    _json_codec.encode_value(value)  # raises CodecError with the canonical message
    raise CodecError(f"cannot binary-encode {type(value).__name__} value: {value!r}")


def _enc(out: bytearray, value: Any) -> None:
    packer = _PACKERS.get(type(value))
    if packer is not None:
        packer(out, value)
    else:
        _enc_fallback(out, value)


def encode_value_bin(value: Any) -> bytes:
    """Encode one value to ``bin1`` bytes (no framing)."""
    packer_table()
    out = bytearray()
    _enc(out, value)
    return bytes(out)


# -- decoder --------------------------------------------------------------


def _uvarint_at(buf: bytes, pos: int) -> tuple[int, int]:
    """Multi-byte tail of a LEB128 varint (callers inline the 1-byte case)."""
    result = 0
    shift = 0
    while True:
        byte = buf[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
        if shift > 128:
            raise CodecError("varint too long")


def _dec_at(buf: bytes, pos: int, by_id: list) -> tuple[Any, int]:
    """Decode one value starting at ``pos``; returns ``(value, next_pos)``.

    Hot path of the receive side: flat positional reads on local
    variables, a single-byte fast path for every varint (counts, class
    ids and small ints are almost always < 0x80), and *implicit* bounds
    checks — an overrun raises ``IndexError``/``struct.error``, which
    the entry points translate to the canonical truncation CodecError.
    """
    tag = buf[pos]
    pos += 1
    if tag >= _SMALL_INT:
        return tag & 0x7F, pos
    if tag == _T_CLASS:
        class_id = buf[pos]
        pos += 1
        if class_id >= 0x80:
            class_id, pos = _uvarint_at(buf, pos - 1)
        if class_id >= len(by_id):
            raise CodecError(f"unknown wire payload class id: {class_id}")
        cls, arity, min_arity = by_id[class_id]
        n_fields = buf[pos]
        pos += 1
        if n_fields >= 0x80:
            n_fields, pos = _uvarint_at(buf, pos - 1)
        if not min_arity <= n_fields <= arity:
            raise CodecError(
                f"{cls.__name__}: field-layout mismatch "
                f"(peer sent {n_fields} fields, local class has {arity})"
            )
        args = []
        append = args.append
        for _ in range(n_fields):
            head = buf[pos]
            if head >= _SMALL_INT:
                append(head & 0x7F)
                pos += 1
            else:
                value, pos = _dec_at(buf, pos, by_id)
                append(value)
        return cls(*args), pos
    if tag == _T_STR:
        n = buf[pos]
        pos += 1
        if n >= 0x80:
            n, pos = _uvarint_at(buf, pos - 1)
        end = pos + n
        if end > len(buf):
            raise CodecError("truncated binary frame")
        return buf[pos:end].decode("utf-8"), end
    if tag == _T_TUPLE or tag == _T_LIST:
        n = buf[pos]
        pos += 1
        if n >= 0x80:
            n, pos = _uvarint_at(buf, pos - 1)
        items = []
        append = items.append
        for _ in range(n):
            # Inline the two scalar shapes that dominate container
            # bodies (seqno vectors, float vectors): one dispatch, no
            # recursive call.
            head = buf[pos]
            if head >= _SMALL_INT:
                append(head & 0x7F)
                pos += 1
            elif head == _T_FLOAT:
                append(_F64.unpack_from(buf, pos + 1)[0])
                pos += 9
            else:
                value, pos = _dec_at(buf, pos, by_id)
                append(value)
        return (tuple(items) if tag == _T_TUPLE else items), pos
    if tag == _T_INT:
        raw, pos = _uvarint_at(buf, pos)
        return ((raw >> 1) if not raw & 1 else -((raw + 1) >> 1)), pos
    if tag == _T_FLOAT:
        value = _F64.unpack_from(buf, pos)[0]
        return value, pos + 8
    if tag == _T_NONE:
        return None, pos
    if tag == _T_TRUE:
        return True, pos
    if tag == _T_FALSE:
        return False, pos
    if tag == _T_FROZENSET or tag == _T_SET:
        n = buf[pos]
        pos += 1
        if n >= 0x80:
            n, pos = _uvarint_at(buf, pos - 1)
        items = []
        append = items.append
        for _ in range(n):
            value, pos = _dec_at(buf, pos, by_id)
            append(value)
        return (frozenset(items) if tag == _T_FROZENSET else set(items)), pos
    if tag == _T_DICT:
        n = buf[pos]
        pos += 1
        if n >= 0x80:
            n, pos = _uvarint_at(buf, pos - 1)
        out: dict = {}
        for _ in range(n):
            key, pos = _dec_at(buf, pos, by_id)
            value, pos = _dec_at(buf, pos, by_id)
            out[key] = value
        return out, pos
    raise CodecError(f"unknown binary value tag: 0x{tag:02x}")


def decode_value_bin(data: bytes) -> Any:
    """Inverse of :func:`encode_value_bin`; rejects trailing bytes."""
    try:
        value, pos = _dec_at(data, 0, class_table().by_id)
    except (IndexError, struct.error):
        raise CodecError("truncated binary frame") from None
    if pos != len(data):
        raise CodecError(f"{len(data) - pos} trailing bytes after binary value")
    return value


# -- wire formats ---------------------------------------------------------


class ParsedMsg:
    """One decoded-enough inbound ``msg`` frame.

    Header fields are decoded eagerly (the receiver filters on them);
    the payload decodes lazily via :meth:`payload` so frames destroyed
    by the firewall or addressed to a dead incarnation never pay for
    payload decoding.
    """

    __slots__ = ("src_site", "src_inc", "dst_site", "dst_inc", "_thunk")

    def __init__(self, src_site, src_inc, dst_site, dst_inc, thunk) -> None:
        self.src_site = src_site
        self.src_inc = src_inc
        self.dst_site = dst_site
        self.dst_inc = dst_inc
        self._thunk = thunk

    def payload(self) -> Any:
        """Decode the payload; raises :class:`CodecError` on garbage."""
        return self._thunk()


class JsonWireFormat:
    """The PR-2 tagged-JSON data path behind the common format surface."""

    name = FORMAT_JSON
    binary = False

    def encode_payload(self, payload: Any) -> Any:
        return _json_codec.encode_value(payload)

    def frame_msg(
        self,
        src: tuple[int, int],
        dst_site: int,
        dst_inc: int | None,
        encoded_payload: Any,
    ) -> bytes:
        return _json_codec.encode_frame(
            {
                "k": "msg",
                "src": [src[0], src[1]],
                "ds": dst_site,
                "di": dst_inc,
                "p": encoded_payload,
            }
        )

    def frame_msg_into(
        self,
        out: bytearray,
        src: tuple[int, int],
        dst_site: int,
        dst_inc: int | None,
        encoded_payload: Any,
    ) -> None:
        """Append one framed msg to ``out`` (JSON has no zero-copy path)."""
        out += self.frame_msg(src, dst_site, dst_inc, encoded_payload)

    def parse_msg_at(
        self, buf: bytes | bytearray, start: int, end: int
    ) -> ParsedMsg | None:
        """Parse the frame body occupying ``buf[start:end]``.

        JSON bodies need a contiguous ``bytes`` for the decoder anyway,
        so this copies the slice; the zero-copy win is binary-only.
        """
        return self.parse_msg(bytes(buf[start:end]))

    def parse_msg(self, body: bytes) -> ParsedMsg | None:
        frame = _json_codec.decode_frame_body(body)
        if frame.get("k") != "msg":
            return None  # future frame kinds: ignore, don't kill the link
        try:
            src_site, src_inc = frame["src"]
            dst_site = frame["ds"]
            dst_inc = frame["di"]
        except (KeyError, TypeError, ValueError):
            raise CodecError("malformed msg frame header") from None
        return ParsedMsg(
            src_site,
            src_inc,
            dst_site,
            dst_inc,
            lambda: _json_codec.decode_value(frame.get("p")),
        )


class BinWireFormat:
    """``bin1``: positional binary bodies behind the same surface.

    Body layout (after the shared 4-byte length prefix)::

        kind:u8 = 0x01 | src_site:varint | src_inc:varint
                | dst_site:varint | dst_inc:(0x00 | 0x01 varint)
                | payload:value

    Sites and incarnations use the zigzag varint (sites are ints by
    contract but nothing forces them non-negative).
    """

    name = FORMAT_BIN
    binary = True

    def __init__(self) -> None:
        # (src, dst_site, dst_inc) -> rendered header bytes.  A node
        # talks to a small, stable set of (peer, incarnation) pairs, so
        # the header — kind byte + four varints — is rendered once per
        # pair, not once per frame.  Bounded defensively: incarnation
        # churn grows the key space, never the steady-state set.
        self._head_cache: dict[tuple, bytes] = {}

    def encode_payload(self, payload: Any) -> bytes:
        return encode_value_bin(payload)

    def _header(
        self, src: tuple[int, int], dst_site: int, dst_inc: int | None
    ) -> bytes:
        key = (src, dst_site, dst_inc)
        head = self._head_cache.get(key)
        if head is None:
            out = bytearray((MSG_KIND,))
            _enc_int(out, src[0])
            _enc_int(out, src[1])
            _enc_int(out, dst_site)
            if dst_inc is None:
                out.append(0x00)
            else:
                out.append(0x01)
                _enc_int(out, dst_inc)
            if len(self._head_cache) >= 4096:
                self._head_cache.clear()
            head = self._head_cache[key] = bytes(out)
        return head

    def frame_msg(
        self,
        src: tuple[int, int],
        dst_site: int,
        dst_inc: int | None,
        encoded_payload: bytes,
    ) -> bytes:
        out = bytearray()
        self.frame_msg_into(out, src, dst_site, dst_inc, encoded_payload)
        return bytes(out)

    def frame_msg_into(
        self,
        out: bytearray,
        src: tuple[int, int],
        dst_site: int,
        dst_inc: int | None,
        encoded_payload: bytes,
    ) -> None:
        """Append one framed msg directly to the batch buffer ``out``.

        Writes a 4-byte length placeholder, appends the (cached) header
        and the payload, then patches the length in place with
        ``pack_into`` — no per-frame ``bytes`` object is ever built.  On
        a cap violation the partial frame is rolled back so ``out``
        still holds only whole frames.
        """
        base = len(out)
        out += b"\x00\x00\x00\x00"
        out += self._header(src, dst_site, dst_inc)
        out += encoded_payload
        length = len(out) - base - 4
        if length > MAX_FRAME_BYTES:
            del out[base:]
            raise CodecError(f"frame of {length} bytes exceeds cap {MAX_FRAME_BYTES}")
        _LEN.pack_into(out, base, length)

    def parse_msg(self, body: bytes) -> ParsedMsg | None:
        return self.parse_msg_at(body, 0, len(body))

    def parse_msg_at(
        self, buf: bytes | bytearray, start: int, end: int
    ) -> ParsedMsg | None:
        """Parse the frame body occupying ``buf[start:end]`` in place.

        The receive path hands frame extents straight out of the read
        buffer — no per-frame body copy.  All decoding is offset-walking
        on ``buf`` itself; only leaf values (strings) copy out.  The
        payload thunk closes over ``(buf, pos, end)``, so it must be
        consumed before the caller compacts or reuses the buffer — the
        receive loop dispatches synchronously, which guarantees that.
        """
        if start >= end:
            raise CodecError("truncated binary frame")
        by_id = class_table().by_id
        try:
            if buf[start] != MSG_KIND:
                return None  # future frame kinds: ignore, don't kill the link
            src_site, pos = _dec_at(buf, start + 1, by_id)
            src_inc, pos = _dec_at(buf, pos, by_id)
            dst_site, pos = _dec_at(buf, pos, by_id)
            if buf[pos]:
                dst_inc, pos = _dec_at(buf, pos + 1, by_id)
            else:
                dst_inc = None
                pos += 1
        except (IndexError, struct.error):
            raise CodecError("truncated binary frame") from None
        if pos > end:
            raise CodecError("truncated binary frame")

        def thunk(start: int = pos) -> Any:
            try:
                value, stop = _dec_at(buf, start, by_id)
            except (IndexError, struct.error):
                raise CodecError("truncated binary frame") from None
            if stop > end:
                # Ran into bytes beyond this frame (shared buffer): the
                # frame itself was short.
                raise CodecError("truncated binary frame")
            if stop != end:
                raise CodecError(
                    f"{end - stop} trailing bytes after msg payload"
                )
            return value

        return ParsedMsg(src_site, src_inc, dst_site, dst_inc, thunk)


JSON_FORMAT = JsonWireFormat()
BIN_FORMAT = BinWireFormat()

#: Every format this build can speak, by wire name.
WIRE_FORMATS: dict[str, Any] = {FORMAT_JSON: JSON_FORMAT, FORMAT_BIN: BIN_FORMAT}


# -- negotiation ----------------------------------------------------------


def supported_formats(codec: str) -> tuple[str, ...]:
    """Preference list for a node configured with ``codec``.

    ``"bin"``/``"bin1"`` nodes offer (and accept) binary first with a
    JSON fallback; ``"json"`` nodes are JSON-only (the debug/compat
    mode — also what a pre-binary peer effectively offers).
    """
    if codec in (FORMAT_JSON,):
        return (FORMAT_JSON,)
    if codec in ("bin", FORMAT_BIN):
        return (FORMAT_BIN, FORMAT_JSON)
    raise CodecError(f"unknown wire codec {codec!r} (expected 'bin' or 'json')")


def choose_format(
    offered: Any, peer_schema: Any, accept: tuple[str, ...]
) -> str:
    """Server-side pick: first mutually supported format, JSON fallback.

    Binary formats are only chosen when the peer's schema fingerprint
    matches ours — positional field tables must agree exactly.  A hello
    without a ``codecs`` list (a pre-binary peer) yields JSON.
    """
    if not isinstance(offered, (list, tuple)):
        return FORMAT_JSON
    local = schema_fingerprint()
    for name in offered:
        if name not in accept or name not in WIRE_FORMATS:
            continue
        if WIRE_FORMATS[name].binary and peer_schema != local:
            continue
        return name
    return FORMAT_JSON
