"""Process-spawning cluster driver: one OS process (and core) per site.

:class:`ProcRealClusterDriver` is the multi-core sibling of
:class:`~repro.realnet.driver.RealClusterDriver`: it satisfies the same
blocking :class:`~repro.ports.ClusterPort`, but instead of co-locating
every node on one event loop it spawns one ``repro realnet node
--supervised`` child per site, so an n-node cluster escapes the GIL and
uses n cores.  All steering goes over each child's normal listening
socket via the control protocol in :mod:`repro.realnet.procnode`:

* **lifecycle** — ``boot`` / ``crash`` / ``recover`` ops; ``join``
  spawns a fresh process and teaches the others its address;
* **connectivity** — the driver's :class:`_MirrorTopology` broadcasts
  every mutation (partition / heal / isolate / one-way cuts) to all
  children, so an armed :class:`~repro.net.faults.FaultSchedule`
  written in scenario units applies across process boundaries
  unchanged;
* **observability** — ``gather_trace`` pulls every child's recorders as
  JSON-lines and shifts event times by the child↔parent wall-epoch
  difference onto one comparable time base before merging;
  ``metrics_snapshot`` polls each child's obs frame kind (the same
  service ``repro obs watch`` uses) and merges the per-process
  registries.

A background poller refreshes a per-site status cache (~20 Hz), which
backs the synchronous introspection surface (``live_stacks`` /
``is_settled`` / ``views``); waiting methods refresh it explicitly, so
a ``settle()`` that returns True reflects fresh child state.

Applications are named, not passed: a closure cannot cross an OS
process boundary, so ``config.app`` selects from
:mod:`repro.apps.factories` and ``app_at`` raises — workloads on this
runtime drive the cluster through :class:`~repro.workload.clients.
MulticastClient` (which only touches stacks), exactly what the checked
figure-2 workload needs.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import dataclasses
import os
import shutil
import socket
import subprocess
import sys
import tempfile
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Sequence

from repro.errors import SimulationError
from repro.net.topology import Topology
from repro.obs.registry import MetricsRegistry
from repro.obs.snapshot import MetricsSnapshot, merge_snapshots
from repro.obs.watch import (
    _read_raw_frame,
    obs_request_body,
    parse_obs_reply,
)
from repro.realnet.codec import _LEN, decode_frame_body, encode_frame
from repro.realnet.codec_bin import (
    FORMAT_JSON,
    WIRE_FORMATS,
    schema_fingerprint,
    supported_formats,
)
from repro.realnet.procnode import ctl_request_frame, parse_ctl_reply
from repro.realnet.wallclock import WallClockScheduler, new_event_loop
from repro.trace.export import event_from_json
from repro.trace.recorder import TraceRecorder
from repro.types import ProcessId, SiteId

#: Hard timeout for individual control round trips (seconds).
ACTION_TIMEOUT = 30.0

#: Status-cache refresh period (seconds of wall time).
POLL_INTERVAL = 0.05


@dataclass
class ProcClusterConfig:
    """Knobs for a process-per-site cluster.

    Mirrors :class:`~repro.realnet.cluster.RealClusterConfig` where the
    concepts carry over; ``app`` names a factory from
    :mod:`repro.apps.factories` (closures cannot cross the process
    boundary).  ``startup_timeout`` bounds the whole spawn + connect +
    boot sequence — Python process startup dominates it.
    """

    seed: int = 0
    loss_prob: float = 0.0
    scale: float = 1.0
    host: str = "127.0.0.1"
    codec: str = "bin"
    app: str = "none"
    trace_level: str = "full"
    quiet: bool = True
    startup_timeout: float = 60.0
    tracing: bool = False


def _free_port(host: str) -> int:
    """Ask the kernel for a currently-free port (best effort: the child
    re-binds it a moment later; localhost collisions are rare and
    surface as a failed startup, never silent corruption)."""
    with socket.socket() as sock:
        sock.bind((host, 0))
        return sock.getsockname()[1]


class _CtlClient:
    """One control connection to a supervised child, on the driver loop.

    Requests are serialized by a lock (the reply stream is FIFO per
    connection); a dropped connection is re-dialed once per request.
    """

    def __init__(self, name: str, host: str, port: int, codec: str) -> None:
        self.name = name
        self._host = host
        self._port = port
        self._codec = codec
        self._lock = asyncio.Lock()
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self.fmt: Any = None

    async def connect(self) -> None:
        reader, writer = await asyncio.open_connection(self._host, self._port)
        writer.write(
            encode_frame(
                {
                    "k": "hello",
                    "src": [-1, 0],  # not a site: a controller
                    "codecs": list(supported_formats(self._codec)),
                    "schema": schema_fingerprint(),
                }
            )
        )
        await writer.drain()
        welcome = decode_frame_body(await _read_raw_frame(reader))
        name = welcome.get("codec") if welcome.get("k") == "welcome" else None
        self.fmt = WIRE_FORMATS[name if name in WIRE_FORMATS else FORMAT_JSON]
        self._reader, self._writer = reader, writer

    async def aclose(self) -> None:
        writer, self._writer = self._writer, None
        self._reader = None
        if writer is not None:
            writer.close()
            try:
                await writer.wait_closed()
            except OSError:
                pass

    async def request(
        self, op: str, arg: Any = None, timeout: float = ACTION_TIMEOUT
    ) -> Any:
        async with self._lock:
            return await asyncio.wait_for(self._request(op, arg), timeout)

    async def _request(self, op: str, arg: Any) -> Any:
        for attempt in (0, 1):
            try:
                if self._reader is None:
                    await self.connect()
                assert self._writer is not None and self._reader is not None
                self._writer.write(ctl_request_frame(self.fmt, op, arg))
                await self._writer.drain()
                while True:
                    body = await _read_raw_frame(self._reader)
                    parsed = parse_ctl_reply(self.fmt, body)
                    if parsed is None:
                        continue  # interleaved non-ctl reply kinds
                    ok, result = parsed
                    if not ok:
                        raise SimulationError(
                            f"control op {op!r} failed on {self.name}: {result}"
                        )
                    return result
            except (OSError, ConnectionError, asyncio.IncompleteReadError):
                await self.aclose()
                if attempt:
                    raise

    async def fetch_metrics(self) -> MetricsSnapshot | None:
        """One obs snapshot poll over this connection (PR-5 frame kind)."""
        async with self._lock:
            if self._reader is None:
                await self.connect()
            assert self._writer is not None and self._reader is not None
            body = obs_request_body(self.fmt)
            self._writer.write(_LEN.pack(len(body)) + body)
            await self._writer.drain()
            while True:
                reply = parse_obs_reply(self.fmt, await _read_raw_frame(self._reader))
                if reply is not None:
                    return reply


class _MirrorTopology(Topology):
    """Parent-side topology whose mutations broadcast to every child.

    Fault schedules mutate ``target.topology`` directly (one-way cuts)
    or via the driver's partition/heal/isolate; either way the change
    must reach the children, so every mutator notifies the driver after
    applying locally.
    """

    def __init__(self, sites: Any) -> None:
        super().__init__(sites)
        self._on_change: Callable[[], None] | None = None

    def _notify(self) -> None:
        if self._on_change is not None:
            self._on_change()

    def partition(self, groups: Any) -> None:
        super().partition(groups)
        self._notify()

    def heal(self) -> None:
        super().heal()
        self._notify()

    def isolate(self, site: SiteId) -> None:
        super().isolate(site)
        self._notify()

    def add_site(self, site: SiteId) -> None:
        super().add_site(site)
        self._notify()

    def cut_oneway(self, src: SiteId, dst: SiteId) -> None:
        super().cut_oneway(src, dst)
        self._notify()

    def heal_oneway(self, src: SiteId, dst: SiteId) -> None:
        super().heal_oneway(src, dst)
        self._notify()


class _ProcStackProxy:
    """The slice of a remote stack the workload surface touches.

    Reads come from the driver's status cache; ``multicast`` ships the
    payload to the child as a control op (fire-and-forget from the loop
    thread — workload ticks must not block the loop on a round trip).
    """

    def __init__(self, driver: "ProcRealClusterDriver", site: SiteId) -> None:
        self._driver = driver
        self.site = site

    @property
    def _status(self) -> dict[str, Any]:
        return self._driver._status.get(self.site) or {}

    @property
    def pid(self) -> ProcessId:
        status = self._status
        return ProcessId(self.site, status.get("inc", 0))

    @property
    def alive(self) -> bool:
        return bool(self._status.get("alive"))

    @property
    def is_flushing(self) -> bool:
        return bool(self._status.get("flushing"))

    @property
    def view(self) -> Any:
        return self._status.get("view")

    def current_view_id(self) -> Any:
        return self._status.get("view")

    def multicast(self, payload: Any) -> None:
        self._driver._fire_ctl(self.site, "mcast", payload)


class ProcRealClusterDriver:
    """Blocking :class:`~repro.ports.ClusterPort` over child processes."""

    #: ClusterPort runtime tag (client/workload code branches on it).
    runtime = "realnet-proc"

    def __init__(
        self, n_sites: int, config: ProcClusterConfig | None = None
    ) -> None:
        if n_sites < 1:
            raise SimulationError("cluster needs at least one site")
        self.config = config or ProcClusterConfig()
        self.n_sites = n_sites
        self.topology = _MirrorTopology(range(n_sites))
        self.address_book: dict[SiteId, tuple[str, int]] = {}
        self._procs: dict[SiteId, subprocess.Popen] = {}
        self._ctl: dict[SiteId, _CtlClient] = {}
        self._status: dict[SiteId, dict[str, Any]] = {}
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self.scheduler: WallClockScheduler | None = None
        self._poller: asyncio.Task | None = None
        self._bg: set[asyncio.Task] = set()
        self._log_dir: str | None = None
        self._closed = False
        self.metrics = MetricsRegistry(
            clock=lambda: self.now, runtime="realnet-proc"
        )

    # -- lifecycle -----------------------------------------------------

    def start(self) -> "ProcRealClusterDriver":
        if self._loop is not None:
            raise SimulationError("driver already started")
        self._loop = new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, name="realnet-proc-driver", daemon=True
        )
        self._thread.start()
        self._log_dir = tempfile.mkdtemp(prefix="repro-proc-")
        try:
            self._submit(self._start_async(), timeout=self.config.startup_timeout)
        except BaseException:
            self.close()
            raise
        self.topology._on_change = self._topology_changed
        return self

    async def _start_async(self) -> None:
        self.scheduler = WallClockScheduler()
        cfg = self.config
        for site in sorted(self.topology.sites):
            self.address_book[site] = (cfg.host, _free_port(cfg.host))
        for site in sorted(self.topology.sites):
            self._spawn_proc(site)
        await asyncio.gather(
            *(self._connect_ctl(site) for site in sorted(self.topology.sites))
        )
        await asyncio.gather(
            *(self._ctl[site].request("boot") for site in sorted(self.topology.sites))
        )
        await self._refresh_statuses()
        self._poller = asyncio.get_running_loop().create_task(self._poll_loop())

    def _spawn_proc(self, site: SiteId) -> None:
        cfg = self.config
        book = ",".join(
            f"{s}:{host}:{port}"
            for s, (host, port) in sorted(self.address_book.items())
        )
        cmd = [
            sys.executable, "-m", "repro", "realnet", "node",
            "--supervised",
            "--site", str(site),
            "--book", book,
            "--app", cfg.app,
            "--seed", str(cfg.seed),
            "--scale", str(cfg.scale),
            "--codec", cfg.codec,
            "--loss", str(cfg.loss_prob),
            "--trace-level", cfg.trace_level,
        ]
        if cfg.tracing:
            cmd.append("--tracing")
        env = dict(os.environ)
        src_dir = str(Path(__file__).resolve().parent.parent.parent)
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            src_dir if not existing else src_dir + os.pathsep + existing
        )
        assert self._log_dir is not None
        log_path = Path(self._log_dir) / f"site{site}.log"
        log = open(log_path, "w", encoding="utf-8")
        try:
            proc = subprocess.Popen(
                cmd, stdout=log, stderr=subprocess.STDOUT, env=env
            )
        finally:
            log.close()
        self._procs[site] = proc

    async def _connect_ctl(self, site: SiteId) -> _CtlClient:
        host, port = self.address_book[site]
        client = _CtlClient(f"site{site}", host, port, self.config.codec)
        deadline = asyncio.get_running_loop().time() + self.config.startup_timeout
        while True:
            proc = self._procs.get(site)
            if proc is not None and proc.poll() is not None:
                raise SimulationError(
                    f"site {site} process exited with {proc.returncode} during "
                    f"startup (log: {self._log_dir}/site{site}.log)"
                )
            try:
                await client.connect()
                await client.request("ping", timeout=5.0)
                break
            except (OSError, ConnectionError, asyncio.IncompleteReadError):
                await client.aclose()
                if asyncio.get_running_loop().time() >= deadline:
                    raise SimulationError(
                        f"site {site} did not come up within "
                        f"{self.config.startup_timeout}s"
                    ) from None
                await asyncio.sleep(0.1)
        self._ctl[site] = client
        return client

    def close(self) -> None:
        if self._closed or self._loop is None:
            self._closed = True
            return
        self._closed = True
        try:
            self._submit(self._close_async(), timeout=ACTION_TIMEOUT)
        except Exception:
            pass
        finally:
            for proc in self._procs.values():
                if proc.poll() is None:
                    proc.terminate()
            deadline = time.time() + 5.0
            for proc in self._procs.values():
                remaining = deadline - time.time()
                try:
                    proc.wait(timeout=max(0.1, remaining))
                except subprocess.TimeoutExpired:
                    proc.kill()
                    proc.wait(timeout=5.0)
            self._loop.call_soon_threadsafe(self._loop.stop)
            if self._thread is not None:
                self._thread.join(timeout=ACTION_TIMEOUT)
            self._loop.close()
            if self._log_dir is not None:
                shutil.rmtree(self._log_dir, ignore_errors=True)

    async def _close_async(self) -> None:
        if self._poller is not None:
            self._poller.cancel()
        for task in list(self._bg):
            task.cancel()
        for site, client in list(self._ctl.items()):
            try:
                await client.request("shutdown", timeout=5.0)
            except Exception:
                pass
            await client.aclose()

    def __enter__(self) -> "ProcRealClusterDriver":
        return self.start() if self._loop is None else self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # -- plumbing ------------------------------------------------------

    def _on_loop(self) -> bool:
        return (
            self._loop is not None
            and threading.current_thread() is self._thread
        )

    def _submit(self, coro: Any, timeout: float | None = None) -> Any:
        if self._loop is None:
            raise SimulationError("driver is not running")
        if self._on_loop():
            raise SimulationError(
                "blocking driver call from the loop thread"
            )
        future = asyncio.run_coroutine_threadsafe(coro, self._loop)
        try:
            return future.result(timeout)
        except concurrent.futures.TimeoutError:
            future.cancel()
            raise SimulationError(
                f"realnet-proc action did not complete within {timeout}s"
            ) from None

    def _invoke_or_spawn(self, coro: Any, timeout: float = ACTION_TIMEOUT) -> Any:
        """Run ``coro`` to completion from a foreign thread, or schedule
        it as a tracked task when already on the loop (fault-schedule
        actions and workload ticks must not block the loop on a control
        round trip)."""
        if self._on_loop():
            task = asyncio.get_running_loop().create_task(coro)
            self._bg.add(task)
            task.add_done_callback(self._bg.discard)
            return None
        return self._submit(coro, timeout=timeout)

    def _fire_ctl(self, site: SiteId, op: str, arg: Any = None) -> None:
        self._invoke_or_spawn(self._ctl_request(site, op, arg))

    async def _ctl_request(self, site: SiteId, op: str, arg: Any = None) -> Any:
        client = self._ctl.get(site)
        if client is None:
            raise SimulationError(f"no control connection to site {site}")
        return await client.request(op, arg)

    async def _refresh_statuses(self) -> None:
        sites = sorted(self._ctl)

        async def one(site: SiteId) -> None:
            try:
                self._status[site] = await self._ctl[site].request(
                    "status", timeout=5.0
                )
            except Exception:
                pass  # keep the stale entry; the next poll retries

        await asyncio.gather(*(one(site) for site in sites))

    async def _poll_loop(self) -> None:
        while True:
            await asyncio.sleep(POLL_INTERVAL)
            await self._refresh_statuses()

    # -- connectivity broadcast ----------------------------------------

    def _topology_changed(self) -> None:
        self._invoke_or_spawn(self._push_topology())

    async def _push_topology(self) -> None:
        components = tuple(
            tuple(sorted(group)) for group in self.topology.components()
        )
        oneway = tuple(sorted(self.topology._oneway_cuts))
        sites = tuple(sorted(self.topology.sites))
        arg = (components, oneway, sites)
        await asyncio.gather(
            *(
                client.request("topology", arg)
                for client in self._ctl.values()
            ),
            return_exceptions=True,
        )

    # -- time / waiting ------------------------------------------------

    @property
    def now(self) -> float:
        return self.scheduler.now if self.scheduler is not None else 0.0

    @property
    def time_scale(self) -> float:
        return 0.01 * self.config.scale

    def run_for(self, duration: float) -> float:
        time.sleep(max(0.0, duration))
        return self.now

    def settle(self, timeout: float = 10.0, poll: float = 0.05) -> bool:
        return self._submit(
            self._wait_async(self._settled_from_cache, timeout, poll),
            timeout=timeout + ACTION_TIMEOUT,
        )

    def wait_until(
        self,
        predicate: Callable[[Any], Any],
        timeout: float = 10.0,
        poll: float = 0.05,
    ) -> bool:
        if self._on_loop():
            return self._submit(
                self._wait_async(lambda: predicate(self), timeout, poll),
                timeout=timeout + ACTION_TIMEOUT,
            )
        # Off-loop callers get the predicate evaluated on *their* thread,
        # so it may itself make blocking driver calls (delivered_total,
        # metrics_snapshot, ...) without deadlocking the loop thread.
        deadline = time.monotonic() + timeout
        while True:
            self._submit(self._refresh_statuses(), timeout=ACTION_TIMEOUT)
            if predicate(self):
                return True
            if time.monotonic() >= deadline:
                return bool(predicate(self))
            time.sleep(poll)

    async def _wait_async(
        self, predicate: Callable[[], Any], timeout: float, poll: float
    ) -> bool:
        loop = asyncio.get_running_loop()
        deadline = loop.time() + timeout
        while True:
            await self._refresh_statuses()
            if predicate():
                return True
            if loop.time() >= deadline:
                return bool(predicate())
            await asyncio.sleep(poll)

    def is_settled(self) -> bool:
        return self._settled_from_cache()

    def _settled_from_cache(self) -> bool:
        """The in-process cluster's convergence definition, computed
        over the status cache and the mirror topology."""
        live = {
            site: status
            for site, status in self._status.items()
            if status.get("alive")
        }
        live_pids = {
            ProcessId(status["site"], status["inc"]) for status in live.values()
        }
        for site, status in live.items():
            if status.get("view") is None or status.get("flushing"):
                return False
            component = self.topology.component_of(site)
            expected = {pid for pid in live_pids if pid.site in component}
            if set(status.get("members", ())) != expected:
                return False
            for other_site, other in live.items():
                if other_site in component and other.get("view") != status.get("view"):
                    return False
        return True

    def after(self, delay: float, callback: Callable[..., None], *args: Any) -> Any:
        if self.scheduler is None:
            raise SimulationError("driver is not running")
        if self._on_loop():
            return self.scheduler.after(delay, callback, *args)

        async def arm() -> Any:
            return self.scheduler.after(delay, callback, *args)

        handle = self._submit(arm(), timeout=ACTION_TIMEOUT)

        class _Event:
            def __init__(self, driver: "ProcRealClusterDriver", h: Any) -> None:
                self._driver = driver
                self._h = h

            def cancel(self) -> None:
                if self._driver._on_loop():
                    self._h.cancel()
                else:
                    async def do() -> None:
                        self._h.cancel()

                    self._driver._submit(do(), timeout=ACTION_TIMEOUT)

        return _Event(self, handle)

    # -- lifecycle / environment actions -------------------------------

    def crash(self, site: SiteId) -> None:
        self._fire_ctl(site, "crash")
        status = self._status.get(site)
        if status is not None:
            status["alive"] = False

    def recover(self, site: SiteId) -> _ProcStackProxy:
        status = self._status.get(site)
        if status is not None and status.get("alive"):
            raise SimulationError(f"site {site} is up; cannot recover")
        self._invoke_or_spawn(self._recover_async(site))
        return _ProcStackProxy(self, site)

    async def _recover_async(self, site: SiteId) -> None:
        await self._ctl_request(site, "boot")
        await self._refresh_statuses()

    def join(self, site: SiteId) -> _ProcStackProxy:
        self.topology.add_site(site)  # broadcasts the grown universe
        self._invoke_or_spawn(
            self._join_async(site), timeout=self.config.startup_timeout
        )
        return _ProcStackProxy(self, site)

    async def _join_async(self, site: SiteId) -> None:
        cfg = self.config
        self.address_book[site] = (cfg.host, _free_port(cfg.host))
        host, port = self.address_book[site]
        await asyncio.gather(
            *(
                client.request("add_site", (site, host, port))
                for s, client in self._ctl.items()
                if s != site
            ),
            return_exceptions=True,
        )
        self._spawn_proc(site)
        await self._connect_ctl(site)
        await self._push_topology()
        await self._ctl[site].request("boot")
        await self._refresh_statuses()

    def partition(self, groups: Sequence[Sequence[SiteId]]) -> None:
        self.topology.partition(groups)

    def heal(self) -> None:
        self.topology.heal()

    def isolate(self, site: SiteId) -> None:
        self.topology.isolate(site)

    def arm(self, schedule: Any) -> None:
        if self.scheduler is None:
            raise SimulationError("driver is not running; cannot arm")
        scaled = schedule.scaled(self.time_scale)

        def do() -> None:
            assert self.scheduler is not None
            scaled.shifted(self.scheduler.now).arm(self.scheduler, self)

        if self._on_loop():
            do()
        else:
            async def arm_async() -> None:
                do()

            self._submit(arm_async(), timeout=ACTION_TIMEOUT)

    # -- introspection -------------------------------------------------

    def stack_at(self, site: SiteId) -> _ProcStackProxy:
        if site not in self._status:
            raise SimulationError(f"no process was ever started at site {site}")
        return _ProcStackProxy(self, site)

    def app_at(self, site: SiteId) -> Any:
        raise SimulationError(
            "applications live in child processes on the realnet-proc "
            "runtime; drive them through multicast workloads instead"
        )

    def live_stacks(self) -> list[_ProcStackProxy]:
        return [
            _ProcStackProxy(self, site)
            for site, status in sorted(self._status.items())
            if status.get("alive")
        ]

    def live_pids(self) -> set[ProcessId]:
        return {
            ProcessId(status["site"], status["inc"])
            for status in self._status.values()
            if status.get("alive")
        }

    def views(self) -> dict[SiteId, str]:
        return {
            site: status.get("view_str", "")
            for site, status in sorted(self._status.items())
            if status.get("alive")
        }

    def mcast_many(self, site: SiteId, count: int, payload: Any) -> int:
        """Blocking bulk multicast injection at one site (bench workloads).

        Returns how many multicasts the child's stack accepted; it stops
        at the first rejection (stack flushing a view change), so the
        caller retries the remainder.
        """
        return self._submit(
            self._ctl_request(site, "mcast_many", (count, payload)),
            timeout=ACTION_TIMEOUT,
        )

    def delivered_total(self) -> int:
        """Cluster-wide app deliveries (control-polled; bench barrier)."""
        counts = self._submit(self._counts_async(), timeout=ACTION_TIMEOUT)
        return sum(delivered for _mcast, delivered in counts)

    async def _counts_async(self) -> list[tuple[int, int]]:
        results = await asyncio.gather(
            *(client.request("counts") for client in self._ctl.values()),
            return_exceptions=True,
        )
        return [r for r in results if isinstance(r, tuple)]

    def flight_recorders(self) -> list[Any]:
        """Pull each child's flight-recorder ring and rehydrate locally.

        Children own the live recorders; the ``flight`` control op ships
        their rings as :class:`~repro.obs.tracing.TraceDump` values (the
        dataclass is codec-registered), which rebuild into local
        recorders so :func:`~repro.obs.tracing.dump_on_violations`
        works uniformly across backends.  Empty when tracing is off.
        """
        if not self.config.tracing:
            return []
        from repro.obs.tracing import FlightRecorder, TraceDump

        dumps = self._submit(self._flight_async(), timeout=ACTION_TIMEOUT * 2)
        return [
            FlightRecorder.from_dump(dump)
            for dump in dumps
            if isinstance(dump, TraceDump)
        ]

    async def _flight_async(self) -> list[Any]:
        return list(
            await asyncio.gather(
                *(
                    client.request("flight", timeout=ACTION_TIMEOUT)
                    for _site, client in sorted(self._ctl.items())
                ),
                return_exceptions=True,
            )
        )

    def gather_trace(self) -> TraceRecorder:
        """Pull every child's recorders and merge on one time base.

        Child event times are local to each child's scheduler; the wall
        epoch each child reports places its t=0 on the shared wall
        clock, and shifting by the epoch difference re-expresses every
        event in the *parent's* scheduler time before the merge sort.
        """
        dumps = self._submit(self._trace_async(), timeout=ACTION_TIMEOUT * 2)
        parent_epoch = time.time() - self.now
        recorders: list[TraceRecorder] = []
        for child_epoch, recs in dumps:
            shift = child_epoch - parent_epoch
            for label, lines in recs:
                recorder = TraceRecorder(level="full", label=label)
                for line in lines:
                    event = event_from_json(line)
                    recorder.record(
                        dataclasses.replace(event, time=event.time + shift)
                    )
                recorders.append(recorder)
        return TraceRecorder.merge(*recorders)

    async def _trace_async(self) -> list[tuple[float, tuple]]:
        results = await asyncio.gather(
            *(
                client.request("trace", timeout=ACTION_TIMEOUT)
                for _site, client in sorted(self._ctl.items())
            )
        )
        return list(results)

    def network_stats(self) -> Any:
        from repro.net.network import NetworkStats

        stats_list = self._submit(self._net_stats_async(), timeout=ACTION_TIMEOUT)
        total = NetworkStats(detailed=True)
        for stats in stats_list:
            total.sent += stats["sent"]
            total.delivered += stats["delivered"]
            total.dropped_partition += stats["dropped_partition"]
            total.dropped_loss += stats["dropped_loss"]
            total.dropped_dead += stats["dropped_dead"]
            for name, count in stats.get("by_type", {}).items():
                total.by_type[name] = total.by_type.get(name, 0) + count
        return total

    def transport_stats(self) -> dict[str, Any]:
        stats_list = self._submit(self._net_stats_async(), timeout=ACTION_TIMEOUT)
        total: dict[str, Any] = {}
        codecs: dict[str, int] = {}
        for stats in stats_list:
            transport = dict(stats.get("transport", {}))
            for name, count in transport.pop("codecs", {}).items():
                codecs[name] = codecs.get(name, 0) + count
            for key, value in transport.items():
                if key in ("max_batch", "max_frames_per_read"):
                    total[key] = max(total.get(key, 0), value)
                else:
                    total[key] = total.get(key, 0) + value
        total["codecs"] = codecs
        return total

    async def _net_stats_async(self) -> list[dict[str, Any]]:
        results = await asyncio.gather(
            *(client.request("net_stats") for client in self._ctl.values()),
            return_exceptions=True,
        )
        return [r for r in results if isinstance(r, dict)]

    def metrics_snapshot(self, source: str = "cluster") -> MetricsSnapshot:
        """Merged per-child registry snapshots (one registry per OS
        process, polled over the obs frame kind)."""
        snaps = self._submit(self._snapshots_async(), timeout=ACTION_TIMEOUT)
        snaps = [s for s in snaps if s is not None]
        if not snaps:
            return self.metrics.snapshot(source)
        return merge_snapshots(*snaps)

    async def _snapshots_async(self) -> list[MetricsSnapshot | None]:
        async def one(client: _CtlClient) -> MetricsSnapshot | None:
            try:
                return await asyncio.wait_for(client.fetch_metrics(), 10.0)
            except Exception:
                return None

        return list(
            await asyncio.gather(*(one(c) for c in self._ctl.values()))
        )
