"""Real-network runtime: the VS/EVS stacks over actual sockets.

The discrete-event simulator (:mod:`repro.sim` + :mod:`repro.net`) is
the fast, deterministic verification backend; this package is the
deployment surface.  It implements the same two ports the protocol
stacks are written against (:mod:`repro.ports`) on top of an asyncio
event loop and TCP:

* :class:`WallClockScheduler` — :class:`~repro.ports.SchedulerPort`
  over ``loop.call_at``;
* :class:`RealNetwork` — :class:`~repro.ports.NetworkPort` over
  length-prefixed JSON frames on per-peer TCP links, with injected
  loss/latency and a firewall predicate so the simulator's fault knobs
  carry over to live sockets;
* :class:`RealNode` / :class:`RealCluster` — per-site harness and
  in-process multi-node orchestrator (ephemeral localhost ports,
  crash/recover/partition/heal/join, wall-clock ``settle``);
* :class:`RealClusterDriver` — blocking
  :class:`~repro.ports.ClusterPort` adapter (event loop on a dedicated
  thread) so synchronous harness code — workloads, invariant monitors,
  the CLI — drives a real cluster exactly like a simulated one;
* :mod:`repro.realnet.codec` — the wire format (see docs/protocol.md).

The protocol layers are byte-identical between backends; nothing in
fd/gms/vsync/evs knows which one it is running on.
"""

from repro.realnet.cluster import RealCluster, RealClusterConfig
from repro.realnet.driver import RealClusterDriver
from repro.realnet.codec import (
    MAX_FRAME_BYTES,
    decode_value,
    encode_value,
    register_payload,
)
from repro.realnet.network import RealNetwork
from repro.realnet.node import RealNode, realnet_stack_config, run_standalone
from repro.realnet.wallclock import WallClockEvent, WallClockScheduler

__all__ = [
    "MAX_FRAME_BYTES",
    "RealCluster",
    "RealClusterConfig",
    "RealClusterDriver",
    "RealNetwork",
    "RealNode",
    "WallClockEvent",
    "WallClockScheduler",
    "decode_value",
    "encode_value",
    "realnet_stack_config",
    "register_payload",
    "run_standalone",
]
