"""Asyncio TCP transport: one listening server plus dial-out peer links.

Connections are **unidirectional** for protocol traffic: a node dials
one outbound link per peer site and only ever writes ``msg`` frames on
it; its server socket only ever reads them.  The single exception is
the handshake — the dialer opens with a JSON ``hello`` naming the wire
formats it speaks (and its payload-schema fingerprint), the server
answers with one JSON ``welcome`` naming the format it picked (see
:func:`~repro.realnet.codec_bin.choose_format`), and everything after
that travels in the negotiated format.  A JSON-only peer and a
binary-capable peer therefore interoperate without configuration.

Each :class:`PeerLink` owns a bounded send queue and a background task
that dials (re-resolving the peer's address each attempt, so a peer
that recovered on a fresh port is found), handshakes, and drains the
queue in **micro-batches**: after the first queued message it waits at
most :data:`FLUSH_TICK` (sub-millisecond) for stragglers, packs
everything queued — bounded by :data:`BATCH_BYTES` — into one
``writelines`` + ``drain`` flush, and encodes each message in the
link's negotiated format (payload bytes are encoded once per format
and shared across a multicast's links via
:class:`OutMessage`).  Connection failures trigger exponential backoff
(:data:`BACKOFF_BASE` doubling to :data:`BACKOFF_CAP`); messages
offered while the queue is full are dropped — the group protocols
above are built to tolerate message loss, so a dead or wedged peer
costs bounded memory, never backpressure into protocol code.

The server side accepts any number of connections, validates the
``hello``, replies with the ``welcome``, and then splits its read
buffer into frames in batches — one ``reader.read`` can yield dozens
of frames, each handed synchronously to the node's receive callback —
instead of paying two ``readexactly`` awaits per frame.  A connection
that talks garbage is logged and closed; the node keeps serving.

Diagnostics go through the ``repro.realnet.*`` :mod:`logging` loggers
(silent by default; :func:`enable_stderr_logging` restores the old
``quiet=False`` stderr behavior).
"""

from __future__ import annotations

import asyncio
import logging
import random
from typing import Any, Awaitable, Callable

from repro.errors import CodecError
from repro.realnet.codec import (
    MAX_FRAME_BYTES,
    _LEN,
    decode_frame_body,
    encode_frame,
    read_frame,
)
from repro.realnet.codec_bin import (
    FORMAT_JSON,
    ParsedMsg,
    WIRE_FORMATS,
    choose_format,
    schema_fingerprint,
)

logger = logging.getLogger("repro.realnet.transport")

#: Reconnect backoff: first retry after BACKOFF_BASE seconds, doubling
#: (with jitter) up to BACKOFF_CAP.
BACKOFF_BASE = 0.05
BACKOFF_CAP = 1.0

#: Outbound messages buffered per peer while (re)connecting.
SEND_QUEUE_CAP = 2048

#: Micro-batch flush tick: after the first queued message, wait this
#: long (seconds) for more before flushing.  Sub-millisecond — far
#: below every protocol timer — but long enough to coalesce a
#: multicast fan-out or a flush round into one syscall.  0 disables
#: the wait (PR-2 behavior: flush whatever is already queued).
FLUSH_TICK = 0.0005

#: Byte bound per flush: stop packing when a batch reaches this size.
BATCH_BYTES = 256 * 1024

#: How long the dialer waits for the server's ``welcome`` before
#: assuming a pre-negotiation peer and falling back to JSON.
WELCOME_TIMEOUT = 2.0

#: Server-side read size for the batched frame-splitting loop.
READ_CHUNK = 256 * 1024

Resolver = Callable[[], "tuple[str, int] | None"]


def enable_stderr_logging(level: int = logging.INFO) -> logging.Logger:
    """Attach one stderr handler to the ``repro.realnet`` logger tree.

    Idempotent.  Called by the CLI and by ``quiet=False`` entry points;
    library use stays silent unless the application configures logging.
    """
    root = logging.getLogger("repro.realnet")
    if not root.handlers:
        handler = logging.StreamHandler()
        handler.setFormatter(logging.Formatter("[realnet] %(message)s"))
        root.addHandler(handler)
    root.setLevel(level)
    return root


class OutMessage:
    """One queued outbound protocol message, encoded lazily per format.

    ``cell`` is shared across every :class:`OutMessage` of one
    multicast fan-out: the payload is encoded at most once per wire
    format no matter how many links (or which formats they negotiated)
    carry it.  The sender pre-fills its preferred format's entry so
    encoding errors surface in the caller, like the simulator.
    """

    __slots__ = ("dst_inc", "payload", "cell")

    def __init__(self, dst_inc: int | None, payload: Any, cell: dict[str, Any]) -> None:
        self.dst_inc = dst_inc
        self.payload = payload
        self.cell = cell

    def encoded(self, fmt: Any) -> Any:
        enc = self.cell.get(fmt.name)
        if enc is None:
            enc = self.cell[fmt.name] = fmt.encode_payload(self.payload)
        return enc


class PeerLink:
    """Outbound message pipe to one peer site: reconnect, negotiate, batch."""

    def __init__(
        self,
        name: str,
        src: tuple[int, int],
        dst_site: Any,
        resolve: Resolver,
        offer_formats: tuple[str, ...] = (FORMAT_JSON,),
        queue_cap: int = SEND_QUEUE_CAP,
        flush_tick: float = FLUSH_TICK,
        batch_bytes: int = BATCH_BYTES,
    ) -> None:
        self.name = name
        self._src = src
        self._dst_site = dst_site
        self._resolve = resolve
        self._offer = offer_formats
        self._flush_tick = flush_tick
        self._batch_bytes = batch_bytes
        self._queue: asyncio.Queue[OutMessage] = asyncio.Queue(maxsize=queue_cap)
        self._task: asyncio.Task | None = None
        self._writer: asyncio.StreamWriter | None = None
        #: Wire-format name negotiated on the current connection.
        self.wire_format: str | None = None
        self.frames_sent = 0
        self.frames_dropped = 0
        self.encode_errors = 0
        self.connects = 0
        self.flushes = 0
        self.bytes_sent = 0
        self.max_batch = 0

    def start(self) -> None:
        if self._task is None:
            self._task = asyncio.get_running_loop().create_task(
                self._run(), name=f"peerlink-{self.name}"
            )

    def rebind_src(self, src: tuple[int, int]) -> None:
        """Stamp subsequent frames with a new local incarnation.

        The in-place recover path boots a fresh stack on an existing
        transport; its cached links must not keep framing messages as
        the dead incarnation (receivers identify senders per *frame*,
        so the connection and its original hello can stay up).
        """
        self._src = src

    def offer(self, msg: OutMessage) -> bool:
        """Enqueue a message for transmission; False (dropped) when full."""
        try:
            self._queue.put_nowait(msg)
            return True
        except asyncio.QueueFull:
            self.frames_dropped += 1
            return False

    async def stop(self) -> None:
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None
        await self._close_writer()

    async def _close_writer(self) -> None:
        writer, self._writer = self._writer, None
        self.wire_format = None
        if writer is not None:
            writer.close()
            try:
                await writer.wait_closed()
            except OSError:
                pass

    async def _handshake(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> Any:
        """Send hello, read welcome, return the negotiated wire format."""
        writer.write(
            encode_frame(
                {
                    "k": "hello",
                    "src": [self._src[0], self._src[1]],
                    "codecs": list(self._offer),
                    "schema": schema_fingerprint(),
                }
            )
        )
        await writer.drain()
        chosen = FORMAT_JSON
        try:
            welcome = await asyncio.wait_for(read_frame(reader), WELCOME_TIMEOUT)
        except (asyncio.TimeoutError, CodecError):
            logger.debug("link %s: no welcome; assuming JSON peer", self.name)
        else:
            if welcome is None:
                raise ConnectionError("peer closed during handshake")
            name = welcome.get("codec") if welcome.get("k") == "welcome" else None
            if name in self._offer and name in WIRE_FORMATS:
                chosen = name
        self.wire_format = chosen
        return WIRE_FORMATS[chosen]

    async def _drain_queue(self, writer: asyncio.StreamWriter, fmt: Any) -> None:
        queue = self._queue
        flush_tick = self._flush_tick
        batch_bytes = self._batch_bytes
        frame_into = fmt.frame_msg_into
        dst_site = self._dst_site
        while True:
            msg = await queue.get()
            # Re-read per flush: rebind_src may have moved the link to a
            # fresh local incarnation mid-connection.
            src = self._src
            if flush_tick > 0.0 and queue.empty():
                # Sub-millisecond pause: let a fan-out or protocol round
                # land its siblings in the queue, then flush once.
                await asyncio.sleep(flush_tick)
            # One batch buffer per flush, packed in place (length prefix
            # patched via pack_into) and written with a single write().
            # The buffer must be *fresh* each flush: uvloop's transport
            # keeps a reference to the object it was handed, so reusing
            # it would corrupt in-flight data.
            batch = bytearray()
            frames = 0
            while True:
                try:
                    frame_into(batch, src, dst_site, msg.dst_inc, msg.encoded(fmt))
                except CodecError as exc:
                    self.encode_errors += 1
                    logger.warning("link %s: cannot encode frame: %s", self.name, exc)
                else:
                    frames += 1
                if len(batch) >= batch_bytes:
                    break
                try:
                    msg = queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
            if not frames:
                continue
            writer.write(batch)
            await writer.drain()
            self.frames_sent += frames
            self.bytes_sent += len(batch)
            self.flushes += 1
            if frames > self.max_batch:
                self.max_batch = frames

    async def _run(self) -> None:
        rng = random.Random()
        backoff = BACKOFF_BASE
        while True:
            address = self._resolve()
            if address is None:
                await asyncio.sleep(backoff)
                backoff = min(backoff * 2, BACKOFF_CAP)
                continue
            try:
                reader, writer = await asyncio.open_connection(*address)
            except OSError:
                await asyncio.sleep(backoff * (0.5 + rng.random()))
                backoff = min(backoff * 2, BACKOFF_CAP)
                continue
            self._writer = writer
            self.connects += 1
            try:
                fmt = await self._handshake(reader, writer)
                backoff = BACKOFF_BASE  # handshake done: healthy link
                await self._drain_queue(writer, fmt)
            except (OSError, ConnectionError):
                logger.info("link %s: peer went away; reconnecting", self.name)
            finally:
                await self._close_writer()


class FrameServer:
    """Listening side: accepts peer connections and forwards messages.

    ``on_msg(parsed)`` is called synchronously on the event loop for
    every inbound :class:`~repro.realnet.codec_bin.ParsedMsg`;
    validation beyond frame shape is the receiver's business
    (incarnation and connectivity checks live in
    :class:`~repro.realnet.network.RealNetwork`).
    """

    def __init__(
        self,
        host: str,
        port: int,
        on_msg: Callable[[ParsedMsg], None],
        accept_formats: tuple[str, ...] = (FORMAT_JSON,),
        on_control: Callable[[Any, bytes, Callable[[bytes], None]], "bytes | None"]
        | None = None,
    ) -> None:
        self._host = host
        self._port = port
        self._on_msg = on_msg
        self._accept = accept_formats
        #: Optional handler for non-``msg`` frame bodies: called with
        #: (negotiated format, body, send) where ``send(data)`` writes
        #: framed bytes back on the originating connection at any later
        #: time (the client service's deferred put replies); a bytes
        #: return is written back immediately (the obs snapshot
        #: service), None ignores the frame as before.
        self._on_control = on_control
        self._server: asyncio.base_events.Server | None = None
        self._conn_tasks: set[asyncio.Task] = set()
        self.frames_received = 0
        self.bytes_received = 0
        self.reads = 0
        self.max_frames_per_read = 0
        self.bad_connections = 0
        #: Well-framed bodies that failed to parse, logged and dropped
        #: without killing the connection (frame *lengths* are still
        #: trusted once negotiated; a cap violation closes the link).
        self.bad_frames = 0
        #: Connections by negotiated format name (lifetime counts).
        self.format_counts: dict[str, int] = {}

    @property
    def address(self) -> tuple[str, int]:
        """The actually-bound ``(host, port)`` (resolves port 0)."""
        if self._server is None:
            raise RuntimeError("server not started")
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        return host, port

    async def start(self) -> tuple[str, int]:
        self._server = await asyncio.start_server(
            self._handle, self._host, self._port
        )
        return self.address

    async def stop(self) -> None:
        server, self._server = self._server, None
        if server is not None:
            server.close()
            await server.wait_closed()
        for task in list(self._conn_tasks):
            task.cancel()
        for task in list(self._conn_tasks):
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        self._conn_tasks.clear()

    def _split_frames(self, buf: bytearray) -> list[bytes]:
        """Carve every complete ``length + body`` frame off ``buf``.

        Retained as the copying reference implementation (and for the
        framing unit tests); the live receive loop in :meth:`_handle`
        walks frame extents in place instead.
        """
        bodies: list[bytes] = []
        pos = 0
        end = len(buf)
        while end - pos >= _LEN.size:
            (length,) = _LEN.unpack_from(buf, pos)
            if length > MAX_FRAME_BYTES:
                raise CodecError(
                    f"frame length {length} exceeds cap {MAX_FRAME_BYTES}"
                )
            if end - pos - _LEN.size < length:
                break
            start = pos + _LEN.size
            bodies.append(bytes(buf[start : start + length]))
            pos = start + length
        if pos:
            del buf[:pos]
        return bodies

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
            task.add_done_callback(self._conn_tasks.discard)
        buf = bytearray()
        fmt: Any = None  # negotiated after the hello
        on_msg = self._on_msg

        def send(data: bytes) -> None:
            # Per-connection reply channel handed to the control hook;
            # safe to call after the dispatching frame (deferred client
            # replies), a no-op once the peer is gone.
            if not writer.is_closing():
                writer.write(data)

        try:
            while True:
                chunk = await reader.read(READ_CHUNK)
                if not chunk:
                    if buf:  # EOF mid-frame
                        self.bad_connections += 1
                        logger.info("server %s:%s: connection closed mid-frame",
                                    self._host, self._port)
                    return
                buf += chunk
                self.bytes_received += len(chunk)
                # Walk complete frames in place: each body is parsed at
                # its (start, end) extent inside the read buffer, no
                # per-frame slice.  Dispatch is synchronous, so every
                # payload thunk is consumed before the buffer is
                # compacted below.  Rare paths (hello, control frames)
                # still copy their body out.
                pos = 0
                end = len(buf)
                walked = 0
                msgs = 0
                while end - pos >= _LEN.size:
                    (length,) = _LEN.unpack_from(buf, pos)
                    if length > MAX_FRAME_BYTES:
                        raise CodecError(
                            f"frame length {length} exceeds cap {MAX_FRAME_BYTES}"
                        )
                    body_start = pos + _LEN.size
                    frame_end = body_start + length
                    if frame_end > end:
                        break
                    if fmt is None:
                        # First frame must be the JSON hello; answer
                        # with a welcome naming the format the rest of
                        # the stream (and any later frames already in
                        # this batch) uses.
                        hello = decode_frame_body(bytes(buf[body_start:frame_end]))
                        if hello.get("k") != "hello":
                            self.bad_connections += 1
                            return
                        chosen = choose_format(
                            hello.get("codecs"), hello.get("schema"), self._accept
                        )
                        writer.write(encode_frame({"k": "welcome", "codec": chosen}))
                        await writer.drain()
                        fmt = WIRE_FORMATS[chosen]
                        self.format_counts[chosen] = (
                            self.format_counts.get(chosen, 0) + 1
                        )
                        pos = frame_end
                        continue
                    walked += 1
                    try:
                        parsed = fmt.parse_msg_at(buf, body_start, frame_end)
                        if parsed is None:
                            # Not a msg frame: offer it to the control
                            # hook (obs polls, client requests); unknown
                            # kinds stay ignored so future frames don't
                            # kill the link.
                            if self._on_control is not None:
                                reply = self._on_control(
                                    fmt, bytes(buf[body_start:frame_end]), send
                                )
                                if reply is not None:
                                    writer.write(reply)
                                    await writer.drain()
                        else:
                            msgs += 1
                            on_msg(parsed)
                    except CodecError as exc:
                        # The framing is intact (the length prefix was
                        # sane), only this body is garbage: drop the one
                        # frame and keep the link — a single bad payload
                        # must not sever an otherwise healthy peer.
                        self.bad_frames += 1
                        logger.info(
                            "server %s:%s: dropped bad frame: %s",
                            self._host, self._port, exc,
                        )
                    pos = frame_end
                if pos:
                    del buf[:pos]
                if walked:
                    self.reads += 1
                    self.frames_received += msgs
                    if walked > self.max_frames_per_read:
                        self.max_frames_per_read = walked
        except CodecError as exc:
            self.bad_connections += 1
            logger.info("server %s:%s: bad peer frame: %s", self._host, self._port, exc)
        except (OSError, ConnectionError):
            pass
        except asyncio.CancelledError:
            # Server shutdown cancels connection tasks; swallowing the
            # cancellation here lets the task finish cleanly instead of
            # tripping asyncio.streams' connection_made callback, which
            # would log a spurious traceback for every open connection.
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except OSError:
                pass


async def wait_for_condition(
    predicate: Callable[[], Any],
    timeout: float,
    poll: float = 0.02,
) -> bool:
    """Poll ``predicate`` on the wall clock until truthy or ``timeout``.

    The realnet analogue of the simulator's ``run_until``; used by the
    orchestrator's ``settle`` and by the smoke tests.
    """
    loop = asyncio.get_running_loop()
    deadline = loop.time() + timeout
    while True:
        if predicate():
            return True
        if loop.time() >= deadline:
            return bool(predicate())
        await asyncio.sleep(poll)


async def run_with_timeout(coro: Awaitable[Any], timeout: float) -> Any:
    """``asyncio.wait_for`` wrapper: every realnet entry point takes a
    hard wall-clock budget so a wedged cluster can never hang CI."""
    return await asyncio.wait_for(coro, timeout=timeout)
