"""Asyncio TCP transport: one listening server plus dial-out peer links.

Connections are **unidirectional**: a node dials one outbound link per
peer site and only ever writes frames on it; its server socket only ever
reads.  Two nodes that both send therefore hold two TCP connections —
trading a doubled connection count for never having to multiplex reads
and writes or resolve simultaneous-dial races.

Each :class:`PeerLink` owns a bounded send queue and a background task
that dials (re-resolving the peer's address each attempt, so a peer that
recovered on a fresh port is found), performs the ``hello`` handshake
and drains the queue.  Connection failures trigger exponential backoff
(:data:`BACKOFF_BASE` doubling to :data:`BACKOFF_CAP`); frames offered
while the queue is full are dropped — the group protocols above are
built to tolerate message loss, so a dead or wedged peer costs bounded
memory, never backpressure into protocol code.

The server side accepts any number of connections, validates the
``hello`` frame and then forwards each ``msg`` frame to the node's
receive callback.  A connection that talks garbage is logged and closed;
the node keeps serving.
"""

from __future__ import annotations

import asyncio
import random
import sys
from typing import Any, Awaitable, Callable

from repro.errors import CodecError
from repro.realnet.codec import encode_frame, read_frame

#: Reconnect backoff: first retry after BACKOFF_BASE seconds, doubling
#: (with jitter) up to BACKOFF_CAP.
BACKOFF_BASE = 0.05
BACKOFF_CAP = 1.0

#: Outbound frames buffered per peer while (re)connecting.
SEND_QUEUE_CAP = 2048

Resolver = Callable[[], "tuple[str, int] | None"]


def _log(msg: str) -> None:
    print(f"[realnet] {msg}", file=sys.stderr)


class PeerLink:
    """Outbound frame pipe to one peer site, with reconnect/backoff."""

    def __init__(
        self,
        name: str,
        resolve: Resolver,
        hello: dict[str, Any],
        queue_cap: int = SEND_QUEUE_CAP,
        quiet: bool = True,
    ) -> None:
        self.name = name
        self._resolve = resolve
        self._hello = hello
        self._queue: asyncio.Queue[bytes] = asyncio.Queue(maxsize=queue_cap)
        self._task: asyncio.Task | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._quiet = quiet
        self.frames_sent = 0
        self.frames_dropped = 0
        self.connects = 0

    def start(self) -> None:
        if self._task is None:
            self._task = asyncio.get_running_loop().create_task(
                self._run(), name=f"peerlink-{self.name}"
            )

    def offer(self, frame: bytes) -> bool:
        """Enqueue a frame for transmission; False (dropped) when full."""
        try:
            self._queue.put_nowait(frame)
            return True
        except asyncio.QueueFull:
            self.frames_dropped += 1
            return False

    async def stop(self) -> None:
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None
        await self._close_writer()

    async def _close_writer(self) -> None:
        writer, self._writer = self._writer, None
        if writer is not None:
            writer.close()
            try:
                await writer.wait_closed()
            except OSError:
                pass

    async def _run(self) -> None:
        rng = random.Random()
        backoff = BACKOFF_BASE
        while True:
            address = self._resolve()
            if address is None:
                await asyncio.sleep(backoff)
                backoff = min(backoff * 2, BACKOFF_CAP)
                continue
            try:
                reader, writer = await asyncio.open_connection(*address)
            except OSError:
                await asyncio.sleep(backoff * (0.5 + rng.random()))
                backoff = min(backoff * 2, BACKOFF_CAP)
                continue
            self._writer = writer
            self.connects += 1
            try:
                writer.write(encode_frame(self._hello))
                await writer.drain()
                backoff = BACKOFF_BASE  # handshake out: healthy link
                while True:
                    frame = await self._queue.get()
                    writer.write(frame)
                    self.frames_sent += 1
                    # Opportunistically coalesce whatever else is queued
                    # into the same flush.
                    while True:
                        try:
                            frame = self._queue.get_nowait()
                        except asyncio.QueueEmpty:
                            break
                        writer.write(frame)
                        self.frames_sent += 1
                    await writer.drain()
            except (OSError, ConnectionError):
                if not self._quiet:
                    _log(f"link {self.name}: peer went away; reconnecting")
            finally:
                await self._close_writer()


class FrameServer:
    """Listening side: accepts peer connections and forwards frames.

    ``on_frame(peer_pid_fields, frame)`` is called synchronously on the
    event loop for every ``msg`` frame; validation beyond frame shape is
    the receiver's business (incarnation and connectivity checks live in
    :class:`~repro.realnet.network.RealNetwork`).
    """

    def __init__(
        self,
        host: str,
        port: int,
        on_frame: Callable[[dict[str, Any]], None],
        quiet: bool = True,
    ) -> None:
        self._host = host
        self._port = port
        self._on_frame = on_frame
        self._server: asyncio.base_events.Server | None = None
        self._conn_tasks: set[asyncio.Task] = set()
        self._quiet = quiet
        self.frames_received = 0
        self.bad_connections = 0

    @property
    def address(self) -> tuple[str, int]:
        """The actually-bound ``(host, port)`` (resolves port 0)."""
        if self._server is None:
            raise RuntimeError("server not started")
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        return host, port

    async def start(self) -> tuple[str, int]:
        self._server = await asyncio.start_server(
            self._handle, self._host, self._port
        )
        return self.address

    async def stop(self) -> None:
        server, self._server = self._server, None
        if server is not None:
            server.close()
            await server.wait_closed()
        for task in list(self._conn_tasks):
            task.cancel()
        for task in list(self._conn_tasks):
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        self._conn_tasks.clear()

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
            task.add_done_callback(self._conn_tasks.discard)
        try:
            hello = await read_frame(reader)
            if hello is None or hello.get("k") != "hello":
                self.bad_connections += 1
                return
            while True:
                frame = await read_frame(reader)
                if frame is None:
                    return
                if frame.get("k") != "msg":
                    continue  # future frame kinds: ignore, don't kill the link
                self.frames_received += 1
                self._on_frame(frame)
        except CodecError as exc:
            self.bad_connections += 1
            if not self._quiet:
                _log(f"server {self._host}:{self._port}: bad peer frame: {exc}")
        except (OSError, ConnectionError):
            pass
        except asyncio.CancelledError:
            # Server shutdown cancels connection tasks; swallowing the
            # cancellation here lets the task finish cleanly instead of
            # tripping asyncio.streams' connection_made callback, which
            # would log a spurious traceback for every open connection.
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except OSError:
                pass


async def wait_for_condition(
    predicate: Callable[[], Any],
    timeout: float,
    poll: float = 0.02,
) -> bool:
    """Poll ``predicate`` on the wall clock until truthy or ``timeout``.

    The realnet analogue of the simulator's ``run_until``; used by the
    orchestrator's ``settle`` and by the smoke tests.
    """
    loop = asyncio.get_running_loop()
    deadline = loop.time() + timeout
    while True:
        if predicate():
            return True
        if loop.time() >= deadline:
            return bool(predicate())
        await asyncio.sleep(poll)


async def run_with_timeout(coro: Awaitable[Any], timeout: float) -> Any:
    """``asyncio.wait_for`` wrapper: every realnet entry point takes a
    hard wall-clock budget so a wedged cluster can never hang CI."""
    return await asyncio.wait_for(coro, timeout=timeout)
