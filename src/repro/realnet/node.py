"""One group member on the real network.

A :class:`RealNode` bundles what the simulator's
:class:`~repro.runtime.cluster.Cluster` wires per site — stable storage,
trace recorder, application object and an unmodified
:class:`~repro.vsync.stack.GroupStack` — with a
:class:`~repro.realnet.network.RealNetwork` transport endpoint.  Startup
is two-phase so an orchestrator can bring every transport up (learning
the ephemeral ports) before any stack starts heartbeating:

1. :meth:`start_transport` binds the server socket and publishes the
   node's address in the shared address book;
2. :meth:`start_stack` builds the stack and registers it, which arms
   the failure detector and membership timers.

:func:`run_standalone` runs one self-contained node in its own OS
process (the ``repro realnet node`` CLI) against a static address book
of fixed ports; in-process orchestration across many nodes lives in
:mod:`repro.realnet.cluster`.

Timer profile: the stack's timer configs are unit-agnostic floats, so
the same :class:`~repro.vsync.stack.StackConfig` works on both backends
— only the magnitudes change.  :func:`realnet_stack_config` scales the
simulator's canonical ratios (latency 1 : fd-interval 5 : fd-timeout 16
: round-timeout 25) onto loopback reality, where a frame costs well
under a millisecond: ``scale=1.0`` means a 50 ms heartbeat and
sub-second view agreement, fast enough for CI smoke tests yet ~50x the
loopback RTT, the same safety margin the simulator's defaults have.
"""

from __future__ import annotations

import asyncio
import signal
from typing import Any, Callable, Iterable

from repro.gms.membership import MembershipConfig
from repro.realnet.network import Connectivity, RealNetwork
from repro.realnet.wallclock import WallClockScheduler
from repro.sim.rng import RngStreams
from repro.sim.stable_storage import SiteStorage, StableStore
from repro.trace.recorder import TraceRecorder
from repro.types import ProcessId, SiteId
from repro.vsync.events import GroupApplication
from repro.vsync.stack import GroupStack, StackConfig

AppFactory = Callable[[ProcessId], GroupApplication]


def realnet_stack_config(scale: float = 1.0) -> StackConfig:
    """Stack timers for loopback TCP, preserving the simulator's ratios.

    ``scale`` stretches every timer uniformly: raise it on slow or
    heavily loaded machines, lower it (cautiously) for faster tests.
    """
    return StackConfig(
        fd_interval=0.05 * scale,
        fd_timeout=0.16 * scale,
        membership=MembershipConfig(
            check_interval=0.07 * scale,
            flush_stall_timeout=0.45 * scale,
            round_timeout=0.25 * scale,
            min_initiate_gap=0.03 * scale,
        ),
        stability_interval=0.25 * scale,
    )


class RealNode:
    """One site's stack + transport on the real network."""

    def __init__(
        self,
        pid: ProcessId,
        address_book: dict[SiteId, tuple[str, int]],
        *,
        scheduler: WallClockScheduler | None = None,
        storage: SiteStorage | None = None,
        recorder: TraceRecorder | None = None,
        app_factory: AppFactory | None = None,
        stack_config: StackConfig | None = None,
        universe: Callable[[], Iterable[SiteId]] | None = None,
        connectivity: Connectivity | None = None,
        loss_prob: float = 0.0,
        latency: Any = None,
        rng: RngStreams | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        detailed_stats: bool = True,
        codec: str = "bin",
        flush_tick: float | None = None,
        batch_bytes: int | None = None,
        quiet: bool = True,
        obs: Any = None,
        metrics: Any = None,
        metrics_source: str | None = None,
        flight: Any = None,
    ) -> None:
        self.pid = pid
        self.address_book = address_book
        self.scheduler = scheduler if scheduler is not None else WallClockScheduler()
        self.storage = storage if storage is not None else StableStore().site(pid.site)
        self.recorder = (
            recorder
            if recorder is not None
            else TraceRecorder(level="full", label=f"site{pid.site}")
        )
        self.app_factory = app_factory or (lambda _pid: GroupApplication())
        self.stack_config = stack_config or realnet_stack_config()
        self._universe = universe or (lambda: set(self.address_book))
        # Observability: the ClusterObs hub the stack reports into (may
        # be shared across co-located nodes) and the metrics registry
        # served to `repro obs watch` over the link protocol.
        self.obs = obs
        self.metrics = metrics if metrics is not None else (
            obs.registry if obs is not None else None
        )
        self.network = RealNetwork(
            self.scheduler,
            pid.site,
            address_book,
            host=host,
            port=port,
            connectivity=connectivity,
            loss_prob=loss_prob,
            latency=latency,
            rng=rng,
            detailed_stats=detailed_stats,
            codec=codec,
            flush_tick=flush_tick,
            batch_bytes=batch_bytes,
            quiet=quiet,
        )
        if self.metrics is not None:
            registry = self.metrics
            # The source names the *registry*, not the node: co-located
            # nodes sharing one registry must answer with one source so
            # watch clients can tell shared from per-process registries.
            source = metrics_source or f"site{pid.site}"
            self.network.snapshot_provider = lambda: registry.snapshot(source)
        # Flight recorder (may be shared across co-located nodes):
        # serves `repro obs trace` pulls on the same listening socket.
        self.flight = flight
        if flight is not None:
            self.network.trace_provider = flight.dump
        self.app: GroupApplication | None = None
        self.stack: GroupStack | None = None

    # -- lifecycle -----------------------------------------------------

    async def start_transport(self) -> tuple[str, int]:
        """Phase 1: bind the server socket, publish our address."""
        return await self.network.start()

    def start_stack(self) -> GroupStack:
        """Phase 2: boot the unmodified protocol stack on the transport."""
        self.app = self.app_factory(self.pid)
        self.stack = GroupStack(
            self.pid,
            self.scheduler,
            self.storage,
            self.app,
            self.recorder,
            universe=self._universe,
            config=self.stack_config,
            obs=self.obs,
        )
        self.network.register(self.stack)
        self._wire_client_service()
        return self.stack

    def _wire_client_service(self) -> None:
        """Serve external clients when the app is a versioned store.

        ``CLI_KIND`` frames on this node's normal listening socket are
        routed into the store through a :class:`~repro.client.service.
        StoreService`; nodes running other apps leave the hook unset and
        such frames are logged and dropped by the transport.
        """
        from repro.apps.versioned_store import VersionedStore

        if not isinstance(self.app, VersionedStore):
            return
        from repro.client.service import StoreService

        service = StoreService(self.app, registry=self.metrics, obs=self.obs)
        self.network.client_handler = service.handle_control

    async def start(self) -> GroupStack:
        """Single-phase convenience start (standalone nodes)."""
        await self.start_transport()
        return self.start_stack()

    async def stop(self) -> None:
        """Kill the stack (if running) and tear the transport down."""
        if self.stack is not None and self.stack.alive:
            self.stack.crash()
        await self.network.stop()

    @property
    def alive(self) -> bool:
        return self.stack is not None and self.stack.alive


async def run_standalone(
    site: SiteId,
    address_book: dict[SiteId, tuple[str, int]],
    *,
    incarnation: int = 0,
    app_factory: AppFactory | None = None,
    stack_config: StackConfig | None = None,
    loss_prob: float = 0.0,
    latency: Any = None,
    seed: int = 0,
    codec: str = "bin",
    quiet: bool = False,
    tracing: bool = False,
    on_view: Callable[[Any], None] | None = None,
    stop_event: asyncio.Event | None = None,
) -> RealNode:
    """Run one node in this OS process until SIGINT/SIGTERM (or
    ``stop_event``); the multi-process deployment surface.

    The node must already appear in ``address_book`` with a fixed port
    (every process needs the same book, so ephemeral ports are only for
    single-process orchestration).
    """
    if site not in address_book:
        raise ValueError(f"site {site} missing from the address book")
    from repro.obs.instrument import ClusterObs
    from repro.obs.registry import MetricsRegistry

    host, port = address_book[site]
    scheduler = WallClockScheduler()
    registry = MetricsRegistry(clock=lambda: scheduler.now, runtime="realnet")
    flight = None
    tracer = None
    if tracing:
        import time

        from repro.obs.tracing import FlightRecorder, Tracer

        # Per-process tracer, salted by site: span ids minted by
        # different nodes never collide without coordination.
        flight = FlightRecorder(
            f"site{site}", "realnet", epoch=time.time() - scheduler.now
        )
        tracer = Tracer(flight, lambda: scheduler.now, salt=site)
    node = RealNode(
        ProcessId(site, incarnation),
        address_book,
        scheduler=scheduler,
        app_factory=app_factory,
        stack_config=stack_config,
        loss_prob=loss_prob,
        latency=latency,
        rng=RngStreams(seed),
        host=host,
        port=port,
        codec=codec,
        quiet=quiet,
        obs=ClusterObs(registry, tracer),
        flight=flight,
    )
    stop = stop_event if stop_event is not None else asyncio.Event()
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(sig, stop.set)
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            pass
    await node.start()
    if on_view is not None:
        last_view: list[Any] = [None]

        def poll_view() -> None:
            stack = node.stack
            if stack is not None and stack.alive:
                if stack.view is not None and stack.view.view_id != last_view[0]:
                    last_view[0] = stack.view.view_id
                    on_view(stack.view)
                node.scheduler.after(0.1, poll_view)

        poll_view()
    try:
        await stop.wait()
    finally:
        await node.stop()
    return node
