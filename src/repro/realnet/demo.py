"""The realnet walkthrough: partition and EVS merge over real sockets.

One scripted scenario, used by ``python -m repro realnet demo``, by
``examples/realnet_partition_merge.py`` and (with assertions instead of
printing) by the loopback smoke tests:

1. boot ``n`` nodes on localhost TCP ports and settle into one view;
2. firewall the cluster into a majority and a minority — each side
   installs its own view, i.e. two concurrent e-views exist over real
   sockets;
3. heal the firewall — the sides merge into one view whose e-view
   structure still shows the partition's scars (one sv-set per former
   side, Property 6.3: structure preservation);
4. call ``SV-SetMerge`` on the merged structure and watch the change
   apply, totally ordered, at every member (Properties 6.1/6.2);
5. verify the paper's properties on the recorded trace.

Every phase runs under the caller's hard wall-clock budget.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass

from repro.realnet.cluster import RealCluster, RealClusterConfig
from repro.trace.checks import check_enriched_views, check_view_synchrony


@dataclass
class DemoResult:
    """What happened, for printing or asserting."""

    n_sites: int
    bootstrap_view: str
    partition_views: dict[int, str]
    merged_view: str
    svsets_after_heal: int
    svsets_after_merge: int
    property_violations: int
    frames_sent: int
    frames_delivered: int
    dropped_partition: int
    wall_seconds: float
    wire_frames: int
    wire_flushes: int
    wire_bytes: int
    codecs: dict[str, int]


async def partition_merge_demo(
    n_sites: int = 3,
    seed: int = 0,
    scale: float = 1.0,
    timeout: float = 30.0,
    codec: str = "bin",
    printer=None,
) -> DemoResult:
    """Run the scripted scenario; raises AssertionError if a phase fails."""

    def say(msg: str) -> None:
        if printer is not None:
            printer(msg)

    async def must_settle(cluster: RealCluster, what: str) -> None:
        if not await cluster.settle(timeout=timeout):
            raise AssertionError(f"{what}: membership did not settle; views={cluster.views()}")

    config = RealClusterConfig(seed=seed, scale=scale, codec=codec)
    async with RealCluster(n_sites, config=config) as cluster:
        t0 = cluster.now
        await must_settle(cluster, "bootstrap")
        bootstrap_view = str(cluster.stack_at(0).view)
        say(f"group formed over TCP at t={cluster.now:.2f}s:")
        for site, view in cluster.views().items():
            say(f"  site {site} @ {cluster.address_book[site][1]}: {view}")

        minority = max(1, n_sites // 3)
        left = list(range(n_sites - minority))
        right = list(range(n_sites - minority, n_sites))
        cluster.partition([left, right])
        await must_settle(cluster, "partition")
        partition_views = {s: str(cluster.stack_at(s).view) for s in range(n_sites)}
        side_views = {cluster.stack_at(s).current_view_id() for s in range(n_sites)}
        if len(side_views) != 2:
            raise AssertionError(f"expected two concurrent views, saw {side_views}")
        say(f"\nfirewalled {left} | {right}: two concurrent e-views")
        for site, view in cluster.views().items():
            say(f"  site {site}: {view}")

        # Each side consolidates its own structure while partitioned, so
        # the healed view visibly preserves one sv-set per former side
        # (Property 6.3) instead of a pile of bootstrap singletons.
        for side in (left, right):
            stack = cluster.stack_at(side[0])
            assert stack.eview is not None
            stack.sv_set_merge([ss.ssid for ss in stack.eview.structure.svsets])
        consolidated = await cluster.wait_until(
            lambda c: all(
                s.eview is not None and len(s.eview.structure.svsets) == 1
                for s in c.live_stacks()
            ),
            timeout=timeout,
        )
        if not consolidated:
            raise AssertionError("in-partition SV-SetMerge did not complete")

        cluster.heal()
        await must_settle(cluster, "heal")
        merged_view = str(cluster.stack_at(0).view)
        eview = cluster.stack_at(0).eview
        assert eview is not None
        svsets_after_heal = len(eview.structure.svsets)
        say(f"\nhealed: {merged_view}")
        say(f"  e-view structure: {eview}")
        if svsets_after_heal < 2:
            raise AssertionError(
                f"merge should preserve partition structure; svsets={svsets_after_heal}"
            )

        # SV-SetMerge: one call, sequenced by the coordinator, applied
        # in the same total order at every member.
        merger = cluster.stack_at(0)
        merger.sv_set_merge([ss.ssid for ss in merger.eview.structure.svsets])
        merged = await cluster.wait_until(
            lambda c: all(
                s.eview is not None and len(s.eview.structure.svsets) == 1
                for s in c.live_stacks()
            ),
            timeout=timeout,
        )
        if not merged:
            raise AssertionError("SV-SetMerge did not reach every member")
        svsets_after_merge = len(merger.eview.structure.svsets)
        say(f"\nafter SV-SetMerge: {merger.eview}")

        reports = check_view_synchrony(cluster.recorder) + check_enriched_views(
            cluster.recorder
        )
        violations = sum(len(r.violations) for r in reports)
        say("\nproperty checks on the recorded trace:")
        for report in reports:
            say(f"  {report}")

        stats = cluster.network_stats()
        wire = cluster.transport_stats()
        wall = cluster.now - t0
        say(
            f"\nwire totals: {stats.sent} sent, {stats.delivered} delivered, "
            f"{stats.dropped_partition} destroyed by the firewall, "
            f"{wall:.2f}s wall clock"
        )
        flushes = wire["flushes"]
        per_flush = wire["frames_sent"] / flushes if flushes else 0.0
        codec_summary = ", ".join(
            f"{name} x{count}" for name, count in sorted(wire["codecs"].items())
        ) or "none negotiated"
        say(
            f"transport: {wire['frames_sent']} frames in {flushes} flushes "
            f"({per_flush:.1f} frames/flush, max batch {wire['max_batch']}), "
            f"{wire['bytes_sent']} bytes, {wire['connects']} connects, "
            f"{wire['frames_dropped']} dropped; links: {codec_summary}"
        )
        return DemoResult(
            n_sites=n_sites,
            bootstrap_view=bootstrap_view,
            partition_views=partition_views,
            merged_view=merged_view,
            svsets_after_heal=svsets_after_heal,
            svsets_after_merge=svsets_after_merge,
            property_violations=violations,
            frames_sent=stats.sent,
            frames_delivered=stats.delivered,
            dropped_partition=stats.dropped_partition,
            wall_seconds=wall,
            wire_frames=wire["frames_sent"],
            wire_flushes=wire["flushes"],
            wire_bytes=wire["bytes_sent"],
            codecs=wire["codecs"],
        )


def run_demo(
    n_sites: int = 3,
    seed: int = 0,
    scale: float = 1.0,
    timeout: float = 30.0,
    codec: str = "bin",
    printer=print,
) -> DemoResult:
    """Synchronous entry point with a hard overall deadline."""
    return asyncio.run(
        asyncio.wait_for(
            partition_merge_demo(
                n_sites=n_sites, seed=seed, scale=scale, timeout=timeout,
                codec=codec, printer=printer,
            ),
            timeout=timeout * 4,
        )
    )
