"""Blocking :class:`~repro.ports.ClusterPort` adapter for the realnet.

The simulator's :class:`~repro.runtime.cluster.Cluster` is synchronous —
``settle()`` returns when membership converged, ``recover()`` returns
the fresh stack — while :class:`~repro.realnet.cluster.RealCluster` is
asyncio-native: its waiting methods are coroutines and its lifecycle
actions return tasks.  :class:`RealClusterDriver` erases that skew so
synchronous harness code (workload clients, the CLI, plain tests) can
drive either runtime through the same port:

* it owns a dedicated event-loop thread and boots a
  :class:`RealCluster` on it;
* waiting methods (``settle`` / ``wait_until`` / ``run_for``) block the
  calling thread while the loop keeps running the protocols;
* lifecycle actions submit to the loop and wait for the effect —
  ``recover`` / ``join`` resolve the underlying startup task and return
  the :class:`~repro.vsync.stack.GroupStack`, exactly like the
  simulator;
* ``after`` arms timers on the loop from any thread, so workload
  drivers tick on the cluster's own scheduler (their callbacks run on
  the loop thread, where touching stacks is safe).

Threading rules, kept deliberately simple: every *mutating* call is
routed to the loop thread (directly when already on it — e.g. an armed
fault schedule's action or a workload tick — otherwise via a submitted
coroutine the caller blocks on).  Read-only introspection delegates
without a hop; the GIL makes those dictionary reads safe, and callers
that need a consistent snapshot take it after a blocking wait returns.

``close()`` tears down sockets, stops the loop and joins the thread; it
is idempotent and also runs on context-manager exit and interpreter
exit (daemon thread), so a crashed test cannot leak a loop.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import threading
import time
from typing import Any, Callable, Sequence

from repro.errors import SimulationError
from repro.realnet.cluster import AppFactory, RealCluster, RealClusterConfig
from repro.realnet.wallclock import new_event_loop
from repro.trace.recorder import TraceRecorder
from repro.types import ProcessId, SiteId
from repro.vsync.stack import GroupStack

#: Default hard timeout for individual submitted actions (seconds).
#: Generous — actions are local socket operations; a hang is a bug.
ACTION_TIMEOUT = 30.0


class _LoopEvent:
    """Cancellable-event proxy whose ``cancel`` hops to the loop thread."""

    __slots__ = ("_driver", "_handle")

    def __init__(self, driver: "RealClusterDriver", handle: Any) -> None:
        self._driver = driver
        self._handle = handle

    def cancel(self) -> None:
        self._driver._invoke(self._handle.cancel)


class RealClusterDriver:
    """Synchronous facade over a :class:`RealCluster` on its own loop.

    Satisfies :class:`repro.ports.ClusterPort`.  Build one directly and
    call :meth:`start`, use it as a context manager, or get one already
    started from :func:`repro.ports.make_cluster`::

        with RealClusterDriver(3, config=RealClusterConfig(seed=7)) as cluster:
            assert cluster.settle(timeout=10.0)
            cluster.partition([[0, 1], [2]])
            ...

    All times on this surface are **wall seconds** (the backend time of
    the realnet runtime); scenario-unit quantities must be multiplied by
    :attr:`time_scale` first — :meth:`arm` and the workload drivers do
    that internally.
    """

    #: ClusterPort runtime tag (client/workload code branches on it).
    runtime = "realnet"

    def __init__(
        self,
        n_sites: int,
        app_factory: AppFactory | None = None,
        config: RealClusterConfig | None = None,
    ) -> None:
        self.cluster = RealCluster(n_sites, app_factory=app_factory, config=config)
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._closed = False

    # -- lifecycle -----------------------------------------------------

    def start(self) -> "RealClusterDriver":
        """Spin up the loop thread and boot the cluster; idempotent-safe
        to call once.  Returns ``self`` for chaining."""
        if self._loop is not None:
            raise SimulationError("driver already started")
        self._loop = new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, name="realnet-driver", daemon=True
        )
        self._thread.start()
        self._submit(self.cluster.start(), timeout=ACTION_TIMEOUT)
        return self

    def close(self) -> None:
        """Stop the cluster, the loop and the thread; idempotent."""
        if self._closed or self._loop is None:
            self._closed = True
            return
        self._closed = True
        try:
            self._submit(self.cluster.stop(), timeout=ACTION_TIMEOUT)
        finally:
            self._loop.call_soon_threadsafe(self._loop.stop)
            if self._thread is not None:
                self._thread.join(timeout=ACTION_TIMEOUT)
            self._loop.close()

    def __enter__(self) -> "RealClusterDriver":
        return self.start() if self._loop is None else self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # -- plumbing ------------------------------------------------------

    def _on_loop(self) -> bool:
        return (
            self._loop is not None
            and threading.current_thread() is self._thread
        )

    def _submit(self, coro: Any, timeout: float | None = None) -> Any:
        """Run ``coro`` on the loop thread, block until its result."""
        if self._loop is None:
            raise SimulationError("driver is not running")
        if self._on_loop():  # would deadlock waiting on ourselves
            raise SimulationError(
                "blocking driver call from the loop thread; use the "
                "underlying RealCluster's async surface instead"
            )
        future = asyncio.run_coroutine_threadsafe(coro, self._loop)
        try:
            return future.result(timeout)
        except concurrent.futures.TimeoutError:
            future.cancel()
            raise SimulationError(
                f"realnet action did not complete within {timeout}s"
            ) from None

    def _invoke(self, fn: Callable[..., Any], *args: Any) -> Any:
        """Call ``fn(*args)`` on the loop thread and return its result.

        Direct when already there (fault-schedule actions, workload
        ticks); a blocking round-trip otherwise.
        """
        if self._on_loop():
            return fn(*args)

        async def call() -> Any:
            return fn(*args)

        return self._submit(call(), timeout=ACTION_TIMEOUT)

    # -- time ----------------------------------------------------------

    @property
    def now(self) -> float:
        """Wall seconds since the cluster's scheduler was created."""
        scheduler = self.cluster.scheduler
        return scheduler.now if scheduler is not None else 0.0

    @property
    def time_scale(self) -> float:
        return self.cluster.time_scale

    def run_for(self, duration: float) -> float:
        """Let ``duration`` wall seconds elapse.

        The loop thread keeps running protocols, armed fault schedules
        and workload timers the whole while; the *caller* simply waits.
        Returns the new ``now``.
        """
        time.sleep(max(0.0, duration))
        return self.now

    def settle(self, timeout: float = 10.0, poll: float = 0.02) -> bool:
        """Block until membership converges (or ``timeout`` wall seconds)."""
        return self._submit(
            self.cluster.settle(timeout=timeout, poll=poll),
            timeout=timeout + ACTION_TIMEOUT,
        )

    def wait_until(
        self,
        predicate: Callable[[Any], Any],
        timeout: float = 10.0,
        poll: float = 0.02,
    ) -> bool:
        """Block until ``predicate(driver)`` is truthy (polled on the
        loop thread, so the predicate may touch cluster state freely)."""
        return self._submit(
            self.cluster.wait_until(lambda _c: predicate(self), timeout, poll),
            timeout=timeout + ACTION_TIMEOUT,
        )

    def is_settled(self) -> bool:
        return self.cluster.is_settled()

    def after(self, delay: float, callback: Callable[..., None], *args: Any) -> _LoopEvent:
        """Arm ``callback`` on the cluster's wall-clock scheduler after
        ``delay`` wall seconds; callable from any thread.  The callback
        runs on the loop thread."""
        handle = self._invoke(
            lambda: self.cluster.scheduler.after(delay, callback, *args)
        )
        return _LoopEvent(self, handle)

    # -- lifecycle / environment actions -------------------------------

    def crash(self, site: SiteId) -> None:
        self._invoke(self.cluster.crash, site)

    def recover(self, site: SiteId) -> GroupStack:
        """Restart ``site`` and return the fresh stack once it is up —
        the simulator's synchronous contract, resolved over real
        sockets."""

        async def recover_and_wait() -> GroupStack:
            return await self.cluster.recover(site)

        return self._submit(recover_and_wait(), timeout=ACTION_TIMEOUT)

    def join(self, site: SiteId) -> GroupStack:
        """Grow the universe by ``site`` and return its stack once up."""

        async def join_and_wait() -> GroupStack:
            return await self.cluster.join(site)

        return self._submit(join_and_wait(), timeout=ACTION_TIMEOUT)

    def partition(self, groups: Sequence[Sequence[SiteId]]) -> None:
        self._invoke(self.cluster.partition, groups)

    def heal(self) -> None:
        self._invoke(self.cluster.heal)

    def isolate(self, site: SiteId) -> None:
        self._invoke(self.cluster.isolate, site)

    def arm(self, schedule: Any) -> None:
        """Arm a scenario-unit :class:`~repro.net.faults.FaultSchedule`
        (scaled/shifted by the cluster; see :meth:`RealCluster.arm`)."""
        self._invoke(self.cluster.arm, schedule)

    # -- introspection -------------------------------------------------

    def stack_at(self, site: SiteId) -> GroupStack:
        return self.cluster.stack_at(site)

    def app_at(self, site: SiteId) -> Any:
        return self.cluster.app_at(site)

    def live_stacks(self) -> list[GroupStack]:
        return self.cluster.live_stacks()

    def live_pids(self) -> set[ProcessId]:
        return self.cluster.live_pids()

    def views(self) -> dict[SiteId, str]:
        return self.cluster.views()

    def flight_recorders(self) -> list[Any]:
        """The cluster's live flight recorders (reads are GIL-safe)."""
        return self.cluster.flight_recorders()

    def gather_trace(self) -> TraceRecorder:
        """Merge the per-node recorders on the loop thread (a paused
        instant of the run), returning the global trace."""
        return self._invoke(self.cluster.gather_trace)

    def network_stats(self) -> Any:
        return self._invoke(self.cluster.network_stats)

    def transport_stats(self) -> dict[str, Any]:
        return self._invoke(self.cluster.transport_stats)

    @property
    def metrics(self) -> Any:
        """The cluster's metrics registry (reads are GIL-safe)."""
        return self.cluster.metrics

    def metrics_snapshot(self, source: str = "cluster") -> Any:
        """Snapshot the registry on the loop thread (a paused instant
        of the run, like :meth:`gather_trace`)."""
        return self._invoke(self.cluster.metrics_snapshot, source)
