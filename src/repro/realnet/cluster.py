"""In-process orchestration of a multi-node real-network cluster.

:class:`RealCluster` is the wall-clock sibling of
:class:`repro.runtime.cluster.Cluster`: it owns one shared
:class:`~repro.realnet.wallclock.WallClockScheduler`, one shared trace
recorder and stable store, and one :class:`~repro.realnet.node.RealNode`
per site, each with its own server socket on an ephemeral localhost
port.  Every node runs the unmodified fd/gms/vsync/evs stack; all
inter-node traffic crosses real TCP connections.

The same environment-action surface the simulator exposes is available
here — and because the orchestrator satisfies
:class:`repro.net.faults.FaultTarget` and carries a live
:class:`~repro.net.topology.Topology`, a declarative
:class:`~repro.net.faults.FaultSchedule` can be armed on the wall-clock
scheduler against real sockets unchanged:

* :meth:`crash` kills a stack and closes its sockets;
* :meth:`recover` boots a fresh incarnation at the same site (new
  ephemeral port; peers re-resolve it through the shared address book);
* :meth:`partition` / :meth:`heal` / :meth:`isolate` *firewall* site
  groups: the topology predicate is enforced on both the send and the
  receive side of every node, so frames across a cut are destroyed even
  when the TCP connections stay up;
* :meth:`join` grows the universe by a brand-new site.

``settle()`` is the wall-clock analogue of the simulator's: it polls
(on real time) until every live stack has installed the view its
network component prescribes.  All waiting entry points take hard
timeouts — a wedged cluster reports failure, it cannot hang the caller.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, replace
from typing import Any, Callable, Sequence

from repro.errors import SimulationError
from repro.net.network import NetworkStats
from repro.net.topology import Topology
from repro.obs.instrument import ClusterObs
from repro.obs.registry import MetricsRegistry
from repro.obs.snapshot import MetricsSnapshot
from repro.obs.tracing import FlightRecorder, Tracer
from repro.realnet.node import AppFactory, RealNode, realnet_stack_config
from repro.realnet.transport import wait_for_condition
from repro.realnet.wallclock import WallClockScheduler
from repro.sim.rng import RngStreams
from repro.sim.stable_storage import StableStore
from repro.trace.events import CrashEvent, RecoverEvent
from repro.trace.recorder import TraceRecorder
from repro.types import ProcessId, SiteId
from repro.vsync.stack import GroupStack, StackConfig


@dataclass
class RealClusterConfig:
    """Knobs for a real-network cluster.

    ``scale`` stretches the default timer profile (see
    :func:`~repro.realnet.node.realnet_stack_config`); ``stack``
    overrides it wholesale.  ``loss_prob`` and ``latency`` are the
    injected chaos knobs, applied at every sender on top of whatever
    the kernel's loopback actually does.  ``codec`` picks the wire
    format every node *prefers* (``"bin"`` — the compact default — or
    ``"json"`` as a debug/compat mode; the actual format is negotiated
    per connection, so mixed clusters interoperate).  ``flush_tick``
    overrides the links' micro-batching flush tick (``0.0`` disables
    the wait; ``None`` keeps the transport default), and ``batch_bytes``
    the per-flush byte cap (``0`` means one frame per flush — the
    unbatched data path, kept as a benchmark baseline).
    """

    seed: int = 0
    loss_prob: float = 0.0
    latency: Any = None
    scale: float = 1.0
    stack: StackConfig | None = None
    host: str = "127.0.0.1"
    detailed_stats: bool = True
    codec: str = "bin"
    flush_tick: float | None = None
    batch_bytes: int | None = None
    trace_level: str = "full"
    trace_capacity: int | None = None
    quiet: bool = True
    #: Gate the in-stack observability hooks (the registry and its
    #: callback gauges always exist; see ClusterConfig.metrics).
    metrics: bool = True
    #: Attach a causal tracer + flight recorder to the hooks (implies
    #: the hooks are live even with ``metrics=False``); see
    #: ClusterConfig.tracing.
    tracing: bool = False
    flight_budget: int = 256 * 1024
    #: 1-in-N sampling gate for uncaused root spans (workload
    #: multicasts); caused spans are always traced.
    trace_sample: int = 16
    #: Failure-detection plane override: ``"heartbeat"`` / ``"gossip"``
    #: (``None`` keeps the stack profile's choice).  Same surface as
    #: the simulator's ClusterConfig, so a scale profile moves between
    #: runtimes unchanged; with gossip remember ``fd_timeout`` must
    #: cover an epidemic round, not one hop (docs/scaling.md).
    fd_mode: str | None = None
    gossip_fanout: int | None = None

    def stack_config(self) -> StackConfig:
        cfg = self.stack if self.stack is not None else realnet_stack_config(self.scale)
        if self.fd_mode is not None:
            cfg = replace(cfg, fd_mode=self.fd_mode)
        if self.gossip_fanout is not None:
            cfg = replace(cfg, gossip_fanout=self.gossip_fanout)
        return cfg


class RealCluster:
    """A set of localhost sites running group stacks over real TCP."""

    def __init__(
        self,
        n_sites: int,
        app_factory: AppFactory | None = None,
        config: RealClusterConfig | None = None,
    ) -> None:
        if n_sites < 1:
            raise SimulationError("cluster needs at least one site")
        self.config = config or RealClusterConfig()
        self.app_factory = app_factory
        self.topology = Topology(range(n_sites))
        self.address_book: dict[SiteId, tuple[str, int]] = {}
        self.nodes: dict[SiteId, RealNode] = {}
        self.scheduler: WallClockScheduler | None = None
        # Each node records its own history (as a real deployment
        # would); the orchestrator keeps one recorder for environment
        # events (crash/recover) and retains the recorders of replaced
        # incarnations so gather_trace() can merge the full execution.
        self._env_recorder = TraceRecorder(
            level=self.config.trace_level,
            capacity=self.config.trace_capacity,
            label="env",
        )
        self._retired_recorders: list[TraceRecorder] = []
        self.store = StableStore()
        self.rng = RngStreams(self.config.seed)
        self._incarnation: dict[SiteId, int] = {}
        self._bg: set[asyncio.Task] = set()
        self._started = False
        # One registry shared by every co-located node: the nodes share
        # one wall-clock scheduler, so cross-node spans (multicast on
        # one node, delivery on another) are measurable on one clock.
        self.metrics = MetricsRegistry(
            clock=lambda: self.now, runtime="realnet"
        )
        # One flight recorder and tracer for all co-located nodes: they
        # share one wall-clock scheduler (one time base), exactly like
        # the shared metrics registry above.  The wall epoch is pinned
        # in start(), when the scheduler's t=0 is established.
        self.flight: FlightRecorder | None = None
        tracer = None
        if self.config.tracing:
            self.flight = FlightRecorder(
                "cluster", "realnet",
                budget=self.config.flight_budget,
                epoch=time.time(),
            )
            tracer = Tracer(
                self.flight,
                lambda: self.now,
                root_sample=self.config.trace_sample,
            )
        self.obs = (
            ClusterObs(self.metrics, tracer)
            if (self.config.metrics or tracer is not None)
            else None
        )
        self._register_collectors()

    def _register_collectors(self) -> None:
        """Callback gauges over counters the transport already keeps.

        Same ``net_*`` metric names as the simulator's collectors, so
        sim and realnet snapshots of one workload compare row by row;
        the ``transport_*`` series are realnet-only (sockets/frames
        have no simulator analogue).
        """
        reg = self.metrics
        for name, help_text, key in (
            ("net_messages_sent_total", "Messages offered to the network", "sent"),
            ("net_messages_delivered_total", "Messages delivered by the network",
             "delivered"),
        ):
            reg.gauge_callback(
                name, help_text,
                (lambda k: lambda: float(getattr(self.network_stats(), k)))(key),
            )
        for reason, key in (
            ("partition", "dropped_partition"),
            ("loss", "dropped_loss"),
            ("dead", "dropped_dead"),
        ):
            reg.gauge_callback(
                "net_messages_dropped_total", "Messages dropped, by reason",
                (lambda k: lambda: float(getattr(self.network_stats(), k)))(key),
                ("reason",), (reason,),
            )
        for key in ("frames_sent", "bytes_sent", "frames_received",
                    "bytes_received", "frames_dropped"):
            reg.gauge_callback(
                f"transport_{key}_total", f"Transport {key.replace('_', ' ')}",
                (lambda k: lambda: float(self.transport_stats().get(k, 0)))(key),
            )

    def metrics_snapshot(self, source: str = "cluster") -> MetricsSnapshot:
        """Point-in-time metrics copy (the ClusterPort accessor)."""
        return self.metrics.snapshot(source)

    # -- lifecycle -----------------------------------------------------

    async def start(self) -> "RealCluster":
        """Bring every transport up, then boot every stack."""
        if self._started:
            raise SimulationError("cluster already started")
        self._started = True
        self.scheduler = WallClockScheduler()
        if self.flight is not None:
            # Wall time of the scheduler's t=0: lets `repro obs trace`
            # merge this cluster's dump with other nodes' on one clock.
            self.flight.epoch = time.time() - self.scheduler.now
        for site in sorted(self.topology.sites):
            node = self._make_node(site)
            await node.start_transport()
        for site in sorted(self.nodes):
            self.nodes[site].start_stack()
        return self

    async def stop(self) -> None:
        """Tear everything down; idempotent."""
        for task in list(self._bg):
            task.cancel()
        for task in list(self._bg):
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        self._bg.clear()
        for node in list(self.nodes.values()):
            await node.stop()

    async def __aenter__(self) -> "RealCluster":
        return await self.start()

    async def __aexit__(self, *exc: Any) -> None:
        await self.stop()

    def _make_node(self, site: SiteId) -> RealNode:
        incarnation = self._incarnation.get(site, -1) + 1
        self._incarnation[site] = incarnation
        cfg = self.config
        old = self.nodes.get(site)
        if old is not None:
            self._retired_recorders.append(old.recorder)
        node = RealNode(
            ProcessId(site, incarnation),
            self.address_book,
            scheduler=self.scheduler,
            storage=self.store.site(site),
            recorder=TraceRecorder(
                level=cfg.trace_level,
                capacity=cfg.trace_capacity,
                label=f"site{site}/inc{incarnation}",
            ),
            app_factory=self.app_factory,
            stack_config=cfg.stack_config(),
            universe=lambda: set(self.topology.sites),
            connectivity=self.topology.allows,
            loss_prob=cfg.loss_prob,
            latency=cfg.latency,
            rng=self.rng,
            host=cfg.host,
            port=0,
            detailed_stats=cfg.detailed_stats,
            codec=cfg.codec,
            flush_tick=cfg.flush_tick,
            batch_bytes=cfg.batch_bytes,
            quiet=cfg.quiet,
            obs=self.obs,
            metrics=self.metrics,
            metrics_source="cluster",
            flight=self.flight,
        )
        self.nodes[site] = node
        return node

    def _spawn(self, coro: Any) -> asyncio.Task:
        task = asyncio.get_running_loop().create_task(coro)
        self._bg.add(task)
        task.add_done_callback(self._bg.discard)
        return task

    # -- environment actions (FaultTarget) -----------------------------

    def crash(self, site: SiteId) -> None:
        """Kill the process at ``site`` and close its sockets."""
        node = self.nodes.get(site)
        if node is None or node.stack is None or not node.stack.alive:
            return
        node.stack.crash()
        if self.scheduler is not None:
            self._env_recorder.record(
                CrashEvent(time=self.scheduler.now, pid=node.stack.pid)
            )
            if self.obs is not None:
                self.obs.process_crashed(node.stack.pid, self.scheduler.now)
        self._spawn(node.network.stop())

    def recover(self, site: SiteId) -> "asyncio.Task[GroupStack]":
        """Restart ``site`` under a fresh incarnation on a fresh port.

        Returns the startup task; **awaiting it yields the fresh**
        :class:`~repro.vsync.stack.GroupStack` — the realnet analogue of
        the simulator's synchronous ``recover`` return value, and what
        the blocking :class:`~repro.realnet.driver.RealClusterDriver`
        resolves before returning.  Environment-action callers (armed
        fault schedules) may ignore the task; it is tracked and
        cancelled by :meth:`stop`.
        """
        node = self.nodes.get(site)
        if node is not None and node.alive:
            raise SimulationError(f"site {site} is up; cannot recover")
        return self._spawn(self._recover(site))

    async def _recover(self, site: SiteId) -> GroupStack:
        old = self.nodes.get(site)
        if old is not None:
            await old.network.stop()
        node = self._make_node(site)
        await node.start_transport()
        stack = node.start_stack()
        self._env_recorder.record(
            RecoverEvent(time=self.now, pid=stack.pid, site=site)
        )
        return stack

    def join(self, site: SiteId) -> "asyncio.Task[GroupStack]":
        """Add a brand-new site to the universe and boot it.

        Like :meth:`recover`, returns the startup task, which resolves
        to the new site's :class:`~repro.vsync.stack.GroupStack` once
        its transport is up and its stack is registered.
        """
        self.topology.add_site(site)
        return self._spawn(self._join(site))

    async def _join(self, site: SiteId) -> GroupStack:
        node = self._make_node(site)
        await node.start_transport()
        return node.start_stack()

    # -- connectivity (firewalling) ------------------------------------

    def partition(self, groups: Sequence[Sequence[SiteId]]) -> None:
        """Firewall the universe into the given site groups."""
        self.topology.partition(groups)

    def heal(self) -> None:
        self.topology.heal()

    def isolate(self, site: SiteId) -> None:
        self.topology.isolate(site)

    # -- waiting -------------------------------------------------------

    @property
    def now(self) -> float:
        return self.scheduler.now if self.scheduler is not None else 0.0

    @property
    def time_scale(self) -> float:
        """Wall seconds per scenario unit.

        The realnet timer profile (:func:`~repro.realnet.node.
        realnet_stack_config`) maps the simulator's canonical ratios
        onto loopback at ~0.01 s per simulated unit at ``scale=1.0``
        (fd-interval 5 units ↔ 50 ms); fault schedules and workload
        intervals written in scenario units are scaled by the same
        factor so faults land at the same point of protocol time on
        both backends.
        """
        return 0.01 * self.config.scale

    def arm(self, schedule: Any) -> None:
        """Arm a :class:`~repro.net.faults.FaultSchedule` against real
        sockets.

        Scenario-unit action times are scaled by :attr:`time_scale` and
        shifted to be relative to ``now`` — a schedule authored for the
        simulator runs unchanged here.
        """
        if self.scheduler is None:
            raise SimulationError("cluster is not started; cannot arm")
        schedule.scaled(self.time_scale).shifted(self.now).arm(self.scheduler, self)

    async def settle(self, timeout: float = 10.0, poll: float = 0.02) -> bool:
        """Wait (on the wall clock) for membership to converge."""
        return await wait_for_condition(self.is_settled, timeout, poll)

    async def wait_until(
        self,
        predicate: Callable[["RealCluster"], Any],
        timeout: float = 10.0,
        poll: float = 0.02,
    ) -> bool:
        return await wait_for_condition(lambda: predicate(self), timeout, poll)

    def is_settled(self) -> bool:
        """Same convergence definition as the simulator's cluster."""
        live = self.live_stacks()
        for stack in live:
            if stack.view is None or stack.is_flushing:
                return False
            component = self.topology.component_of(stack.pid.site)
            expected = {s.pid for s in live if s.pid.site in component}
            if stack.view.members != expected:
                return False
            for other in live:
                if (
                    other.pid in expected
                    and other.current_view_id() != stack.current_view_id()
                ):
                    return False
        return True

    # -- queries -------------------------------------------------------

    def stack_at(self, site: SiteId) -> GroupStack:
        node = self.nodes.get(site)
        if node is None or node.stack is None:
            raise SimulationError(f"no process was ever started at site {site}")
        return node.stack

    def live_stacks(self) -> list[GroupStack]:
        return [
            n.stack
            for n in self.nodes.values()
            if n.stack is not None and n.stack.alive
        ]

    def live_pids(self) -> set[ProcessId]:
        return {s.pid for s in self.live_stacks()}

    def views(self) -> dict[SiteId, str]:
        return {
            site: str(node.stack.view)
            for site, node in sorted(self.nodes.items())
            if node.stack is not None and node.stack.alive
        }

    def app_at(self, site: SiteId) -> Any:
        """The application object of the current incarnation at ``site``."""
        node = self.nodes.get(site)
        if node is None or node.app is None:
            raise SimulationError(f"no process was ever started at site {site}")
        return node.app

    def flight_recorders(self) -> list[FlightRecorder]:
        """Live flight recorders (one, shared by the co-located nodes)."""
        return [self.flight] if self.flight is not None else []

    def node_recorders(self) -> list[TraceRecorder]:
        """Every per-node recorder: live incarnations plus retired ones."""
        return self._retired_recorders + [
            node.recorder for _, node in sorted(self.nodes.items())
        ]

    def gather_trace(self) -> TraceRecorder:
        """Merge every node's locally recorded history (plus the
        orchestrator's crash/recover events) into one globally ordered
        trace — the input the property checkers expect.  All recorders
        share this cluster's wall-clock scheduler, so their timestamps
        are directly comparable; ordering is
        :meth:`~repro.trace.recorder.TraceRecorder.merge`'s
        ``(time, pid, seq)``.
        """
        return TraceRecorder.merge(self._env_recorder, *self.node_recorders())

    @property
    def recorder(self) -> TraceRecorder:
        """The merged execution history (see :meth:`gather_trace`).

        Kept as a property for source compatibility with the era of one
        shared recorder; each access re-merges, so grab it once after
        the run quiesces rather than inside a hot loop.
        """
        return self.gather_trace()

    def network_stats(self) -> NetworkStats:
        """Aggregate wire counters over every node (live and dead)."""
        total = NetworkStats(detailed=self.config.detailed_stats)
        for node in self.nodes.values():
            stats = node.network.stats
            total.sent += stats.sent
            total.delivered += stats.delivered
            total.dropped_partition += stats.dropped_partition
            total.dropped_loss += stats.dropped_loss
            total.dropped_dead += stats.dropped_dead
            for name, count in stats.by_type.items():
                total.by_type[name] = total.by_type.get(name, 0) + count
        return total

    def transport_stats(self) -> dict[str, Any]:
        """Aggregate link/server counters over every node (live and dead).

        Sums frame, flush, byte and connection counters; ``max_batch`` /
        ``max_frames_per_read`` are cluster-wide maxima and ``codecs``
        counts live links by negotiated wire format.
        """
        total: dict[str, Any] = {}
        codecs: dict[str, int] = {}
        for node in self.nodes.values():
            stats = node.network.transport_stats()
            for name, count in stats.pop("codecs").items():
                codecs[name] = codecs.get(name, 0) + count
            for key, value in stats.items():
                if key in ("max_batch", "max_frames_per_read"):
                    total[key] = max(total.get(key, 0), value)
                else:
                    total[key] = total.get(key, 0) + value
        total["codecs"] = codecs
        return total
