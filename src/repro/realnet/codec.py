"""Wire codec: protocol payloads <-> length-prefixed JSON frames.

The protocol stacks exchange frozen dataclasses built from a small
vocabulary of shapes — identifiers, tuples, frozensets, mappings and
opaque application payloads.  The codec walks that shape recursively and
emits plain JSON with explicit type tags, so a frame is self-describing
and debuggable with ``jq`` on a packet capture:

===========================  =============================================
Python value                 JSON encoding
===========================  =============================================
None / bool / int / str      itself
float                        ``{"__f__": value-or-"inf"/"-inf"/"nan"}``
list                         ``[...]`` (elements encoded)
tuple                        ``{"__t__": [...]}``
frozenset / set              ``{"__fs__"/"__s__": [...]}``
dict                         ``{"__d__": [[key, value], ...]}``
registered dataclass         ``{"__c__": "ClassName", "f": {field: ...}}``
===========================  =============================================

Dicts are encoded as pair lists because protocol mappings are keyed by
identifiers (e.g. ``VcInstall.predecessors`` maps :class:`ViewId` to
plans), which JSON objects cannot express.  Floats are tagged so ints
and floats survive the round trip distinguishably and the non-finite
values JSON rejects still travel.

Every wire dataclass of the stack is registered here by class name; a
deployment embedding its own application payload types registers them
with :func:`register_payload` on both ends.  Decoding an unregistered
tag raises :class:`~repro.errors.CodecError` — a version-skewed or
malicious peer cannot instantiate arbitrary classes.

Frames on the socket are ``4-byte big-endian length + UTF-8 JSON body``,
capped at :data:`MAX_FRAME_BYTES` (a corrupt length prefix must not make
a reader allocate gigabytes).  See docs/protocol.md ("Wire format").
"""

from __future__ import annotations

import json
import math
import struct
from dataclasses import fields, is_dataclass
from typing import Any

from repro.errors import CodecError

#: Hard ceiling on one frame's JSON body (16 MiB).
MAX_FRAME_BYTES = 16 * 1024 * 1024

_LEN = struct.Struct(">I")

_REGISTRY: dict[str, type] = {}


def register_payload(cls: type) -> type:
    """Register a dataclass for wire transport (usable as a decorator).

    Registration is by ``__name__``; both peers must register the same
    name to the same field layout.  Returns ``cls`` unchanged.
    """
    if not is_dataclass(cls):
        raise CodecError(f"only dataclasses can be wire payloads: {cls!r}")
    existing = _REGISTRY.get(cls.__name__)
    if existing is not None and existing is not cls:
        raise CodecError(f"payload name collision: {cls.__name__}")
    _REGISTRY[cls.__name__] = cls
    return cls


def registered_payloads() -> dict[str, type]:
    """Snapshot of the registry (name -> class), for docs and tests."""
    return dict(_REGISTRY)


# -- value codec ----------------------------------------------------------

#: Per-class cache: field names whose declared default is ``None``.
#: Such fields are elided from the encoding when their value is None —
#: the decoder already tolerates missing fields — so optional context
#: fields (tracing) cost zero wire bytes while unused.
_NONE_DEFAULT_FIELDS: dict[type, frozenset] = {}


def _none_default_fields(cls: type) -> frozenset:
    cached = _NONE_DEFAULT_FIELDS.get(cls)
    if cached is None:
        cached = _NONE_DEFAULT_FIELDS[cls] = frozenset(
            f.name for f in fields(cls) if f.default is None
        )
    return cached


def encode_value(value: Any) -> Any:
    """Encode ``value`` into the JSON-safe tagged representation."""
    if value is None or value is True or value is False:
        return value
    if isinstance(value, int):
        return value
    if isinstance(value, float):
        if math.isfinite(value):
            return {"__f__": value}
        return {"__f__": "nan" if math.isnan(value) else ("inf" if value > 0 else "-inf")}
    if isinstance(value, str):
        return value
    if isinstance(value, list):
        return [encode_value(item) for item in value]
    if isinstance(value, tuple):
        return {"__t__": [encode_value(item) for item in value]}
    if isinstance(value, frozenset):
        return {"__fs__": [encode_value(item) for item in value]}
    if isinstance(value, set):
        return {"__s__": [encode_value(item) for item in value]}
    if isinstance(value, dict):
        return {"__d__": [[encode_value(k), encode_value(v)] for k, v in value.items()]}
    if is_dataclass(value) and not isinstance(value, type):
        name = type(value).__name__
        if _REGISTRY.get(name) is not type(value):
            raise CodecError(
                f"unregistered dataclass on the wire: {type(value).__module__}.{name}"
            )
        elidable = _none_default_fields(type(value))
        encoded_fields = {}
        for f in fields(value):
            item = getattr(value, f.name)
            if item is None and f.name in elidable:
                continue
            encoded_fields[f.name] = encode_value(item)
        return {"__c__": name, "f": encoded_fields}
    raise CodecError(f"cannot encode {type(value).__name__} value for the wire: {value!r}")


def decode_value(value: Any) -> Any:
    """Inverse of :func:`encode_value`."""
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):  # a bare float only via hand-written JSON
        return value
    if isinstance(value, list):
        return [decode_value(item) for item in value]
    if isinstance(value, dict):
        if "__f__" in value:
            raw = value["__f__"]
            return float(raw)
        if "__t__" in value:
            return tuple(decode_value(item) for item in value["__t__"])
        if "__fs__" in value:
            return frozenset(decode_value(item) for item in value["__fs__"])
        if "__s__" in value:
            return {decode_value(item) for item in value["__s__"]}
        if "__d__" in value:
            return {decode_value(k): decode_value(v) for k, v in value["__d__"]}
        if "__c__" in value:
            name = value["__c__"]
            cls = _REGISTRY.get(name)
            if cls is None:
                raise CodecError(f"unknown wire payload type: {name!r}")
            raw_fields = value.get("f", {})
            known = {f.name for f in fields(cls)}
            unknown = set(raw_fields) - known
            if unknown:
                raise CodecError(f"{name}: unknown wire fields {sorted(unknown)}")
            return cls(**{k: decode_value(v) for k, v in raw_fields.items()})
        raise CodecError(f"untagged JSON object on the wire: {sorted(value)[:4]}")
    raise CodecError(f"cannot decode wire value of type {type(value).__name__}")


# -- frame codec ----------------------------------------------------------


def encode_frame(frame: dict[str, Any]) -> bytes:
    """Serialize one frame dict to ``length-prefix + JSON`` bytes."""
    body = json.dumps(frame, separators=(",", ":"), ensure_ascii=False).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise CodecError(f"frame of {len(body)} bytes exceeds cap {MAX_FRAME_BYTES}")
    return _LEN.pack(len(body)) + body


def decode_frame_body(body: bytes) -> dict[str, Any]:
    """Parse one frame body; raises :class:`CodecError` on garbage."""
    try:
        frame = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CodecError(f"undecodable frame body: {exc}") from None
    if not isinstance(frame, dict):
        raise CodecError("frame body is not a JSON object")
    return frame


async def read_frame(reader: Any) -> dict[str, Any] | None:
    """Read one frame from an :class:`asyncio.StreamReader`.

    Returns None on clean EOF at a frame boundary; raises
    :class:`CodecError` on an oversized length prefix and lets socket
    errors propagate to the caller's reconnect logic.
    """
    import asyncio

    try:
        prefix = await reader.readexactly(_LEN.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean EOF between frames
        raise CodecError("connection closed mid-length-prefix") from None
    (length,) = _LEN.unpack(prefix)
    if length > MAX_FRAME_BYTES:
        raise CodecError(f"frame length {length} exceeds cap {MAX_FRAME_BYTES}")
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError:
        raise CodecError("connection closed mid-frame") from None
    return decode_frame_body(body)


# -- registry population --------------------------------------------------
#
# Every message the fd/gms/vsync/evs stacks put on the wire, plus the
# identifier and structure types they embed.  Importing this module is
# enough to make a node able to talk the full protocol.


def _register_stack_payloads() -> None:
    from repro.evs.eview import EvDelta, EView, EViewStructure, Subview, SvSet
    from repro.evs.messages import EvChange, EvRepairReq, EvReq
    from repro.fd.gossip import GossipDigest, GossipEntry
    from repro.fd.heartbeat import Heartbeat
    from repro.gms.messages import (
        Leave,
        PredecessorPlan,
        VcAbort,
        VcFlush,
        VcFlushBatch,
        VcInstall,
        VcNack,
        VcPrepare,
        VcPropose,
    )
    from repro.gms.view import View
    from repro.types import Message, MessageId, ProcessId, SubviewId, SvSetId, ViewId
    from repro.vsync.channel import RetransmitRequest
    from repro.vsync.stability import StabilityNotice, StabilityReport
    from repro.vsync.stack import DirectPayload, SubviewScoped

    for cls in (
        ProcessId, ViewId, MessageId, SubviewId, SvSetId, Message,
        View, Subview, SvSet, EvDelta, EViewStructure, EView,
        Heartbeat, GossipEntry, GossipDigest,
        VcPropose, VcPrepare, VcNack, VcFlush, VcFlushBatch, PredecessorPlan,
        VcInstall, VcAbort, Leave,
        EvReq, EvChange, EvRepairReq,
        StabilityReport, StabilityNotice, RetransmitRequest,
        DirectPayload, SubviewScoped,
    ):
        register_payload(cls)


def _register_harness_payloads() -> None:
    """Everything the group-object layer and the example applications
    put on the wire: settlement state transfer, bulk two-piece
    transfer, the operation envelope and the apps' request/reply
    types.  Registered here so workloads run over real sockets exactly
    as they do on the simulator."""
    from repro.apps.lock_manager import _AcquireReq, _Denied, _ReleaseReq
    from repro.apps.replicated_db import _LookupReply, _LookupRequest
    from repro.apps.replicated_file import _WriteAck
    from repro.core.group_object import _OpMsg
    from repro.core.settlement import StateAdopt, StateOffer, StateRequest
    from repro.core.state_transfer import TAck, TChunk, TOffer, TResume, TSmallPiece

    for cls in (
        StateRequest, StateOffer, StateAdopt,
        TChunk, TAck, TSmallPiece, TOffer, TResume,
        _OpMsg,
        _AcquireReq, _ReleaseReq, _Denied,
        _LookupRequest, _LookupReply,
        _WriteAck,
    ):
        register_payload(cls)


def _register_obs_payloads() -> None:
    """Metric-snapshot and tracing payloads for the 0x02 obs frames:
    registered with both wire codecs so a watch/trace client can poll
    mixed-codec clusters, and so :class:`~repro.obs.tracing.TraceCtx`
    can ride inside any protocol payload."""
    from repro.obs.snapshot import MetricSample, MetricsSnapshot
    from repro.obs.tracing import SpanEvent, TraceCtx, TraceDump

    for cls in (MetricSample, MetricsSnapshot, TraceCtx, SpanEvent, TraceDump):
        register_payload(cls)


def _register_client_payloads() -> None:
    """The client service tier: the store's replicated types (version
    provenance, chain entries, its quorum ack) and the external
    request/reply vocabulary.  Registered at import like every other
    group so the bin1 schema fingerprint is identical across
    processes."""
    from repro.apps.versioned_store import _StoreAck
    from repro.client.protocol import ClientReply, ClientRequest
    from repro.core.versioning import Provenance, VersionEntry

    for cls in (Provenance, VersionEntry, _StoreAck, ClientRequest, ClientReply):
        register_payload(cls)


_register_stack_payloads()
_register_harness_payloads()
_register_obs_payloads()
_register_client_payloads()
