"""Sim vs realnet: the same workloads on both runtimes, side by side.

Two matched workloads run once per runtime, with identical protocol
code (the fd/gms/vsync/evs stacks are shared — only the scheduler and
network ports differ):

* **bootstrap** — cold start of ``n`` sites until membership settles on
  the full view.
* **steady multicast** — after settling, every site issues ``rounds``
  view-synchronous multicasts on a fixed pace; the run ends when every
  member has delivered every message.
* **checked workload** — the full harness loop through the
  :class:`~repro.ports.ClusterPort`: the figure-2 partition/heal
  schedule plus a multicast + query client mix on six sites, via
  :func:`~repro.workload.runner.run_checked_workload`, ending with the
  Section 2/6 property checks over the (merged) trace.  One code path,
  both runtimes; the table reports how many events the checkers
  consumed, how long checking took, and the violation count (zero).

For each runtime the table reports wall seconds, application-level
delivery throughput (deliveries/sec of wall time), and the per-message
delivery latency distribution (send to remote ``on_message``).  The
two latency columns are *not* the same quantity — the simulator's is
virtual units under the model's latency distribution, the realnet one
is real microseconds through the kernel loopback plus the JSON codec —
which is exactly the point of printing them together: the simulator
models ordering and failure interleavings, not wall-clock cost, while
realnet pays for real sockets, real timers and real serialization.

Results are recorded in ``EXPERIMENTS.md`` ("Realnet: the stacks over
real sockets").  This harness never touches ``BENCH_PERF.json`` — that
file belongs to the simulator regression harness
(:mod:`repro.bench.perf`).

Run::

    python -m repro.bench.realnet_compare           # full matrix
    python -m repro.bench.realnet_compare --quick   # CI smoke: n=3, few rounds
"""

from __future__ import annotations

import argparse
import asyncio
import time
from typing import Any, Callable

from repro.bench.harness import Table
from repro.realnet.cluster import RealCluster, RealClusterConfig
from repro.runtime.cluster import Cluster, ClusterConfig
from repro.types import MessageId, ProcessId
from repro.vsync.events import GroupApplication

SEED = 7
SETTLE_TIMEOUT = 60.0
#: Pace between multicast rounds: virtual units (sim) / seconds (realnet).
#: 2.0 sim units at the realnet timer scale (~10 ms/unit) is 0.02 s.
SIM_TICK = 2.0
REAL_TICK = 0.02


class _Recorder(GroupApplication):
    """Counts deliveries and samples send-to-deliver latency."""

    def __init__(self, now: Callable[[], float]) -> None:
        super().__init__()
        self._now = now
        self.delivered = 0
        self.latencies: list[float] = []

    def on_message(self, sender: ProcessId, payload: Any, msg_id: MessageId) -> None:
        self.delivered = self.delivered + 1
        if sender != self.stack.pid:
            self.latencies.append(self._now() - payload[1])


def _latency_stats(apps: list[_Recorder]) -> dict[str, float]:
    samples = sorted(s for app in apps for s in app.latencies)
    if not samples:
        return {"lat_mean": 0.0, "lat_p50": 0.0, "lat_p95": 0.0}
    return {
        "lat_mean": sum(samples) / len(samples),
        "lat_p50": samples[len(samples) // 2],
        "lat_p95": samples[min(len(samples) - 1, int(len(samples) * 0.95))],
    }


# ---------------------------------------------------------------------------
# Simulator side
# ---------------------------------------------------------------------------


def sim_bootstrap(n: int) -> dict[str, Any]:
    t0 = time.perf_counter()
    cluster = Cluster(n, config=ClusterConfig(seed=SEED))
    settled = cluster.settle(timeout=SETTLE_TIMEOUT)
    wall = time.perf_counter() - t0
    assert settled
    return {"runtime": "sim", "workload": f"bootstrap_n{n}", "wall_s": wall,
            "virtual": cluster.now}


def sim_steady(n: int, rounds: int) -> dict[str, Any]:
    apps: list[_Recorder] = []
    box: dict[str, Cluster] = {}

    def factory(pid: ProcessId) -> _Recorder:
        app = _Recorder(lambda: box["cluster"].now)
        apps.append(app)
        return app

    cluster = Cluster(n, app_factory=factory, config=ClusterConfig(seed=SEED))
    box["cluster"] = cluster
    cluster.settle(timeout=SETTLE_TIMEOUT)
    expected = n * n * rounds
    t0 = time.perf_counter()
    for _ in range(rounds):
        for stack in cluster.stacks.values():
            stack.multicast(("w", cluster.now))
        cluster.run_for(SIM_TICK)
    cluster.run_until(lambda c: sum(a.delivered for a in apps) >= expected,
                      timeout=SETTLE_TIMEOUT)
    wall = time.perf_counter() - t0
    delivered = sum(a.delivered for a in apps)
    assert delivered >= expected, f"only {delivered}/{expected} delivered"
    return {"runtime": "sim", "workload": f"steady_n{n}x{rounds}",
            "wall_s": wall, "delivered": delivered,
            "msgs_per_s": delivered / wall if wall > 0 else 0.0,
            **_latency_stats(apps)}


# ---------------------------------------------------------------------------
# Realnet side
# ---------------------------------------------------------------------------


async def _real_bootstrap(n: int) -> dict[str, Any]:
    t0 = time.perf_counter()
    async with RealCluster(n, config=RealClusterConfig(seed=SEED)) as cluster:
        settled = await cluster.settle(timeout=SETTLE_TIMEOUT)
        wall = time.perf_counter() - t0
        assert settled, cluster.views()
        return {"runtime": "realnet", "workload": f"bootstrap_n{n}", "wall_s": wall}


async def _real_steady(n: int, rounds: int) -> dict[str, Any]:
    apps: list[_Recorder] = []

    def factory(pid: ProcessId) -> _Recorder:
        app = _Recorder(time.perf_counter)
        apps.append(app)
        return app

    config = RealClusterConfig(seed=SEED, trace_level="none")
    async with RealCluster(n, app_factory=factory, config=config) as cluster:
        assert await cluster.settle(timeout=SETTLE_TIMEOUT), cluster.views()
        expected = n * n * rounds
        t0 = time.perf_counter()
        for _ in range(rounds):
            for stack in cluster.live_stacks():
                stack.multicast(("w", time.perf_counter()))
            await asyncio.sleep(REAL_TICK)
        done = await cluster.wait_until(
            lambda c: sum(a.delivered for a in apps) >= expected,
            timeout=SETTLE_TIMEOUT,
        )
        wall = time.perf_counter() - t0
        delivered = sum(a.delivered for a in apps)
        assert done, f"only {delivered}/{expected} delivered"
        return {"runtime": "realnet", "workload": f"steady_n{n}x{rounds}",
                "wall_s": wall, "delivered": delivered,
                "msgs_per_s": delivered / wall if wall > 0 else 0.0,
                **_latency_stats(apps)}


# ---------------------------------------------------------------------------
# Checked workload through the ClusterPort (identical code, both runtimes)
# ---------------------------------------------------------------------------


def checked_workload(runtime: str, n: int = 6) -> dict[str, Any]:
    from repro.apps.replicated_db import ParallelLookupDatabase
    from repro.ports import make_cluster
    from repro.workload.clients import MulticastClient, QueryClient
    from repro.workload.runner import run_checked_workload
    from repro.workload.scenarios import figure2_scenario

    def db_factory(pid: ProcessId) -> ParallelLookupDatabase:
        return ParallelLookupDatabase({"all": lambda k, v: True})

    t0 = time.perf_counter()
    cluster = make_cluster(runtime, n, app_factory=db_factory, seed=SEED)
    try:
        result = run_checked_workload(
            cluster,
            figure2_scenario(),
            client_factories=[
                lambda c: MulticastClient(c, interval=20.0),
                lambda c: QueryClient(c, interval=30.0),
            ],
        )
    finally:
        cluster.close()
    wall = time.perf_counter() - t0
    assert result.settled, "checked workload failed to settle"
    return {"runtime": runtime, "workload": f"checked_fig2_n{n}",
            "wall_s": wall, "trace_events": len(result.trace),
            "events_checked": result.events_checked,
            "check_wall_s": result.check_wall_s,
            "violations": len(result.violations)}


# ---------------------------------------------------------------------------
# Harness
# ---------------------------------------------------------------------------


def run_matrix(quick: bool = False) -> list[dict[str, Any]]:
    sizes = (3,) if quick else (3, 5)
    rounds = 5 if quick else 40
    rows: list[dict[str, Any]] = []
    for n in sizes:
        rows.append(sim_bootstrap(n))
        rows.append(asyncio.run(asyncio.wait_for(_real_bootstrap(n), 120)))
    for n in sizes:
        rows.append(sim_steady(n, rounds))
        rows.append(asyncio.run(asyncio.wait_for(_real_steady(n, rounds), 300)))
    for runtime in ("sim", "realnet"):
        rows.append(checked_workload(runtime))
    return rows


def report(rows: list[dict[str, Any]]) -> Table:
    table = Table(
        "sim vs realnet: same stacks, different runtime "
        "(latency: virtual units for sim, milliseconds for realnet)",
        ["workload", "runtime", "wall s", "delivered", "msgs/s",
         "lat p50", "lat p95"],
    )
    for row in rows:
        if "events_checked" in row:
            continue  # checked-workload rows get their own table
        is_real = row["runtime"] == "realnet"
        unit = 1000.0 if is_real else 1.0  # realnet latencies in ms
        table.add(
            row["workload"],
            row["runtime"],
            f"{row['wall_s']:.3f}",
            row.get("delivered", "-"),
            f"{row['msgs_per_s']:.0f}" if "msgs_per_s" in row else "-",
            f"{row['lat_p50'] * unit:.3f}" if "lat_p50" in row else "-",
            f"{row['lat_p95'] * unit:.3f}" if "lat_p95" in row else "-",
        )
    return table


def report_checked(rows: list[dict[str, Any]]) -> Table:
    table = Table(
        "checked workload through the ClusterPort: figure-2 schedule + "
        "client mix, property checks over the (merged) trace",
        ["workload", "runtime", "wall s", "trace events",
         "events checked", "check wall s", "violations"],
    )
    for row in rows:
        if "events_checked" not in row:
            continue
        table.add(
            row["workload"], row["runtime"], f"{row['wall_s']:.3f}",
            row["trace_events"], row["events_checked"],
            f"{row['check_wall_s']:.3f}", row["violations"],
        )
    return table


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke mode: n=3 only, 5 rounds")
    args = parser.parse_args(argv)
    rows = run_matrix(quick=args.quick)
    report(rows).show()
    report_checked(rows).show()
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
