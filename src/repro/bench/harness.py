"""Experiment plumbing: run clusters under schedules, print tables.

Each benchmark in ``benchmarks/`` regenerates one of the paper's figures
or analytical claims; this module keeps them short and uniform.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence

from repro.net.faults import FaultSchedule
from repro.runtime.cluster import AppFactory, Cluster, ClusterConfig


@dataclass
class Table:
    """A minimal aligned-text table for experiment output."""

    title: str
    columns: Sequence[str]
    rows: list[Sequence[Any]] = field(default_factory=list)

    def add(self, *values: Any) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} cells, table has {len(self.columns)}"
            )
        self.rows.append(values)

    def render(self) -> str:
        cells = [list(map(_fmt, row)) for row in self.rows]
        widths = [
            max(len(str(c)), *(len(r[i]) for r in cells)) if cells else len(str(c))
            for i, c in enumerate(self.columns)
        ]
        lines = [self.title, ""]
        header = "  ".join(str(c).ljust(w) for c, w in zip(self.columns, widths))
        lines.append(header)
        lines.append("  ".join("-" * w for w in widths))
        for row in cells:
            lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
        return "\n".join(lines)

    def show(self) -> None:
        print()
        print(self.render())
        print()


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def run_with_schedule(
    n_sites: int,
    schedule: FaultSchedule,
    app_factory: AppFactory | None = None,
    config: ClusterConfig | None = None,
    tail: float = 300.0,
    settle_timeout: float = 600.0,
) -> Cluster:
    """Build a cluster, arm the schedule, run past its horizon, settle."""
    cluster = Cluster(n_sites, app_factory=app_factory, config=config)
    schedule.arm(cluster.scheduler, cluster)
    cluster.run(until=schedule.horizon + tail)
    cluster.settle(timeout=settle_timeout)
    return cluster


def seeded_runs(
    seeds: Iterable[int],
    build: Callable[[int], Cluster],
) -> list[Cluster]:
    """Run ``build(seed)`` for every seed and return the clusters."""
    return [build(seed) for seed in seeds]
