"""Client-tier throughput/latency bench: the store under open-loop load.

The :mod:`repro.bench.realnet_perf` lane measures the wire data path
(multicast throughput between members); this lane measures what an
*external* client actually experiences — request over TCP, quorum-acked
put or any-replica get inside, reply back out — under an open-loop
offered rate, the honest way to price a service tier (a slow server
cannot slow the arrival process down and flatter its own tail).

Cells, recorded in the ``client`` section of ``BENCH_PERF.json``:

* **mixed load** at n=8: 90% gets / 10% quorum-acked puts over a
  million-key zipfian keyspace, at a moderate and a saturating offered
  rate.  The saturating cell is the acceptance gate for the client
  tier: ≥ 1000 sustained client ops/s with per-op p50/p99 read from
  the ``client_op_latency`` obs histograms (the same numbers
  ``repro obs report`` prints — bench and observability can never
  disagree).
* **put-only load** at n=8: every operation is a full quorum
  round-trip, the worst case for the service tier.

Each cell is best-of-``reps`` by achieved ops/s, so a shared-machine
CPU spike shows up as a slow outlier rep, not a phantom regression.
Timers run at the default realnet profile (scale 1): the bench prices
the service under the same failure-detector pressure the CLI runs
with — a persistence or event-loop stall that trips the detector is a
real client-visible regression, not noise to be scaled away.

Run::

    python -m repro.bench.client_perf           # full matrix, updates BENCH_PERF.json
    python -m repro.bench.client_perf --quick   # CI smoke: n=3, short, no file
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path
from typing import Any

from repro.bench.harness import Table

SEED = 7
SETTLE_TIMEOUT = 60.0


def _cell(
    n: int,
    rate: float,
    duration: float,
    read_fraction: float,
    clients: int = 16,
) -> dict[str, Any]:
    """One open-loop cell against a freshly booted realnet store."""
    from repro.apps.factories import app_factory
    from repro.ports import make_cluster
    from repro.workload.openloop import LoadSpec, OpenLoopLoad, slo_verdict

    cluster = make_cluster(
        "realnet",
        n,
        app_factory=app_factory("store", n),
        seed=SEED,
        trace_level="none",
    )
    try:
        assert cluster.settle(timeout=SETTLE_TIMEOUT), cluster.views()
        spec = LoadSpec(
            rate=rate,
            duration=duration,
            clients=clients,
            n_keys=1_000_000,
            key_dist="zipfian",
            read_fraction=read_fraction,
            seed=SEED,
        )
        report = OpenLoopLoad(cluster, spec).run()
        verdict = slo_verdict(cluster, target_p99=0.5)
        per_op = {
            op: {
                "count": int(stats["count"]),
                "p50_ms": round(1000.0 * stats["p50"], 3),
                "p99_ms": round(1000.0 * stats["p99"], 3),
            }
            for op, stats in sorted(verdict.per_op.items())
        }
        return {
            "n": n,
            "offered_rate": rate,
            "duration_s": duration,
            "clients": clients,
            "read_fraction": read_fraction,
            "offered": report.offered,
            "completed": report.completed,
            "acked_ok": report.ok,
            "ok_fraction": round(report.ok_fraction, 4),
            "late_sends": report.late,
            "by_status": report.by_status,
            "achieved_ops_s": int(report.achieved_rate),
            "worst_p50_ms": round(1000.0 * verdict.p50, 3),
            "worst_p99_ms": round(1000.0 * verdict.p99, 3),
            "per_op": per_op,
        }
    finally:
        cluster.close()


#: (cell key, n, offered ops/s, seconds, read fraction).
FULL_MATRIX = (
    ("n8_r400_mixed", 8, 400.0, 4.0, 0.9),
    ("n8_r1200_mixed", 8, 1200.0, 4.0, 0.9),
    ("n8_r300_put", 8, 300.0, 4.0, 0.0),
)
QUICK_MATRIX = (("n3_r150_mixed", 3, 150.0, 1.5, 0.9),)

#: The acceptance gate: the saturating mixed cell must sustain this.
ACCEPTANCE_OPS_S = 1000


def run_matrix(quick: bool = False, reps: int = 2) -> dict[str, Any]:
    matrix = QUICK_MATRIX if quick else FULL_MATRIX
    if quick:
        reps = 1
    cells: dict[str, Any] = {}
    for key, n, rate, duration, reads in matrix:
        best: dict[str, Any] | None = None
        for _ in range(reps):
            row = _cell(n, rate, duration, reads)
            if best is None or row["achieved_ops_s"] > best["achieved_ops_s"]:
                best = row
        assert best is not None
        best["reps"] = reps
        cells[key] = best
    return {
        "workload": "open-loop client load over TCP (see repro.bench.client_perf)",
        "keyspace": "1M keys, zipfian (YCSB theta=0.99)",
        "cells": cells,
    }


def report(results: dict[str, Any]) -> None:
    table = Table(
        "client tier under open-loop load (latency in ms)",
        ["cell", "offered/s", "achieved/s", "ok frac", "late", "p50", "p99"],
    )
    for key, row in results["cells"].items():
        table.add(
            key,
            int(row["offered_rate"]),
            row["achieved_ops_s"],
            row["ok_fraction"],
            row["late_sends"],
            row["worst_p50_ms"],
            row["worst_p99_ms"],
        )
    table.show()
    ops = Table(
        "per-operation latency (ms)",
        ["cell", "op", "count", "p50", "p99"],
    )
    for key, row in results["cells"].items():
        for op, stats in row["per_op"].items():
            ops.add(key, op, stats["count"], stats["p50_ms"], stats["p99_ms"])
    ops.show()


def update_bench_file(results: dict[str, Any], path: str = "BENCH_PERF.json") -> None:
    """Merge the ``client`` section into BENCH_PERF.json key-wise.

    Preserves every other section (simulator core, realnet wire) and
    any client keys this run didn't recompute."""
    out = Path(path)
    payload: dict[str, Any] = {}
    if out.exists():
        try:
            payload = json.loads(out.read_text())
        except ValueError:
            payload = {}
    section = payload.get("client")
    if not isinstance(section, dict):
        section = {}
    section.update(results)
    payload["client"] = section
    out.write_text(json.dumps(payload, indent=1) + "\n")


def _previous_headline(path: str) -> int | None:
    try:
        payload = json.loads(Path(path).read_text())
        return int(payload["client"]["cells"]["n8_r1200_mixed"]["achieved_ops_s"])
    except (OSError, ValueError, KeyError, TypeError):
        return None


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: n=3 only, short cell, no BENCH_PERF.json",
    )
    parser.add_argument(
        "--out",
        default="BENCH_PERF.json",
        help="bench file to update in place (full mode only)",
    )
    args = parser.parse_args(argv)

    print("== client-tier perf harness ==")
    prev = None if args.quick else _previous_headline(args.out)
    t0 = time.perf_counter()
    results = run_matrix(quick=args.quick)
    total = time.perf_counter() - t0
    report(results)
    print(f"total wall time: {total:.1f}s")

    headline = results["cells"].get("n8_r1200_mixed")
    if headline is not None:
        achieved = headline["achieved_ops_s"]
        results["headline_ops_s_n8"] = achieved
        results["acceptance_1000_ops_s"] = achieved >= ACCEPTANCE_OPS_S
        gate = "PASS" if achieved >= ACCEPTANCE_OPS_S else "FAIL"
        print(
            f"n=8 saturating mixed cell: {achieved} ops/s sustained "
            f"(acceptance ≥ {ACCEPTANCE_OPS_S}: {gate}, "
            f"put p99 {headline['per_op'].get('put', {}).get('p99_ms', '-')}ms)"
        )
        if prev:
            ratio = round(achieved / prev, 2)
            results["vs_prev_n8"] = {
                "prev_ops_s": prev,
                "now_ops_s": achieved,
                "ratio": ratio,
            }
            print(f"vs previously recorded ({prev} ops/s): {ratio:.2f}x")
    if not args.quick:
        update_bench_file(results, args.out)
        print(f"updated {args.out} (client section)")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
