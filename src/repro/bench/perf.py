"""Performance regression harness for the simulation core.

Runs a fixed workload matrix against the current core and reports
throughput next to the committed pre-change baseline:

* **bootstrap** — start ``n`` sites, run until membership settles on the
  full view.  Exercises the membership/flush protocol and timer churn.
* **partition_heal** — settle, then cut the group in half and heal it,
  twice.  Exercises view agreement under topology change and the
  in-flight message cut.
* **steady_multicast** — settle, then every site multicasts on a 2.0
  virtual-unit tick for 400 units.  Exercises the scheduler fast lane,
  ``Network.multicast`` and the per-sender delivery chains — the hot
  path of every long experiment.

Methodology: the baseline was captured on the pre-change core (commit
``82f3cc5``) with the only modes that core had — per-type wire stats
always on and full trace recording.  The current numbers are measured
with the benchmark modes the optimized core defaults to for throughput
work (``detailed_stats=False``, ``trace_level="none"``); the n=24
steady-state workload is additionally re-run with detailed stats and
full recording on, so the table separates what the core optimizations
bought from what the cheaper default modes bought.  Same seeds, same
virtual durations, same workload code on both sides.

Run::

    python -m repro.bench.perf           # full matrix, writes BENCH_PERF.json
    python -m repro.bench.perf --quick   # CI smoke: small sizes, no file
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path
from typing import Any

from repro.bench.harness import Table
from repro.runtime.cluster import Cluster, ClusterConfig

SEED = 7
STEADY_TICK = 2.0
STEADY_DURATION = 400.0
SETTLE_TIMEOUT = 600.0

#: Throughput of the pre-change core (events/sec, messages/sec) on this
#: exact workload matrix, captured before the fast-path rewrite landed.
#: Kept inline so the speedup column renders without any extra artifact.
BASELINE: dict[str, dict[str, Any]] = {
    "core": "pre-change (commit 82f3cc5)",
    "modes": "detailed stats always on, full trace recording (only modes available)",
    "workloads": {
        "steady_multicast_n8": {"events_per_s": 34592, "messages_per_s": 28387, "wall_s": 0.5583},
        "steady_multicast_n16": {"events_per_s": 24781, "messages_per_s": 22472, "wall_s": 3.0010},
        "steady_multicast_n24": {"events_per_s": 20242, "messages_per_s": 18968, "wall_s": 8.1582},
        "bootstrap_n8": {"events_per_s": 46883, "wall_s": 0.0057},
        "bootstrap_n16": {"events_per_s": 14836, "wall_s": 0.0633},
        "bootstrap_n24": {"events_per_s": 25308, "wall_s": 0.0788},
        "partition_heal_n8": {"events_per_s": 62342, "wall_s": 0.0148},
        "partition_heal_n16": {"events_per_s": 48447, "wall_s": 0.0625},
    },
}


def _bench_config(**overrides: Any) -> ClusterConfig:
    # metrics=False keeps the in-stack observability hooks off the hot
    # path; the registry's callback gauges still exist, so the counter
    # reads below go through the same surface ``repro obs`` reports.
    cfg = dict(
        seed=SEED, detailed_stats=False, trace_level="none", metrics=False
    )
    cfg.update(overrides)
    return ClusterConfig(**cfg)


def _events_run(cluster: Cluster) -> int:
    """Scheduler event count, read through the metrics registry."""
    return int(cluster.metrics.value("sim_events_total"))


def _delivered(cluster: Cluster) -> int:
    """Network delivery count, read through the metrics registry."""
    return int(cluster.metrics.value("net_messages_delivered_total"))


def bench_bootstrap(n: int, config: ClusterConfig) -> dict[str, Any]:
    """Wall time to bring ``n`` sites from cold start to a settled view."""
    t0 = time.perf_counter()
    cluster = Cluster(n, config=config)
    settled = cluster.settle(timeout=SETTLE_TIMEOUT)
    wall = time.perf_counter() - t0
    events = _events_run(cluster)
    return {
        "n": n,
        "settled": settled,
        "wall_s": round(wall, 4),
        "events": events,
        "events_per_s": int(events / wall) if wall > 0 else 0,
    }


def bench_partition_heal(
    n: int, config: ClusterConfig, cycles: int = 2
) -> dict[str, Any]:
    """Repeated half/half partition + heal, settling after each step."""
    cluster = Cluster(n, config=config)
    cluster.settle(timeout=SETTLE_TIMEOUT)
    ev0 = _events_run(cluster)
    half = n // 2
    t0 = time.perf_counter()
    for _ in range(cycles):
        cluster.partition([list(range(half)), list(range(half, n))])
        cluster.settle(timeout=SETTLE_TIMEOUT)
        cluster.heal()
        cluster.settle(timeout=SETTLE_TIMEOUT)
    wall = time.perf_counter() - t0
    events = _events_run(cluster) - ev0
    return {
        "n": n,
        "cycles": cycles,
        "wall_s": round(wall, 4),
        "events": events,
        "events_per_s": int(events / wall) if wall > 0 else 0,
    }


def bench_steady_multicast(
    n: int, config: ClusterConfig, duration: float = STEADY_DURATION
) -> dict[str, Any]:
    """Every site multicasts on a fixed tick for ``duration`` units."""
    cluster = Cluster(n, config=config)
    cluster.settle(timeout=SETTLE_TIMEOUT)
    for site in sorted(cluster.stacks):
        stack = cluster.stacks[site]
        stack.set_periodic(
            STEADY_TICK,
            lambda s=stack: s.alive and s.multicast(("w", s.pid.site)),
        )
    ev0 = _events_run(cluster)
    delivered0 = _delivered(cluster)
    t0 = time.perf_counter()
    cluster.run_for(duration)
    wall = time.perf_counter() - t0
    events = _events_run(cluster) - ev0
    delivered = _delivered(cluster) - delivered0
    return {
        "n": n,
        "wall_s": round(wall, 4),
        "events": events,
        "events_per_s": int(events / wall) if wall > 0 else 0,
        "messages_delivered": delivered,
        "messages_per_s": int(delivered / wall) if wall > 0 else 0,
    }


def run_matrix(quick: bool = False) -> dict[str, Any]:
    """Run the workload matrix; returns the results keyed like BASELINE."""
    sizes = (8,) if quick else (8, 16, 24, 48)
    duration = 100.0 if quick else STEADY_DURATION
    cycles = 1 if quick else 2
    results: dict[str, Any] = {}
    for n in sizes:
        results[f"bootstrap_n{n}"] = bench_bootstrap(n, _bench_config())
    for n in sizes[: 2 if quick else 3]:
        results[f"partition_heal_n{n}"] = bench_partition_heal(
            n, _bench_config(), cycles=cycles
        )
    for n in sizes:
        results[f"steady_multicast_n{n}"] = bench_steady_multicast(
            n, _bench_config(), duration=duration
        )
    if not quick:
        # Control run: same workload with the expensive modes the
        # baseline was forced to use, to isolate core vs. mode wins.
        results["steady_multicast_n24_full_recording"] = bench_steady_multicast(
            24,
            _bench_config(detailed_stats=True, trace_level="full"),
            duration=duration,
        )
    return results


def report(results: dict[str, Any]) -> Table:
    table = Table(
        "simulation core throughput (current vs pre-change baseline)",
        ["workload", "wall s", "events/s", "msgs/s", "baseline ev/s", "speedup"],
    )
    for name, row in results.items():
        base = BASELINE["workloads"].get(name, {})
        base_rate = base.get("events_per_s")
        speedup = (
            f"{row['events_per_s'] / base_rate:.2f}x" if base_rate else "-"
        )
        table.add(
            name,
            row["wall_s"],
            row["events_per_s"],
            row.get("messages_per_s", "-"),
            base_rate or "-",
            speedup,
        )
    return table


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: n=8 only, short runs, no BENCH_PERF.json",
    )
    parser.add_argument(
        "--out",
        default="BENCH_PERF.json",
        help="output path for the JSON report (full mode only)",
    )
    args = parser.parse_args(argv)

    print("== perf harness ==")
    print(f"baseline core : {BASELINE['core']}")
    print(f"baseline modes: {BASELINE['modes']}")
    print("current modes : detailed_stats=False, trace_level='none'"
          " (plus one full-recording control run at n=24)")
    print(f"seed={SEED}  steady tick={STEADY_TICK}  duration={STEADY_DURATION}")

    t0 = time.perf_counter()
    results = run_matrix(quick=args.quick)
    total = time.perf_counter() - t0
    report(results).show()
    print(f"total wall time: {total:.1f}s")

    if not args.quick:
        out = Path(args.out)
        # Read-modify-write: other harnesses (repro.bench.realnet_perf)
        # own sibling sections of the same file.
        payload = {}
        if out.exists():
            try:
                payload = json.loads(out.read_text())
            except ValueError:
                payload = {}
        payload["baseline"] = BASELINE
        payload["current"] = {
            "modes": "detailed_stats=False, trace_level='none'",
            "workloads": results,
        }
        key = "steady_multicast_n24"
        base = BASELINE["workloads"][key]["events_per_s"]
        cur = results[key]["events_per_s"]
        payload["headline_speedup_n24"] = round(cur / base, 2)
        out.write_text(json.dumps(payload, indent=1) + "\n")
        print(f"wrote {args.out} (n24 steady-state speedup: {cur / base:.2f}x)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
