"""Performance regression harness for the simulation core.

Runs a fixed workload matrix against the current core and reports
throughput next to the committed pre-change baseline:

* **bootstrap** — start ``n`` sites, run until membership settles on the
  full view.  Exercises the membership/flush protocol and timer churn.
* **partition_heal** — settle, then cut the group in half and heal it,
  twice.  Exercises view agreement under topology change and the
  in-flight message cut.
* **steady_multicast** — settle, then every site multicasts on a 2.0
  virtual-unit tick for 400 units.  Exercises the scheduler fast lane,
  ``Network.multicast`` and the per-sender delivery chains — the hot
  path of every long experiment.

Methodology: the baseline was captured on the pre-change core (commit
``82f3cc5``) with the only modes that core had — per-type wire stats
always on and full trace recording.  The current numbers are measured
with the benchmark modes the optimized core defaults to for throughput
work (``detailed_stats=False``, ``trace_level="none"``); the n=24
steady-state workload is additionally re-run with detailed stats and
full recording on, so the table separates what the core optimizations
bought from what the cheaper default modes bought.  Same seeds, same
virtual durations, same workload code on both sides.

The **scale lane** runs the same three cells at n ∈ {48, 128, 256}
(512 opt-in via ``--sizes``) under the scale profile — gossip failure
detection at fanout 4, hierarchical flush aggregation at tree fanout 8
— because the default all-to-all planes are O(n²) per interval and
would measure the profile, not the core.  The n=48 cell anchors the
steady-throughput flatness ratio (``steady_vs_n48`` in the JSON); the
profile's timer math is derived in docs/scaling.md.

Run::

    python -m repro.bench.perf                  # full matrix + scale lane
    python -m repro.bench.perf --quick          # CI smoke: small sizes, no file
    python -m repro.bench.perf --scale-smoke    # CI scale gate: n=128, wall budget
    python -m repro.bench.perf --sizes 128,256,512
    python -m repro.bench.perf --profile steady_multicast_n128
"""

from __future__ import annotations

import argparse
import cProfile
import gc
import json
import pstats
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Iterator

from repro.bench.harness import Table
from repro.gms.membership import MembershipConfig
from repro.runtime.cluster import Cluster, ClusterConfig
from repro.vsync.stack import StackConfig

SEED = 7
STEADY_TICK = 2.0
STEADY_DURATION = 400.0
SETTLE_TIMEOUT = 600.0

#: Default scale-lane sizes; 512 is opt-in (--sizes 48,128,256,512).
#: n=48 runs under the *same* scale profile as the big sizes and is the
#: anchor for the steady-throughput flatness ratio: comparing n=256
#: against the standard-profile n=48 cell would mix a protocol change
#: (gossip vs all-to-all heartbeats) into a core-scaling measurement.
SCALE_SIZES = (48, 128, 256)
#: Steady-state duration for scale cells: each virtual tick moves n
#: multicasts of n deliveries, so 60 units at n=256 already schedules
#: ~2M deliveries — enough signal without an hour of wall time.
SCALE_STEADY_DURATION = 60.0
#: Wall-time budget for --scale-smoke (CI fails the step past this).
SCALE_SMOKE_BUDGET_S = 120.0

#: Throughput of the pre-change core (events/sec, messages/sec) on this
#: exact workload matrix, captured before the fast-path rewrite landed.
#: Kept inline so the speedup column renders without any extra artifact.
BASELINE: dict[str, dict[str, Any]] = {
    "core": "pre-change (commit 82f3cc5)",
    "modes": "detailed stats always on, full trace recording (only modes available)",
    "workloads": {
        "steady_multicast_n8": {"events_per_s": 34592, "messages_per_s": 28387, "wall_s": 0.5583},
        "steady_multicast_n16": {"events_per_s": 24781, "messages_per_s": 22472, "wall_s": 3.0010},
        "steady_multicast_n24": {"events_per_s": 20242, "messages_per_s": 18968, "wall_s": 8.1582},
        "bootstrap_n8": {"events_per_s": 46883, "wall_s": 0.0057},
        "bootstrap_n16": {"events_per_s": 14836, "wall_s": 0.0633},
        "bootstrap_n24": {"events_per_s": 25308, "wall_s": 0.0788},
        "partition_heal_n8": {"events_per_s": 62342, "wall_s": 0.0148},
        "partition_heal_n16": {"events_per_s": 48447, "wall_s": 0.0625},
    },
}


def _bench_config(**overrides: Any) -> ClusterConfig:
    # metrics=False keeps the in-stack observability hooks off the hot
    # path; the registry's callback gauges still exist, so the counter
    # reads below go through the same surface ``repro obs`` reports.
    cfg = dict(
        seed=SEED, detailed_stats=False, trace_level="none", metrics=False
    )
    cfg.update(overrides)
    return ClusterConfig(**cfg)


#: Human-readable summary of the scale profile for reports and JSON.
SCALE_PROFILE = (
    "fd_mode=gossip fanout=4 fd_timeout=45 tree_fanout=8"
    " expand_debounce=6 flush_stall_timeout=90"
)


def _scale_config(**overrides: Any) -> ClusterConfig:
    """Bench config for the n>=128 lane.

    Gossip needs ``fd_timeout`` to cover a whole epidemic round —
    ``T*(log n / log(k+1) + 2)`` ≈ 45 at n=256, k=4, T=5 — not the one
    hop the all-to-all default (16) assumes; ``expand_debounce`` batches
    the flush-reported joiners of a big merge into one extra round
    instead of one round per discovery wave.
    """
    stack = StackConfig(
        fd_timeout=45.0,
        membership=MembershipConfig(
            tree_fanout=8, expand_debounce=6.0, flush_stall_timeout=90.0
        ),
    )
    cfg = dict(
        seed=SEED,
        detailed_stats=False,
        trace_level="none",
        metrics=False,
        stack=stack,
        fd_mode="gossip",
        gossip_fanout=4,
    )
    cfg.update(overrides)
    return ClusterConfig(**cfg)


def _events_run(cluster: Cluster) -> int:
    """Scheduler event count, read through the metrics registry."""
    return int(cluster.metrics.value("sim_events_total"))


@contextmanager
def _gc_quiesced() -> Iterator[None]:
    """Silence the cyclic GC for the duration of a measured window.

    The live-object population of a big cluster grows with n² (buffered
    multicasts awaiting stability), so generational collection pauses
    grow with cluster size and would read as core slowdown.  Collect
    once, move the survivors to the permanent generation, and switch
    the collector off until the window closes.
    """
    gc.collect()
    gc.freeze()
    gc.disable()
    try:
        yield
    finally:
        gc.enable()
        gc.unfreeze()


def _delivered(cluster: Cluster) -> int:
    """Network delivery count, read through the metrics registry."""
    return int(cluster.metrics.value("net_messages_delivered_total"))


def bench_bootstrap(n: int, config: ClusterConfig) -> dict[str, Any]:
    """Wall time to bring ``n`` sites from cold start to a settled view."""
    with _gc_quiesced():
        t0 = time.perf_counter()
        cluster = Cluster(n, config=config)
        settled = cluster.settle(timeout=SETTLE_TIMEOUT)
        wall = time.perf_counter() - t0
    events = _events_run(cluster)
    return {
        "n": n,
        "settled": settled,
        "wall_s": round(wall, 4),
        "events": events,
        "events_per_s": int(events / wall) if wall > 0 else 0,
    }


def bench_partition_heal(
    n: int, config: ClusterConfig, cycles: int = 2
) -> dict[str, Any]:
    """Repeated half/half partition + heal, settling after each step."""
    cluster = Cluster(n, config=config)
    cluster.settle(timeout=SETTLE_TIMEOUT)
    ev0 = _events_run(cluster)
    half = n // 2
    with _gc_quiesced():
        t0 = time.perf_counter()
        for _ in range(cycles):
            cluster.partition([list(range(half)), list(range(half, n))])
            cluster.settle(timeout=SETTLE_TIMEOUT)
            cluster.heal()
            cluster.settle(timeout=SETTLE_TIMEOUT)
        wall = time.perf_counter() - t0
    events = _events_run(cluster) - ev0
    return {
        "n": n,
        "cycles": cycles,
        "wall_s": round(wall, 4),
        "events": events,
        "events_per_s": int(events / wall) if wall > 0 else 0,
    }


def bench_steady_multicast(
    n: int, config: ClusterConfig, duration: float = STEADY_DURATION
) -> dict[str, Any]:
    """Every site multicasts on a fixed tick for ``duration`` units."""
    cluster = Cluster(n, config=config)
    cluster.settle(timeout=SETTLE_TIMEOUT)
    for site in sorted(cluster.stacks):
        stack = cluster.stacks[site]
        stack.set_periodic(
            STEADY_TICK,
            lambda s=stack: s.alive and s.multicast(("w", s.pid.site)),
        )
    ev0 = _events_run(cluster)
    delivered0 = _delivered(cluster)
    with _gc_quiesced():
        t0 = time.perf_counter()
        cluster.run_for(duration)
        wall = time.perf_counter() - t0
    events = _events_run(cluster) - ev0
    delivered = _delivered(cluster) - delivered0
    return {
        "n": n,
        "wall_s": round(wall, 4),
        "events": events,
        "events_per_s": int(events / wall) if wall > 0 else 0,
        "messages_delivered": delivered,
        "messages_per_s": int(delivered / wall) if wall > 0 else 0,
    }


def run_matrix(quick: bool = False) -> dict[str, Any]:
    """Run the workload matrix; returns the results keyed like BASELINE."""
    sizes = (8,) if quick else (8, 16, 24, 48)
    duration = 100.0 if quick else STEADY_DURATION
    cycles = 1 if quick else 2
    results: dict[str, Any] = {}
    for n in sizes:
        results[f"bootstrap_n{n}"] = bench_bootstrap(n, _bench_config())
    for n in sizes[: 2 if quick else 3]:
        results[f"partition_heal_n{n}"] = bench_partition_heal(
            n, _bench_config(), cycles=cycles
        )
    for n in sizes:
        results[f"steady_multicast_n{n}"] = bench_steady_multicast(
            n, _bench_config(), duration=duration
        )
    if not quick:
        # Control run: same workload with the expensive modes the
        # baseline was forced to use, to isolate core vs. mode wins.
        results["steady_multicast_n24_full_recording"] = bench_steady_multicast(
            24,
            _bench_config(detailed_stats=True, trace_level="full"),
            duration=duration,
        )
    return results


def run_scale_matrix(sizes: tuple[int, ...] = SCALE_SIZES) -> dict[str, Any]:
    """The n>=128 lane under the scale profile; keyed like BASELINE."""
    results: dict[str, Any] = {}
    for n in sizes:
        results[f"bootstrap_n{n}"] = bench_bootstrap(n, _scale_config())
    for n in sizes:
        results[f"partition_heal_n{n}"] = bench_partition_heal(
            n, _scale_config(), cycles=1
        )
    for n in sizes:
        # The n=48 anchor moves ~10x fewer deliveries per virtual unit,
        # so it needs a longer window for a comparable sample.
        duration = SCALE_STEADY_DURATION if n >= 128 else 200.0
        results[f"steady_multicast_n{n}"] = bench_steady_multicast(
            n, _scale_config(), duration=duration
        )
    return results


def steady_flatness(scale_results: dict[str, Any]) -> dict[str, float]:
    """Steady events/s of each big size relative to the n=48 anchor.

    This is the scaling headline: 1.0 means per-event cost is flat from
    n=48 to that size; 0.5 means each event costs twice as much.  The
    residual droop is working-set growth (the stability-bounded buffer
    of live multicasts grows with n², falling out of cache), not an
    O(n) term in any hot path — see docs/scaling.md.
    """
    anchor = scale_results.get("steady_multicast_n48")
    if not anchor or not anchor.get("events_per_s"):
        return {}
    ratios: dict[str, float] = {}
    for name, row in scale_results.items():
        if name.startswith("steady_multicast_n") and name != "steady_multicast_n48":
            ratios[f"{name.removeprefix('steady_multicast_')}_vs_n48"] = round(
                row["events_per_s"] / anchor["events_per_s"], 3
            )
    return ratios


#: Cells --profile accepts: name -> zero-arg runner.
def _profile_cells() -> dict[str, Any]:
    cells: dict[str, Any] = {}
    for n in (8, 16, 24, 48):
        cells[f"bootstrap_n{n}"] = lambda n=n: bench_bootstrap(n, _bench_config())
        cells[f"partition_heal_n{n}"] = lambda n=n: bench_partition_heal(
            n, _bench_config()
        )
        cells[f"steady_multicast_n{n}"] = lambda n=n: bench_steady_multicast(
            n, _bench_config()
        )
    for n in (128, 256, 512):
        cells[f"bootstrap_n{n}"] = lambda n=n: bench_bootstrap(n, _scale_config())
        cells[f"partition_heal_n{n}"] = lambda n=n: bench_partition_heal(
            n, _scale_config(), cycles=1
        )
        cells[f"steady_multicast_n{n}"] = lambda n=n: bench_steady_multicast(
            n, _scale_config(), duration=SCALE_STEADY_DURATION
        )
    return cells


def run_profiled(cell: str) -> dict[str, Any]:
    """Run one cell under cProfile; print the top of the hot path."""
    cells = _profile_cells()
    if cell not in cells:
        raise SystemExit(
            f"unknown --profile cell {cell!r}; one of: {', '.join(sorted(cells))}"
        )
    profiler = cProfile.Profile()
    profiler.enable()
    row = cells[cell]()
    profiler.disable()
    stats = pstats.Stats(profiler)
    stats.sort_stats("cumulative")
    print(f"== cProfile: {cell} ==")
    stats.print_stats(25)
    return row


def scale_smoke(budget_s: float = SCALE_SMOKE_BUDGET_S) -> int:
    """CI gate: n=128 bootstrap + partition/heal settle within budget."""
    t0 = time.perf_counter()
    boot = bench_bootstrap(128, _scale_config())
    heal = bench_partition_heal(128, _scale_config(), cycles=1)
    wall = time.perf_counter() - t0
    ok = boot["settled"] and wall <= budget_s
    print(
        f"scale-smoke n=128: bootstrap settled={boot['settled']}"
        f" ({boot['wall_s']}s), partition+heal {heal['wall_s']}s,"
        f" total {wall:.1f}s (budget {budget_s:.0f}s) ->"
        f" {'OK' if ok else 'FAIL'}"
    )
    return 0 if ok else 1


def _vs_prev(
    prev: dict[str, Any] | None, results: dict[str, Any]
) -> dict[str, Any]:
    """events/s delta of each cell against the last committed run."""
    deltas: dict[str, Any] = {}
    for name, row in results.items():
        old = (prev or {}).get(name)
        if not isinstance(old, dict) or not old.get("events_per_s"):
            continue
        deltas[name] = {
            "prev_events_per_s": old["events_per_s"],
            "delta_pct": round(
                100.0 * (row["events_per_s"] / old["events_per_s"] - 1.0), 1
            ),
        }
    return deltas


def report(results: dict[str, Any]) -> Table:
    table = Table(
        "simulation core throughput (current vs pre-change baseline)",
        ["workload", "wall s", "events/s", "msgs/s", "baseline ev/s", "speedup"],
    )
    for name, row in results.items():
        base = BASELINE["workloads"].get(name, {})
        base_rate = base.get("events_per_s")
        speedup = (
            f"{row['events_per_s'] / base_rate:.2f}x" if base_rate else "-"
        )
        table.add(
            name,
            row["wall_s"],
            row["events_per_s"],
            row.get("messages_per_s", "-"),
            base_rate or "-",
            speedup,
        )
    return table


def report_scale(results: dict[str, Any], deltas: dict[str, Any]) -> Table:
    table = Table(
        f"scale lane ({SCALE_PROFILE})",
        ["workload", "wall s", "events/s", "msgs/s", "vs prev"],
    )
    for name, row in results.items():
        d = deltas.get(name)
        table.add(
            name,
            row["wall_s"],
            row["events_per_s"],
            row.get("messages_per_s", "-"),
            f"{d['delta_pct']:+.1f}%" if d else "-",
        )
    return table


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: n=8 only, short runs, no BENCH_PERF.json",
    )
    parser.add_argument(
        "--scale-smoke",
        action="store_true",
        help="CI scale gate: n=128 bootstrap + partition/heal under a"
        " wall-time budget, no BENCH_PERF.json",
    )
    parser.add_argument(
        "--budget",
        type=float,
        default=SCALE_SMOKE_BUDGET_S,
        help="wall-time budget in seconds for --scale-smoke",
    )
    parser.add_argument(
        "--sizes",
        default=",".join(str(n) for n in SCALE_SIZES),
        help="comma-separated scale-lane sizes (empty string skips the"
        " lane; 512 is opt-in: --sizes 128,256,512)",
    )
    parser.add_argument(
        "--profile",
        metavar="CELL",
        help="run one cell (e.g. steady_multicast_n128) under cProfile"
        " and print the hot path instead of the matrix",
    )
    parser.add_argument(
        "--out",
        default="BENCH_PERF.json",
        help="output path for the JSON report (full mode only)",
    )
    args = parser.parse_args(argv)

    if args.scale_smoke:
        return scale_smoke(budget_s=args.budget)
    if args.profile:
        row = run_profiled(args.profile)
        print(json.dumps({args.profile: row}, indent=1))
        return 0

    print("== perf harness ==")
    print(f"baseline core : {BASELINE['core']}")
    print(f"baseline modes: {BASELINE['modes']}")
    print("current modes : detailed_stats=False, trace_level='none'"
          " (plus one full-recording control run at n=24)")
    print(f"seed={SEED}  steady tick={STEADY_TICK}  duration={STEADY_DURATION}")

    t0 = time.perf_counter()
    results = run_matrix(quick=args.quick)
    total = time.perf_counter() - t0
    report(results).show()
    print(f"total wall time: {total:.1f}s")

    scale_sizes = tuple(
        int(s) for s in args.sizes.split(",") if s.strip()
    )
    scale_results: dict[str, Any] = {}
    scale_deltas: dict[str, Any] = {}
    out = Path(args.out)
    prev_scale: dict[str, Any] | None = None
    payload: dict[str, Any] = {}
    if out.exists():
        # Read-modify-write: other harnesses (repro.bench.realnet_perf)
        # own sibling sections of the same file, and the previous scale
        # section feeds the vs_prev delta column.
        try:
            payload = json.loads(out.read_text())
        except ValueError:
            payload = {}
        prev_scale = (payload.get("scale") or {}).get("workloads")
    if scale_sizes and not args.quick:
        t0 = time.perf_counter()
        scale_results = run_scale_matrix(scale_sizes)
        scale_total = time.perf_counter() - t0
        scale_deltas = _vs_prev(prev_scale, scale_results)
        report_scale(scale_results, scale_deltas).show()
        print(f"scale lane wall time: {scale_total:.1f}s")

    if not args.quick:
        payload["baseline"] = BASELINE
        payload["current"] = {
            "modes": "detailed_stats=False, trace_level='none'",
            "workloads": results,
        }
        if scale_results:
            payload["scale"] = {
                "profile": SCALE_PROFILE,
                "steady_duration": SCALE_STEADY_DURATION,
                "workloads": scale_results,
                "steady_vs_n48": steady_flatness(scale_results),
                "vs_prev": scale_deltas,
            }
        key = "steady_multicast_n24"
        base = BASELINE["workloads"][key]["events_per_s"]
        cur = results[key]["events_per_s"]
        payload["headline_speedup_n24"] = round(cur / base, 2)
        out.write_text(json.dumps(payload, indent=1) + "\n")
        print(f"wrote {args.out} (n24 steady-state speedup: {cur / base:.2f}x)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
