"""Tracing overhead harness: steady-state throughput, tracer on vs off.

The causal tracer (``tracing=True``) mints a context per root event,
threads it through the wire dataclasses, and appends a span event to
the flight recorder per hook firing.  All of that rides the hot
multicast path, so the acceptance bar for the tracing tentpole is
quantitative: **under 10% steady-state events/s overhead at n=24** on
the simulator.  (Uncaused workload roots are 1-in-N sampled — see
``Tracer.sample_root`` — which is what keeps the true cost low; this
harness is the regression tripwire for that property.)

Methodology: the ``steady_multicast`` cell from :mod:`repro.bench.perf`
(every site multicasts on a 2.0 virtual-unit tick), identical configs
except the ``tracing`` flag, metrics hooks *on* in both — so the ratio
isolates the tracer itself, not the hook plumbing it shares with the
metrics satellite.  The overhead is the **median of per-pair ratios**
over ``repeat`` back-to-back (off, on) pairs with alternating order —
see :func:`run_overhead` for why simpler designs read machine noise as
tracer cost on a virtualized runner.

Run::

    python -m repro.bench.obs_perf             # full: n=24, BENCH_PERF.json
    python -m repro.bench.obs_perf --quick     # CI smoke: n=16, no file
"""

from __future__ import annotations

import argparse
import json
import statistics
import time
from pathlib import Path
from typing import Any

from repro.bench.harness import Table
from repro.bench.perf import SEED, bench_steady_multicast
from repro.runtime.cluster import ClusterConfig

N = 24
DURATION = 400.0
#: Acceptance bar: tracing may cost at most this much steady events/s.
OVERHEAD_BUDGET_PCT = 10.0
#: CI trip-wire: shared runners swing ±15% run to run, so the smoke
#: lane gates at a threshold loose enough to never trip on noise but
#: tight enough to catch a real regression (an unsampled span pipeline
#: on the delivery path measures ~45%).
CI_GATE_PCT = 25.0


def _config(tracing: bool) -> ClusterConfig:
    return ClusterConfig(
        seed=SEED,
        detailed_stats=False,
        trace_level="none",
        metrics=True,
        tracing=tracing,
    )


def run_overhead(
    n: int = N, duration: float = DURATION, repeat: int = 9
) -> dict[str, Any]:
    """Measure the tracer's steady-state cost; returns the ``obs`` row.

    Measurement design, forced by a noisy virtualized runner whose
    throughput swings ±15% at both second and minute scale:

    * **pairs, not blocks** — an (off, on) pair runs back to back, so
      minute-scale drift hits both sides of each ratio about equally;
      two separate per-mode blocks would read drift as tracer cost;
    * **alternating order** — pairs run (off, on), (on, off), ... so a
      systematic position effect inside a pair cancels across pairs;
    * **median of ratios, not ratio of medians/bests** — one lucky
      burst in one mode decides a best-of comparison; the median of
      per-pair ratios needs half the pairs to be wrong to move.
    """
    for tracing in (False, True):  # unmeasured warmup, both modes
        bench_steady_multicast(
            n, _config(tracing), duration=min(duration, 100.0)
        )
    rows: dict[bool, list[dict[str, Any]]] = {False: [], True: []}
    ratios: list[float] = []
    for index in range(repeat):
        order = (False, True) if index % 2 == 0 else (True, False)
        pair: dict[bool, dict[str, Any]] = {}
        for tracing in order:
            pair[tracing] = bench_steady_multicast(
                n, _config(tracing), duration=duration
            )
            rows[tracing].append(pair[tracing])
        ratios.append(
            pair[True]["events_per_s"] / pair[False]["events_per_s"]
        )
    overhead = 100.0 * (1.0 - statistics.median(ratios))

    def _median_row(mode: bool) -> dict[str, Any]:
        ordered = sorted(rows[mode], key=lambda r: r["events_per_s"])
        return ordered[len(ordered) // 2]

    return {
        "workload": f"steady_multicast_n{n}",
        "pairs": repeat,
        "method": "median of per-pair on/off ratios, alternating order",
        "tracing_off": _median_row(False),
        "tracing_on": _median_row(True),
        "pair_ratios": [round(r, 3) for r in sorted(ratios)],
        "overhead_pct": round(overhead, 1),
        "budget_pct": OVERHEAD_BUDGET_PCT,
        "within_budget": overhead <= OVERHEAD_BUDGET_PCT,
    }


def report(row: dict[str, Any]) -> Table:
    table = Table(
        f"tracing overhead ({row['workload']},"
        f" median of {row['pairs']} pair ratios)",
        ["mode", "wall s", "events/s", "msgs/s"],
    )
    for mode in ("tracing_off", "tracing_on"):
        cell = row[mode]
        table.add(
            mode, cell["wall_s"], cell["events_per_s"], cell["messages_per_s"]
        )
    return table


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: n=16 cells, no BENCH_PERF.json",
    )
    parser.add_argument(
        "--gate-pct",
        type=float,
        default=OVERHEAD_BUDGET_PCT,
        help="overhead percentage above which the exit code is nonzero"
        f" (CI smoke uses {CI_GATE_PCT:.0f} to stay clear of runner noise)",
    )
    parser.add_argument(
        "--out",
        default="BENCH_PERF.json",
        help="JSON report to merge the 'obs' section into (full mode only)",
    )
    args = parser.parse_args(argv)

    t0 = time.perf_counter()
    if args.quick:
        # n=8 cells finish in ~0.1s wall — too little signal for a
        # ratio.  n=16 keeps the smoke around ~10s with ~0.5s cells.
        row = run_overhead(n=16, duration=400.0, repeat=9)
    else:
        row = run_overhead()
    report(row).show()
    ok = row["overhead_pct"] <= args.gate_pct
    print(
        f"tracing overhead: {row['overhead_pct']:+.1f}% events/s"
        f" (budget {OVERHEAD_BUDGET_PCT:.0f}%, gate {args.gate_pct:.0f}%)"
        f" -> {'OK' if ok else 'FAIL'}  [{time.perf_counter() - t0:.1f}s]"
    )

    if not args.quick:
        out = Path(args.out)
        payload: dict[str, Any] = {}
        if out.exists():
            # Read-modify-write: repro.bench.perf and friends own the
            # sibling sections of the same file.
            try:
                payload = json.loads(out.read_text())
            except ValueError:
                payload = {}
        payload["obs"] = row
        out.write_text(json.dumps(payload, indent=1) + "\n")
        print(f"wrote {args.out} (obs section)")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
