"""Experiment harness shared by the benchmarks (see DESIGN.md §3)."""

from repro.bench.harness import Table, run_with_schedule, seeded_runs

__all__ = ["Table", "run_with_schedule", "seeded_runs"]
