"""Realnet throughput/latency bench: the wire data path under load.

Two measurements, recorded in the ``realnet`` section of
``BENCH_PERF.json`` so the real data path gets the same regression
tracking the simulator core got:

* **steady multicast** at n ∈ {4, 8, 16}: every site issues ``burst``
  view-synchronous multicasts per round and the round completes when
  every member has delivered every message (a delivery barrier instead
  of a pacing sleep, so the wire — not the pacer — is the bottleneck).
  Each size runs twice in the same process on the same machine:

  - ``json`` — the tagged-JSON codec with micro-batching disabled
    (``flush_tick=0``, ``batch_bytes=0``: one frame written and
    drained per flush), i.e. the PR-2 data path: this is the
    **baseline**;
  - ``bin`` — the ``bin1`` positional binary codec with default
    micro-batching: the current data path.

  The headline number is ``bin msgs/s ÷ json msgs/s`` at n=8.

* **codec micro-bench**: encode+frame and parse+decode ops/sec over a
  representative frame mix (heartbeat, application multicast,
  stability report, flush message), plus the average encoded frame
  size per codec.

End-to-end throughput includes protocol work (vsync ordering,
stability, timers) that the codec cannot touch, so the e2e speedup is
necessarily smaller than the micro-bench ratio; both are recorded.

Run::

    python -m repro.bench.realnet_perf           # full matrix, updates BENCH_PERF.json
    python -m repro.bench.realnet_perf --quick   # CI smoke: n=3, tiny rounds, no file
"""

from __future__ import annotations

import argparse
import asyncio
import json
import time
from pathlib import Path
from typing import Any

from repro.bench.harness import Table
from repro.obs.report import quantile
from repro.obs.snapshot import MetricSample
from repro.realnet import wallclock
from repro.realnet.cluster import RealCluster, RealClusterConfig
from repro.types import MessageId, ProcessId, ViewId
from repro.vsync.events import GroupApplication

SEED = 7
SETTLE_TIMEOUT = 60.0
ROUND_TIMEOUT = 60.0
#: Stretch the protocol timer profile so the failure detector never
#: fires under saturation: the bench measures the wire, and a spurious
#: view change mid-round would turn the delivery barrier into a
#: membership test.  Applied to both codecs, so the comparison is fair.
TIMER_SCALE = 4.0

#: Application payload: a record-shaped update in the style of the
#: paper's replicated-database example — op tag, sequence number,
#: timestamp, a ~100-byte body and two small numeric vectors.  Rich
#: enough that the wire codec (not the fixed per-message protocol
#: work) dominates the data path, like real application traffic.
def _payload(i: int) -> tuple:
    return (
        "w",
        i,
        3.5,
        "x" * 96,
        tuple(float(j) + 0.5 for j in range(16)),
        tuple(range(16)),
    )


class _Counter(GroupApplication):
    """Counts deliveries; the cheapest possible application."""

    def __init__(self) -> None:
        super().__init__()
        self.delivered = 0

    def on_message(self, sender: ProcessId, payload: Any, msg_id: MessageId) -> None:
        self.delivered += 1


async def _steady(n: int, rounds: int, burst: int, codec: str) -> dict[str, Any]:
    """Burst-and-barrier steady multicast; returns one result row."""
    apps: list[_Counter] = []

    def factory(pid: ProcessId) -> _Counter:
        app = _Counter()
        apps.append(app)
        return app

    config = RealClusterConfig(
        seed=SEED,
        scale=TIMER_SCALE,
        trace_level="none",
        detailed_stats=False,
        codec=codec,
        # The JSON baseline is the PR-2 data path: no flush tick, one
        # frame written and drained per flush.
        flush_tick=0.0 if codec == "json" else None,
        batch_bytes=0 if codec == "json" else None,
    )
    async with RealCluster(n, app_factory=factory, config=config) as cluster:
        assert await cluster.settle(timeout=SETTLE_TIMEOUT), cluster.views()
        expected = 0
        t0 = time.perf_counter()
        for r in range(rounds):
            for stack in cluster.live_stacks():
                sent = 0
                while sent < burst:
                    # multicast returns None while the stack is flushing
                    # a view change; wait it out rather than undercount.
                    if stack.multicast(_payload(sent)) is not None:
                        sent += 1
                    else:
                        await asyncio.sleep(0.005)
            expected += n * n * burst
            done = await cluster.wait_until(
                lambda c: sum(a.delivered for a in apps) >= expected,
                timeout=ROUND_TIMEOUT,
                poll=0.002,
            )
            assert done, (
                f"round {r}: {sum(a.delivered for a in apps)}/{expected} delivered; "
                f"wire={cluster.transport_stats()}"
            )
        wall = time.perf_counter() - t0
        delivered = sum(a.delivered for a in apps)
        wire = cluster.transport_stats()
        flushes = wire["flushes"]
        return {
            "n": n,
            "codec": codec,
            "rounds": rounds,
            "burst": burst,
            "wall_s": round(wall, 4),
            "delivered": delivered,
            "msgs_per_s": int(delivered / wall) if wall > 0 else 0,
            "frames_sent": wire["frames_sent"],
            "frames_per_s": int(wire["frames_sent"] / wall) if wall > 0 else 0,
            "flushes": flushes,
            "frames_per_flush": round(wire["frames_sent"] / flushes, 2) if flushes else 0.0,
            "max_batch": wire["max_batch"],
            "bytes_sent": wire["bytes_sent"],
            "bytes_per_frame": (
                round(wire["bytes_sent"] / wire["frames_sent"], 1)
                if wire["frames_sent"]
                else 0.0
            ),
            "codecs": wire["codecs"],
        }


def _steady_proc(n: int, rounds: int, burst: int, codec: str) -> dict[str, Any]:
    """Steady multicast over the process-per-site cluster driver.

    Same burst-and-barrier workload as :func:`_steady`, but injected and
    measured across OS process boundaries (control-frame injection, a
    polled cluster-wide delivery counter as the barrier).  On a
    multi-core machine this is the scaling configuration; on a single
    core it mostly prices the process-hop overhead — both are worth a
    row in the bench file.
    """
    from repro.realnet.proc_driver import ProcClusterConfig, ProcRealClusterDriver

    config = ProcClusterConfig(
        seed=SEED, scale=TIMER_SCALE, trace_level="none", codec=codec
    )
    driver = ProcRealClusterDriver(n, config).start()
    try:
        assert driver.settle(timeout=SETTLE_TIMEOUT), driver.views()
        sites = sorted(s.site for s in driver.live_stacks())
        expected = 0
        t0 = time.perf_counter()
        for _ in range(rounds):
            for site in sites:
                sent = 0
                while sent < burst:
                    accepted = driver.mcast_many(site, burst - sent, _payload(sent))
                    sent += accepted
                    if sent < burst:  # stack was flushing; wait it out
                        time.sleep(0.005)
            expected += n * n * burst
            deadline = time.perf_counter() + ROUND_TIMEOUT
            while driver.delivered_total() < expected:
                assert time.perf_counter() < deadline, (
                    f"{driver.delivered_total()}/{expected} delivered"
                )
                time.sleep(0.003)
        wall = time.perf_counter() - t0
        delivered = driver.delivered_total()
        wire = driver.transport_stats()
        return {
            "n": n,
            "codec": codec,
            "rounds": rounds,
            "burst": burst,
            "wall_s": round(wall, 4),
            "delivered": delivered,
            "msgs_per_s": int(delivered / wall) if wall > 0 else 0,
            "frames_sent": wire["frames_sent"],
            "bytes_sent": wire["bytes_sent"],
            "codecs": wire["codecs"],
            "processes": n,
        }
    finally:
        driver.close()


# ---------------------------------------------------------------------------
# Latency under load (open-loop offered rate)
# ---------------------------------------------------------------------------


async def _latency(n: int, rate: int, duration: float, codec: str) -> dict[str, Any]:
    """Open-loop latency cell: offer ``rate`` multicasts/s cluster-wide
    for ``duration`` seconds and read p50/p99 delivery latency from the
    ``multicast_delivery_latency`` obs histogram.

    Open loop means the send grid is fixed in advance (send k happens at
    ``t0 + k/rate`` regardless of how the cluster is coping), so queue
    buildup shows up as latency — the honest way to measure a system
    under offered load, where a closed loop would self-throttle.
    """
    config = RealClusterConfig(
        seed=SEED,
        scale=TIMER_SCALE,
        trace_level="none",
        detailed_stats=False,
        codec=codec,
    )
    async with RealCluster(n, config=config) as cluster:
        assert await cluster.settle(timeout=SETTLE_TIMEOUT), cluster.views()
        stacks = cluster.live_stacks()
        total = int(rate * duration)
        dt = 1.0 / rate
        late = 0
        t0 = time.perf_counter()
        sent = 0
        while sent < total:
            target = t0 + sent * dt
            now = time.perf_counter()
            if now < target:
                await asyncio.sleep(target - now)
            elif now - target > dt:
                late += 1
            if stacks[sent % len(stacks)].multicast(_payload(sent)) is not None:
                sent += 1
            else:  # flushing a view change; keep the grid, retry the slot
                await asyncio.sleep(0.005)
        expected = total * n
        done = await cluster.wait_until(
            lambda c: c.metrics_snapshot().total("deliveries_total") >= expected,
            timeout=ROUND_TIMEOUT,
            poll=0.01,
        )
        assert done, (
            f"delivery barrier: "
            f"{cluster.metrics_snapshot().total('deliveries_total')}/{expected}"
        )
        drain_s = time.perf_counter() - (t0 + total * dt)
        snap = cluster.metrics_snapshot()
        buckets: dict[float, int] = {}
        count = 0
        total_sum = 0.0
        for s in snap.samples:
            if s.name == "multicast_delivery_latency":
                count += s.count
                total_sum += s.value
                for le, c in s.buckets:
                    buckets[le] = buckets.get(le, 0) + c
        merged = MetricSample(
            "multicast_delivery_latency",
            "histogram",
            (),
            total_sum,
            count,
            tuple(sorted(buckets.items())),
        )
        return {
            "n": n,
            "codec": codec,
            "offered_rate": rate,
            "duration_s": duration,
            "sent": total,
            "late_sends": late,
            "drain_s": round(max(0.0, drain_s), 4),
            "deliveries": count,
            "mean_ms": round(1000.0 * total_sum / count, 3) if count else 0.0,
            "p50_ms": round(1000.0 * quantile(merged, 0.50), 3),
            "p99_ms": round(1000.0 * quantile(merged, 0.99), 3),
        }


# ---------------------------------------------------------------------------
# Codec micro-bench
# ---------------------------------------------------------------------------


def _sample_frames() -> list[tuple[str, Any]]:
    """A frame mix weighted like steady-state traffic."""
    from repro.fd.heartbeat import Heartbeat
    from repro.gms.messages import VcFlush
    from repro.evs.eview import EViewStructure
    from repro.types import Message
    from repro.vsync.stability import StabilityReport

    p = [ProcessId(i, 0) for i in range(4)]
    vid = ViewId(3, p[0])
    structure = EViewStructure.singletons(3, frozenset(p))
    msg = Message(MessageId(p[1], vid, 42), payload=_payload(7), eview_seq=1)
    return [
        ("Heartbeat", Heartbeat(p[1], vid, last_seqno=9, eview_seq=1)),
        ("Message", msg),
        ("StabilityReport", StabilityReport(vid, p[2], tuple((q, 17) for q in p))),
        (
            "VcFlush",
            VcFlush(
                round_id=(p[0], 4),
                sender=p[1],
                view_id=vid,
                max_epoch=3,
                received=(msg,),
                eview_seq=1,
                structure=structure,
                evlog=(),
                reachable=frozenset(p),
            ),
        ),
    ]


def bench_codec(loops: int = 2000) -> dict[str, Any]:
    """Encode/decode ops/sec per codec over the sample frame mix."""
    from repro.realnet.codec_bin import WIRE_FORMATS

    samples = _sample_frames()
    src = (0, 0)
    results: dict[str, Any] = {}
    for name, fmt in WIRE_FORMATS.items():
        frames = [
            fmt.frame_msg(src, 1, 0, fmt.encode_payload(payload))
            for _, payload in samples
        ]
        bodies = [frame[4:] for frame in frames]
        t0 = time.perf_counter()
        for _ in range(loops):
            for _, payload in samples:
                fmt.frame_msg(src, 1, 0, fmt.encode_payload(payload))
        enc_wall = time.perf_counter() - t0
        t0 = time.perf_counter()
        for _ in range(loops):
            for body in bodies:
                fmt.parse_msg(body).payload()
        dec_wall = time.perf_counter() - t0
        ops = loops * len(samples)
        results[name] = {
            "encode_ops_s": int(ops / enc_wall) if enc_wall > 0 else 0,
            "decode_ops_s": int(ops / dec_wall) if dec_wall > 0 else 0,
            "avg_frame_bytes": round(sum(len(f) for f in frames) / len(frames), 1),
            "frame_bytes": {
                label: len(frame)
                for (label, _), frame in zip(samples, frames)
            },
        }
    return results


# ---------------------------------------------------------------------------
# Harness
# ---------------------------------------------------------------------------

#: (n, rounds, burst) per size: bursts sized well under the per-link
#: send-queue cap so the barrier, not loss repair, ends each round.
FULL_MATRIX = ((4, 10, 48), (8, 8, 32), (16, 5, 12))
QUICK_MATRIX = ((3, 2, 8),)
#: (n, offered multicasts/s, seconds) for the latency-under-load cells.
LATENCY_MATRIX = ((8, 400, 4.0), (8, 1200, 4.0))
LATENCY_QUICK = ((3, 200, 1.0),)
#: (n, rounds, burst) for the process-per-site cells (bin codec).
PROC_MATRIX = ((4, 4, 24), (8, 3, 16))
PROC_QUICK = ((3, 1, 8),)


def run_matrix(quick: bool = False, reps: int = 3) -> dict[str, Any]:
    matrix = QUICK_MATRIX if quick else FULL_MATRIX
    if quick:
        reps = 1
    steady: dict[str, Any] = {}
    for n, rounds, burst in matrix:
        rows: dict[str, Any] = {}
        # Best-of-N per cell, codecs interleaved within each rep: a
        # shared-container CPU spike or a one-off retransmit stall
        # shows up as a slow outlier rep, not a phantom (anti-)speedup.
        for rep in range(reps):
            for codec in ("json", "bin"):
                row = wallclock.run(
                    asyncio.wait_for(_steady(n, rounds, burst, codec), 300)
                )
                best = rows.get(codec)
                if best is None or row["msgs_per_s"] > best["msgs_per_s"]:
                    rows[codec] = row
        for codec in ("json", "bin"):
            rows[codec]["reps"] = reps
        base = rows["json"]["msgs_per_s"]
        rows["speedup"] = round(rows["bin"]["msgs_per_s"] / base, 2) if base else 0.0
        steady[f"n{n}"] = rows
    latency: dict[str, Any] = {}
    for n, rate, duration in (LATENCY_QUICK if quick else LATENCY_MATRIX):
        cell: dict[str, Any] = {}
        for codec in ("json", "bin"):
            cell[codec] = wallclock.run(
                asyncio.wait_for(_latency(n, rate, duration, codec), 300)
            )
        latency[f"n{n}_r{rate}"] = cell
    proc: dict[str, Any] = {}
    for n, rounds, burst in (PROC_QUICK if quick else PROC_MATRIX):
        proc[f"n{n}"] = {"bin": _steady_proc(n, rounds, burst, "bin")}
    return {
        "workload": "burst-and-barrier steady multicast (see repro.bench.realnet_perf)",
        "baseline": "json codec, unbatched (the PR-2 data path)",
        "uvloop": wallclock.HAVE_UVLOOP,
        "steady_multicast": steady,
        "steady_multicast_proc": proc,
        "latency_under_load": latency,
        "codec_micro": bench_codec(loops=200 if quick else 2000),
    }


def report(results: dict[str, Any]) -> None:
    table = Table(
        "realnet steady multicast: binary+batched vs JSON baseline",
        ["workload", "codec", "wall s", "msgs/s", "frames/flush", "B/frame", "speedup"],
    )
    for key, rows in results["steady_multicast"].items():
        for codec in ("json", "bin"):
            row = rows[codec]
            table.add(
                f"steady_{key}",
                codec,
                row["wall_s"],
                row["msgs_per_s"],
                row["frames_per_flush"],
                row["bytes_per_frame"],
                f"{rows['speedup']:.2f}x" if codec == "bin" else "-",
            )
    table.show()
    proc = results.get("steady_multicast_proc") or {}
    if proc:
        ptable = Table(
            "realnet steady multicast, process per site (bin codec)",
            ["workload", "procs", "wall s", "msgs/s"],
        )
        for key, rows in proc.items():
            row = rows["bin"]
            ptable.add(
                f"proc_{key}", row["processes"], row["wall_s"], row["msgs_per_s"]
            )
        ptable.show()
    lat = results.get("latency_under_load") or {}
    if lat:
        ltable = Table(
            "latency under open-loop load (delivery latency, ms)",
            ["cell", "codec", "offered/s", "p50", "p99", "mean", "drain s"],
        )
        for key, cell in lat.items():
            for codec in ("json", "bin"):
                row = cell[codec]
                ltable.add(
                    key, codec, row["offered_rate"], row["p50_ms"],
                    row["p99_ms"], row["mean_ms"], row["drain_s"],
                )
        ltable.show()
    micro = Table(
        "codec micro-bench (ops/sec over the sample frame mix)",
        ["codec", "encode/s", "decode/s", "avg frame bytes"],
    )
    for name, row in results["codec_micro"].items():
        micro.add(name, row["encode_ops_s"], row["decode_ops_s"], row["avg_frame_bytes"])
    micro.show()


def update_bench_file(results: dict[str, Any], path: str = "BENCH_PERF.json") -> None:
    """Merge the realnet section into BENCH_PERF.json key-wise.

    Preserves the simulator sections owned by :mod:`repro.bench.perf`
    AND any realnet keys this harness didn't recompute (so a partial
    rerun — e.g. only the latency cells — doesn't wipe the steady
    matrix recorded by an earlier full run)."""
    out = Path(path)
    payload: dict[str, Any] = {}
    if out.exists():
        try:
            payload = json.loads(out.read_text())
        except ValueError:
            payload = {}
    realnet = payload.get("realnet")
    if not isinstance(realnet, dict):
        realnet = {}
    realnet.update(results)
    payload["realnet"] = realnet
    out.write_text(json.dumps(payload, indent=1) + "\n")


def _previous_bin_n8(path: str) -> int | None:
    """The last recorded bin n=8 steady throughput, for vs_prev."""
    try:
        payload = json.loads(Path(path).read_text())
        return int(
            payload["realnet"]["steady_multicast"]["n8"]["bin"]["msgs_per_s"]
        )
    except (OSError, ValueError, KeyError, TypeError):
        return None


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: n=3 only, tiny rounds, no BENCH_PERF.json",
    )
    parser.add_argument(
        "--out",
        default="BENCH_PERF.json",
        help="bench file to update in place (full mode only)",
    )
    args = parser.parse_args(argv)

    print("== realnet perf harness ==")
    print("baseline: json codec, unbatched (PR-2 data path); "
          "current: bin1 codec, zero-copy framing, micro-batching on"
          + (", uvloop" if wallclock.HAVE_UVLOOP else ""))
    prev_bin_n8 = None if args.quick else _previous_bin_n8(args.out)
    t0 = time.perf_counter()
    results = run_matrix(quick=args.quick)
    total = time.perf_counter() - t0
    report(results)
    print(f"total wall time: {total:.1f}s")

    headline_key = "n8" if "n8" in results["steady_multicast"] else None
    if headline_key:
        speedup = results["steady_multicast"][headline_key]["speedup"]
        results["headline_speedup_n8"] = speedup
        print(f"n=8 steady multicast: bin+batching is {speedup:.2f}x the JSON baseline")
        if prev_bin_n8:
            now_bin = results["steady_multicast"][headline_key]["bin"]["msgs_per_s"]
            vs_prev = round(now_bin / prev_bin_n8, 2)
            results["vs_prev_bin_n8"] = {
                "prev_msgs_per_s": prev_bin_n8,
                "now_msgs_per_s": now_bin,
                "ratio": vs_prev,
            }
            print(
                f"n=8 bin vs previously recorded bin ({prev_bin_n8} msgs/s): "
                f"{vs_prev:.2f}x"
            )
    if not args.quick:
        update_bench_file(results, args.out)
        print(f"updated {args.out} (realnet section)")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
