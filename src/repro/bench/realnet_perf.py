"""Realnet throughput/latency bench: the wire data path under load.

Two measurements, recorded in the ``realnet`` section of
``BENCH_PERF.json`` so the real data path gets the same regression
tracking the simulator core got:

* **steady multicast** at n ∈ {4, 8, 16}: every site issues ``burst``
  view-synchronous multicasts per round and the round completes when
  every member has delivered every message (a delivery barrier instead
  of a pacing sleep, so the wire — not the pacer — is the bottleneck).
  Each size runs twice in the same process on the same machine:

  - ``json`` — the tagged-JSON codec with micro-batching disabled
    (``flush_tick=0``, ``batch_bytes=0``: one frame written and
    drained per flush), i.e. the PR-2 data path: this is the
    **baseline**;
  - ``bin`` — the ``bin1`` positional binary codec with default
    micro-batching: the current data path.

  The headline number is ``bin msgs/s ÷ json msgs/s`` at n=8.

* **codec micro-bench**: encode+frame and parse+decode ops/sec over a
  representative frame mix (heartbeat, application multicast,
  stability report, flush message), plus the average encoded frame
  size per codec.

End-to-end throughput includes protocol work (vsync ordering,
stability, timers) that the codec cannot touch, so the e2e speedup is
necessarily smaller than the micro-bench ratio; both are recorded.

Run::

    python -m repro.bench.realnet_perf           # full matrix, updates BENCH_PERF.json
    python -m repro.bench.realnet_perf --quick   # CI smoke: n=3, tiny rounds, no file
"""

from __future__ import annotations

import argparse
import asyncio
import json
import time
from pathlib import Path
from typing import Any

from repro.bench.harness import Table
from repro.realnet.cluster import RealCluster, RealClusterConfig
from repro.types import MessageId, ProcessId, ViewId
from repro.vsync.events import GroupApplication

SEED = 7
SETTLE_TIMEOUT = 60.0
ROUND_TIMEOUT = 60.0
#: Stretch the protocol timer profile so the failure detector never
#: fires under saturation: the bench measures the wire, and a spurious
#: view change mid-round would turn the delivery barrier into a
#: membership test.  Applied to both codecs, so the comparison is fair.
TIMER_SCALE = 4.0

#: Application payload: a record-shaped update in the style of the
#: paper's replicated-database example — op tag, sequence number,
#: timestamp, a ~100-byte body and two small numeric vectors.  Rich
#: enough that the wire codec (not the fixed per-message protocol
#: work) dominates the data path, like real application traffic.
def _payload(i: int) -> tuple:
    return (
        "w",
        i,
        3.5,
        "x" * 96,
        tuple(float(j) + 0.5 for j in range(16)),
        tuple(range(16)),
    )


class _Counter(GroupApplication):
    """Counts deliveries; the cheapest possible application."""

    def __init__(self) -> None:
        super().__init__()
        self.delivered = 0

    def on_message(self, sender: ProcessId, payload: Any, msg_id: MessageId) -> None:
        self.delivered += 1


async def _steady(n: int, rounds: int, burst: int, codec: str) -> dict[str, Any]:
    """Burst-and-barrier steady multicast; returns one result row."""
    apps: list[_Counter] = []

    def factory(pid: ProcessId) -> _Counter:
        app = _Counter()
        apps.append(app)
        return app

    config = RealClusterConfig(
        seed=SEED,
        scale=TIMER_SCALE,
        trace_level="none",
        detailed_stats=False,
        codec=codec,
        # The JSON baseline is the PR-2 data path: no flush tick, one
        # frame written and drained per flush.
        flush_tick=0.0 if codec == "json" else None,
        batch_bytes=0 if codec == "json" else None,
    )
    async with RealCluster(n, app_factory=factory, config=config) as cluster:
        assert await cluster.settle(timeout=SETTLE_TIMEOUT), cluster.views()
        expected = 0
        t0 = time.perf_counter()
        for r in range(rounds):
            for stack in cluster.live_stacks():
                sent = 0
                while sent < burst:
                    # multicast returns None while the stack is flushing
                    # a view change; wait it out rather than undercount.
                    if stack.multicast(_payload(sent)) is not None:
                        sent += 1
                    else:
                        await asyncio.sleep(0.005)
            expected += n * n * burst
            done = await cluster.wait_until(
                lambda c: sum(a.delivered for a in apps) >= expected,
                timeout=ROUND_TIMEOUT,
                poll=0.002,
            )
            assert done, (
                f"round {r}: {sum(a.delivered for a in apps)}/{expected} delivered; "
                f"wire={cluster.transport_stats()}"
            )
        wall = time.perf_counter() - t0
        delivered = sum(a.delivered for a in apps)
        wire = cluster.transport_stats()
        flushes = wire["flushes"]
        return {
            "n": n,
            "codec": codec,
            "rounds": rounds,
            "burst": burst,
            "wall_s": round(wall, 4),
            "delivered": delivered,
            "msgs_per_s": int(delivered / wall) if wall > 0 else 0,
            "frames_sent": wire["frames_sent"],
            "frames_per_s": int(wire["frames_sent"] / wall) if wall > 0 else 0,
            "flushes": flushes,
            "frames_per_flush": round(wire["frames_sent"] / flushes, 2) if flushes else 0.0,
            "max_batch": wire["max_batch"],
            "bytes_sent": wire["bytes_sent"],
            "bytes_per_frame": (
                round(wire["bytes_sent"] / wire["frames_sent"], 1)
                if wire["frames_sent"]
                else 0.0
            ),
            "codecs": wire["codecs"],
        }


# ---------------------------------------------------------------------------
# Codec micro-bench
# ---------------------------------------------------------------------------


def _sample_frames() -> list[tuple[str, Any]]:
    """A frame mix weighted like steady-state traffic."""
    from repro.fd.heartbeat import Heartbeat
    from repro.gms.messages import VcFlush
    from repro.evs.eview import EViewStructure
    from repro.types import Message
    from repro.vsync.stability import StabilityReport

    p = [ProcessId(i, 0) for i in range(4)]
    vid = ViewId(3, p[0])
    structure = EViewStructure.singletons(3, frozenset(p))
    msg = Message(MessageId(p[1], vid, 42), payload=_payload(7), eview_seq=1)
    return [
        ("Heartbeat", Heartbeat(p[1], vid, last_seqno=9, eview_seq=1)),
        ("Message", msg),
        ("StabilityReport", StabilityReport(vid, p[2], tuple((q, 17) for q in p))),
        (
            "VcFlush",
            VcFlush(
                round_id=(p[0], 4),
                sender=p[1],
                view_id=vid,
                max_epoch=3,
                received=(msg,),
                eview_seq=1,
                structure=structure,
                evlog=(),
                reachable=frozenset(p),
            ),
        ),
    ]


def bench_codec(loops: int = 2000) -> dict[str, Any]:
    """Encode/decode ops/sec per codec over the sample frame mix."""
    from repro.realnet.codec_bin import WIRE_FORMATS

    samples = _sample_frames()
    src = (0, 0)
    results: dict[str, Any] = {}
    for name, fmt in WIRE_FORMATS.items():
        frames = [
            fmt.frame_msg(src, 1, 0, fmt.encode_payload(payload))
            for _, payload in samples
        ]
        bodies = [frame[4:] for frame in frames]
        t0 = time.perf_counter()
        for _ in range(loops):
            for _, payload in samples:
                fmt.frame_msg(src, 1, 0, fmt.encode_payload(payload))
        enc_wall = time.perf_counter() - t0
        t0 = time.perf_counter()
        for _ in range(loops):
            for body in bodies:
                fmt.parse_msg(body).payload()
        dec_wall = time.perf_counter() - t0
        ops = loops * len(samples)
        results[name] = {
            "encode_ops_s": int(ops / enc_wall) if enc_wall > 0 else 0,
            "decode_ops_s": int(ops / dec_wall) if dec_wall > 0 else 0,
            "avg_frame_bytes": round(sum(len(f) for f in frames) / len(frames), 1),
            "frame_bytes": {
                label: len(frame)
                for (label, _), frame in zip(samples, frames)
            },
        }
    return results


# ---------------------------------------------------------------------------
# Harness
# ---------------------------------------------------------------------------

#: (n, rounds, burst) per size: bursts sized well under the per-link
#: send-queue cap so the barrier, not loss repair, ends each round.
FULL_MATRIX = ((4, 10, 48), (8, 8, 32), (16, 5, 12))
QUICK_MATRIX = ((3, 2, 8),)


def run_matrix(quick: bool = False, reps: int = 3) -> dict[str, Any]:
    matrix = QUICK_MATRIX if quick else FULL_MATRIX
    if quick:
        reps = 1
    steady: dict[str, Any] = {}
    for n, rounds, burst in matrix:
        rows: dict[str, Any] = {}
        # Best-of-N per cell, codecs interleaved within each rep: a
        # shared-container CPU spike or a one-off retransmit stall
        # shows up as a slow outlier rep, not a phantom (anti-)speedup.
        for rep in range(reps):
            for codec in ("json", "bin"):
                row = asyncio.run(
                    asyncio.wait_for(_steady(n, rounds, burst, codec), 300)
                )
                best = rows.get(codec)
                if best is None or row["msgs_per_s"] > best["msgs_per_s"]:
                    rows[codec] = row
        for codec in ("json", "bin"):
            rows[codec]["reps"] = reps
        base = rows["json"]["msgs_per_s"]
        rows["speedup"] = round(rows["bin"]["msgs_per_s"] / base, 2) if base else 0.0
        steady[f"n{n}"] = rows
    return {
        "workload": "burst-and-barrier steady multicast (see repro.bench.realnet_perf)",
        "baseline": "json codec, unbatched (the PR-2 data path)",
        "steady_multicast": steady,
        "codec_micro": bench_codec(loops=200 if quick else 2000),
    }


def report(results: dict[str, Any]) -> None:
    table = Table(
        "realnet steady multicast: binary+batched vs JSON baseline",
        ["workload", "codec", "wall s", "msgs/s", "frames/flush", "B/frame", "speedup"],
    )
    for key, rows in results["steady_multicast"].items():
        for codec in ("json", "bin"):
            row = rows[codec]
            table.add(
                f"steady_{key}",
                codec,
                row["wall_s"],
                row["msgs_per_s"],
                row["frames_per_flush"],
                row["bytes_per_frame"],
                f"{rows['speedup']:.2f}x" if codec == "bin" else "-",
            )
    table.show()
    micro = Table(
        "codec micro-bench (ops/sec over the sample frame mix)",
        ["codec", "encode/s", "decode/s", "avg frame bytes"],
    )
    for name, row in results["codec_micro"].items():
        micro.add(name, row["encode_ops_s"], row["decode_ops_s"], row["avg_frame_bytes"])
    micro.show()


def update_bench_file(results: dict[str, Any], path: str = "BENCH_PERF.json") -> None:
    """Merge the realnet section into BENCH_PERF.json, preserving the
    simulator sections owned by :mod:`repro.bench.perf`."""
    out = Path(path)
    payload: dict[str, Any] = {}
    if out.exists():
        try:
            payload = json.loads(out.read_text())
        except ValueError:
            payload = {}
    payload["realnet"] = results
    out.write_text(json.dumps(payload, indent=1) + "\n")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: n=3 only, tiny rounds, no BENCH_PERF.json",
    )
    parser.add_argument(
        "--out",
        default="BENCH_PERF.json",
        help="bench file to update in place (full mode only)",
    )
    args = parser.parse_args(argv)

    print("== realnet perf harness ==")
    print("baseline: json codec, unbatched (PR-2 data path); "
          "current: bin1 codec, micro-batching on")
    t0 = time.perf_counter()
    results = run_matrix(quick=args.quick)
    total = time.perf_counter() - t0
    report(results)
    print(f"total wall time: {total:.1f}s")

    headline_key = "n8" if "n8" in results["steady_multicast"] else None
    if headline_key:
        speedup = results["steady_multicast"][headline_key]["speedup"]
        results["headline_speedup_n8"] = speedup
        print(f"n=8 steady multicast: bin+batching is {speedup:.2f}x the JSON baseline")
    if not args.quick:
        update_bench_file(results, args.out)
        print(f"updated {args.out} (realnet section)")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
