"""Exception hierarchy for the reproduction library.

All library-specific errors derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SimulationError(ReproError):
    """Misuse of the simulation kernel (scheduler, timers, processes)."""


class NetworkError(ReproError):
    """Misuse of the simulated network (unknown sites, bad topology)."""


class MembershipError(ReproError):
    """Protocol-level error in the group membership service."""


class ViewSynchronyError(ReproError):
    """Violation or misuse detected in the view-synchronous layer."""


class EnrichedViewError(ReproError):
    """Invalid subview / sv-set operation in the enriched-view layer."""


class ApplicationError(ReproError):
    """Error raised by a group-object application."""


class InvariantViolation(ReproError):
    """A group-object invariant was found violated.

    Raised by invariant checkers (e.g. in :mod:`repro.core.group_object`
    and :mod:`repro.trace.checks`) when a property the paper guarantees
    does not hold on an execution.  Test suites treat any instance of
    this exception as a reproduction failure.
    """


class ClassificationError(ReproError):
    """A shared-state classifier was invoked on an ineligible event."""


class CodecError(ReproError):
    """A payload could not be encoded to / decoded from the wire format."""


class TransportError(ReproError):
    """Misuse or failure of the real-network transport layer."""
