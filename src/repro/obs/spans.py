"""Bounded maps of open causal intervals.

A span is an interval bounded by two protocol events: a multicast and
one of its deliveries, a flush start and the view install that ends it,
a settlement start and its resolution.  The start side records the open
timestamp keyed by whatever identifies the interval (a message id, a
pid); the end side looks it up and observes the duration.

The map is bounded: when it is full, the oldest open span is evicted
(FIFO).  Eviction loses the latency observation for that one interval —
acceptable for a metrics layer, but not silently: pass ``on_evict`` to
count the loss (:class:`~repro.obs.instrument.ClusterObs` surfaces it
as ``spans_evicted_total``).  The bound caps memory on hot paths where
ends can be lost (a multicast whose sender crashes never closes).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Hashable

__all__ = ["SpanMap"]


class SpanMap:
    """Open-interval starts keyed by id, with FIFO eviction when full."""

    __slots__ = ("_capacity", "_open", "_order", "_on_evict")

    def __init__(
        self,
        capacity: int = 4096,
        on_evict: Callable[[Hashable], None] | None = None,
    ) -> None:
        if capacity <= 0:
            raise ValueError("SpanMap capacity must be positive")
        self._capacity = capacity
        self._open: dict[Hashable, float] = {}
        self._order: deque[Hashable] = deque()
        self._on_evict = on_evict

    def __len__(self) -> int:
        return len(self._open)

    def open(self, key: Hashable, at: float) -> None:
        """Record the start of an interval (first start wins)."""
        if key in self._open:
            return
        while len(self._open) >= self._capacity:
            old = self._order.popleft()
            if self._open.pop(old, None) is not None and self._on_evict is not None:
                self._on_evict(old)
        self._open[key] = at
        self._order.append(key)

    def get(self, key: Hashable, default: Any = None) -> float | Any:
        """Start time of an open interval, without closing it.

        Used for one-to-many spans (one multicast, many deliveries).
        """
        return self._open.get(key, default)

    def close(self, key: Hashable, at: float) -> float | None:
        """Close an interval and return its duration, or None if unknown."""
        start = self._open.pop(key, None)
        if start is None:
            return None
        return at - start

    def discard(self, key: Hashable) -> None:
        """Drop an open interval without observing it (abandon)."""
        self._open.pop(key, None)
