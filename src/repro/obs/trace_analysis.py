"""Causal-tree reconstruction, critical paths and Perfetto export.

The flight recorders (:mod:`repro.obs.tracing`) capture *flat* span
events, one ring per node, each on its own scheduler clock.  This
module turns a set of :class:`~repro.obs.tracing.TraceDump` objects
back into analysis-ready structure, in three steps:

1. **merge** — every event's times are shifted onto one shared base
   (``epoch + t``: wall seconds for realnet dumps, virtual seconds for
   the simulator's zero epoch), and duplicate span ids across dumps
   collapse (the in-process realnet ships one shared ring per cluster,
   the proc runtime one ring per child);
2. **trees** — events link up on ``parent`` into one causal tree per
   ``trace_id``; an event whose parent never made it into any ring
   (evicted, or the node crashed) roots its own orphan subtree rather
   than vanishing;
3. **analysis** — per-tree critical paths (the chain of spans that
   determined when the root finished: ``view.change -> view.agree ->
   view.install -> ...``), name-keyed latency breakdowns, a terminal
   tree renderer and a Chrome/Perfetto ``traceEvents`` JSON exporter
   for ``ui.perfetto.dev``.

Everything here is pure post-processing over immutable dumps: no
cluster handles, no codecs, no clocks — the same functions serve the
``repro obs trace`` CLI, the workload post-mortems and the tests.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from repro.obs.tracing import SpanEvent, TraceDump

__all__ = [
    "Span",
    "TraceTree",
    "build_trees",
    "critical_path",
    "breakdown",
    "render_tree",
    "render_trees",
    "perfetto_events",
    "write_perfetto",
]


@dataclass
class Span:
    """One merged span: its event, provenance, and resolved children.

    ``t0``/``t1`` are on the merged time base (the dump's ``epoch`` plus
    the event's local scheduler time), so spans from different realnet
    processes compare directly.  ``orphan`` marks a span whose recorded
    parent id was not found in any dump.
    """

    event: SpanEvent
    node: str
    runtime: str
    t0: float
    t1: float
    children: list["Span"] = field(default_factory=list)
    orphan: bool = False

    @property
    def name(self) -> str:
        return self.event.name

    @property
    def span_id(self) -> int:
        return self.event.span_id

    @property
    def duration(self) -> float:
        return self.t1 - self.t0

    @property
    def attrs(self) -> dict[str, Any]:
        return {str(k): v for k, v in self.event.attrs}

    def walk(self) -> Iterable["Span"]:
        """This span, then every descendant, depth-first in start order."""
        yield self
        for child in self.children:
            yield from child.walk()


@dataclass
class TraceTree:
    """One causal tree: the root span plus any orphan subtrees.

    ``roots`` holds the true root (``parent == 0``) first when present,
    then orphan subtrees of the same trace, each sorted by start time.
    """

    trace_id: int
    roots: list[Span]

    @property
    def root(self) -> Span:
        return self.roots[0]

    @property
    def kind(self) -> str:
        """The root span's name — the tree's taxonomy entry point."""
        return self.root.name

    def spans(self) -> list[Span]:
        return [span for root in self.roots for span in root.walk()]

    @property
    def start(self) -> float:
        return min(root.t0 for root in self.roots)

    @property
    def end(self) -> float:
        return max(span.t1 for span in self.spans())


def build_trees(dumps: Iterable[TraceDump | None]) -> list[TraceTree]:
    """Merge per-node dumps into causal trees, one per ``trace_id``.

    ``None`` entries (traceless nodes skipped by the pullers) are
    ignored.  Duplicate span ids — the same shared ring pulled through
    several co-located nodes — keep the first occurrence.  Trees come
    back sorted by start time; children within a span by start time.
    """
    by_id: dict[int, Span] = {}
    for dump in dumps:
        if dump is None:
            continue
        for event in dump.events:
            if event.span_id in by_id:
                continue
            by_id[event.span_id] = Span(
                event=event,
                node=dump.node,
                runtime=dump.runtime,
                t0=dump.epoch + event.t0,
                t1=dump.epoch + event.t1,
            )
    trees: dict[int, list[Span]] = {}
    for span in by_id.values():
        parent = by_id.get(span.event.parent) if span.event.parent else None
        if parent is not None:
            parent.children.append(span)
        else:
            span.orphan = bool(span.event.parent)
            trees.setdefault(span.event.trace_id, []).append(span)
    for span in by_id.values():
        span.children.sort(key=lambda s: (s.t0, s.span_id))
    result = []
    for trace_id, roots in trees.items():
        roots.sort(key=lambda s: (s.orphan, s.t0, s.span_id))
        result.append(TraceTree(trace_id=trace_id, roots=roots))
    result.sort(key=lambda t: (t.start, t.trace_id))
    return result


def critical_path(tree: TraceTree) -> list[Span]:
    """The chain of spans that determined when the tree finished.

    Starting at the root, repeatedly descend into the child subtree
    that *finished last* — the blocking dependency at every level.  For
    a view install this reads ``view.change -> view.agree ->
    view.install`` (then transfer, when state moved); for a client put
    ``client.put -> put.quorum -> mcast.deliver``.
    """

    def subtree_end(span: Span) -> float:
        return max(s.t1 for s in span.walk())

    path = [tree.root]
    span = tree.root
    while span.children:
        span = max(span.children, key=lambda s: (subtree_end(s), s.t0))
        path.append(span)
    return path


def breakdown(tree: TraceTree) -> list[tuple[str, int, float]]:
    """Per-span-name latency totals over one tree.

    Returns ``(name, count, total_duration)`` rows sorted by total
    duration, largest first — the "where did the time go" table the
    CLI prints under each reconstructed tree.
    """
    totals: dict[str, tuple[int, float]] = {}
    for span in tree.spans():
        count, total = totals.get(span.name, (0, 0.0))
        totals[span.name] = (count + 1, total + span.duration)
    return sorted(
        ((name, count, total) for name, (count, total) in totals.items()),
        key=lambda row: (-row[2], row[0]),
    )


# -- rendering --------------------------------------------------------------


def _fmt_s(seconds: float) -> str:
    """Human duration: sub-second as ms, else seconds."""
    if abs(seconds) < 1.0:
        return f"{seconds * 1e3:.3g}ms"
    return f"{seconds:.3g}s"


def render_tree(tree: TraceTree, *, base: float | None = None) -> str:
    """One causal tree as indented terminal text.

    ``base`` is the time origin offsets print against (default: the
    tree's own start), so a multi-tree listing can share one origin.
    """
    origin = tree.start if base is None else base
    lines = [
        f"trace 0x{tree.trace_id:x} ({tree.kind}) — "
        f"{len(tree.spans())} spans, {_fmt_s(tree.end - tree.start)}"
    ]

    def emit(span: Span, depth: int) -> None:
        at = _fmt_s(span.t0 - origin)
        wall = (
            "instant"
            if span.t1 == span.t0
            else f"{_fmt_s(span.duration)}"
        )
        extra = "".join(
            f" {key}={value}" for key, value in sorted(span.attrs.items())
        )
        orphan = " (orphaned)" if span.orphan else ""
        lines.append(
            f"{'  ' * (depth + 1)}{span.name} [{span.node}/{span.event.pid}] "
            f"+{at} {wall}{extra}{orphan}"
        )
        for child in span.children:
            emit(child, depth + 1)

    for root in tree.roots:
        emit(root, 0)
    return "\n".join(lines)


def render_trees(
    trees: Sequence[TraceTree],
    *,
    limit: int = 0,
    paths: bool = True,
) -> str:
    """Render ``trees`` (optionally only the first ``limit``) with a
    critical-path line under each."""
    shown = trees[:limit] if limit else trees
    blocks = []
    for tree in shown:
        block = render_tree(tree)
        if paths:
            chain = critical_path(tree)
            hops = " -> ".join(span.name for span in chain)
            block += f"\n  critical path: {hops} ({_fmt_s(tree.end - tree.start)})"
        blocks.append(block)
    if limit and len(trees) > limit:
        blocks.append(f"... {len(trees) - limit} more trees")
    return "\n\n".join(blocks)


# -- Perfetto / Chrome trace-event export -----------------------------------
#
# The exported file loads directly in ui.perfetto.dev or chrome://tracing:
# the JSON object format with a "traceEvents" array of "X" (complete)
# and "i" (instant) events, microsecond timestamps, one Perfetto
# "process" per emitting node and one "thread" per stack pid.


def perfetto_events(trees: Sequence[TraceTree]) -> list[dict[str, Any]]:
    """Flatten causal trees into Chrome trace-event dicts."""
    if not trees:
        return []
    origin = min(tree.start for tree in trees)
    events: list[dict[str, Any]] = []
    named: set[tuple[int, int]] = set()
    tids: dict[str, int] = {}
    for tree in trees:
        for span in tree.spans():
            pid = span.event.site
            tid = tids.setdefault(span.event.pid, len(tids) + 1)
            if (pid, 0) not in named:
                named.add((pid, 0))
                events.append({
                    "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
                    "args": {"name": f"site{pid} ({span.node})"},
                })
            if (pid, tid) not in named:
                named.add((pid, tid))
                events.append({
                    "ph": "M", "name": "thread_name", "pid": pid, "tid": tid,
                    "args": {"name": span.event.pid},
                })
            base = {
                "name": span.name,
                "cat": span.name.split(".", 1)[0],
                "pid": pid,
                "tid": tid,
                "ts": (span.t0 - origin) * 1e6,
                "args": {
                    "trace_id": f"0x{tree.trace_id:x}",
                    "span_id": f"0x{span.span_id:x}",
                    "parent": f"0x{span.event.parent:x}",
                    **span.attrs,
                },
            }
            if span.t1 == span.t0:
                events.append({**base, "ph": "i", "s": "t"})
            else:
                events.append({
                    **base, "ph": "X", "dur": span.duration * 1e6,
                })
    return events


def write_perfetto(path: str, trees: Sequence[TraceTree]) -> str:
    """Write ``trees`` as a Perfetto-loadable trace-event JSON file."""
    payload = {
        "traceEvents": perfetto_events(trees),
        "displayTimeUnit": "ms",
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh)
        fh.write("\n")
    return path
