"""Live metrics console: poll snapshots from running realnet nodes.

``repro obs watch`` dials each node's normal listening socket, performs
the standard ``hello``/``welcome`` negotiation (so it works against
JSON-only and binary nodes alike), then sends one **obs request** frame
and reads back one **obs reply** carrying a
:class:`~repro.obs.snapshot.MetricsSnapshot` in the negotiated format:

* JSON: request ``{"k": "obs_req"}``, reply ``{"k": "obs_snap", "p":
  <tagged snapshot>}``.
* bin1: a body opening with the frame-kind byte :data:`OBS_KIND`
  (``0x02``); the reply carries the bin1-encoded snapshot after the
  kind byte.

The same frame kind also serves **flight-recorder pulls** (``repro obs
trace``): a request with the trace discriminator — JSON ``{"k":
"obs_req", "what": "trace"}``, bin1 body ``[OBS_KIND, OBS_TRACE]`` —
is answered with the node's :class:`~repro.obs.tracing.TraceDump`
(JSON ``{"k": "obs_trace", "p": ...}``; bin1 ``[OBS_KIND, OBS_TRACE]``
+ encoded dump).  Nodes without tracing simply don't answer, and the
client times out and reports the node as traceless.

On the node, :class:`~repro.realnet.transport.FrameServer` hands any
non-``msg`` frame to its ``on_control`` hook, which
:func:`handle_obs_control` serves — protocol traffic and observability
share one socket, one negotiation, and one codec registry.

A node whose socket is down (or dies mid-read) is *skipped* for the
poll, never fatal: :func:`fetch_snapshots` yields ``None`` for it and
reports the skip through ``on_skip``, which :func:`watch` counts in its
``watch_nodes_skipped_total`` gauge — the loop keeps polling and picks
the node back up when it returns.
"""

from __future__ import annotations

import asyncio
import time
from typing import Any, Callable, Sequence

from repro.errors import CodecError
from repro.obs.snapshot import MetricsSnapshot, merge_snapshots
from repro.realnet.codec import _LEN, decode_frame_body, encode_frame
from repro.realnet.codec import decode_value, encode_value
from repro.realnet.codec_bin import (
    FORMAT_JSON,
    WIRE_FORMATS,
    decode_value_bin,
    encode_value_bin,
    schema_fingerprint,
    supported_formats,
)

__all__ = [
    "OBS_KIND",
    "OBS_TRACE",
    "handle_obs_control",
    "fetch_snapshot",
    "fetch_snapshots",
    "fetch_trace",
    "fetch_traces",
    "render_watch",
    "watch",
]

#: Frame-kind byte for bin1 observability frames (``msg`` is 0x01).
OBS_KIND = 0x02

#: Sub-kind byte selecting a flight-recorder pull over 0x02.
OBS_TRACE = 0x01

_REQUEST_TIMEOUT = 5.0


# -- frame builders / parsers (both codecs) --------------------------------


def obs_request_body(fmt: Any, what: str = "snapshot") -> bytes:
    if fmt.binary:
        if what == "trace":
            return bytes([OBS_KIND, OBS_TRACE])
        return bytes([OBS_KIND])
    import json

    frame: dict[str, Any] = {"k": "obs_req"}
    if what != "snapshot":
        frame["what"] = what
    return json.dumps(frame).encode("utf-8")


def obs_reply_frame(fmt: Any, snapshot: MetricsSnapshot) -> bytes:
    """One framed obs reply in the connection's negotiated format."""
    if fmt.binary:
        body = bytes([OBS_KIND]) + encode_value_bin(snapshot)
        return _LEN.pack(len(body)) + body
    return encode_frame({"k": "obs_snap", "p": encode_value(snapshot)})


def obs_trace_reply_frame(fmt: Any, dump: Any) -> bytes:
    """One framed flight-recorder reply (a TraceDump) in ``fmt``."""
    if fmt.binary:
        body = bytes([OBS_KIND, OBS_TRACE]) + encode_value_bin(dump)
        return _LEN.pack(len(body)) + body
    return encode_frame({"k": "obs_trace", "p": encode_value(dump)})


def parse_obs_request_kind(fmt: Any, body: bytes) -> str | None:
    """``"snapshot"`` / ``"trace"`` if this body is an obs request."""
    if fmt.binary:
        if not body or body[0] != OBS_KIND or len(body) > 2:
            return None
        if len(body) == 1:
            return "snapshot"
        return "trace" if body[1] == OBS_TRACE else None
    try:
        frame = decode_frame_body(body)
    except CodecError:
        return None
    if frame.get("k") != "obs_req":
        return None
    what = frame.get("what", "snapshot")
    return what if what in ("snapshot", "trace") else None


def parse_obs_request(fmt: Any, body: bytes) -> bool:
    """Is this non-``msg`` frame body an obs *snapshot* request?"""
    return parse_obs_request_kind(fmt, body) == "snapshot"


def parse_obs_reply(fmt: Any, body: bytes) -> MetricsSnapshot | None:
    if fmt.binary:
        if not body or body[0] != OBS_KIND:
            return None
        value = decode_value_bin(body[1:])
    else:
        frame = decode_frame_body(body)
        if frame.get("k") != "obs_snap":
            return None
        value = decode_value(frame.get("p"))
    if not isinstance(value, MetricsSnapshot):
        raise CodecError(f"obs reply carried {type(value).__name__}")
    return value


def parse_obs_trace_reply(fmt: Any, body: bytes) -> Any | None:
    """The TraceDump if this body is a flight-recorder reply."""
    from repro.obs.tracing import TraceDump

    if fmt.binary:
        if len(body) < 2 or body[0] != OBS_KIND or body[1] != OBS_TRACE:
            return None
        value = decode_value_bin(body[2:])
    else:
        frame = decode_frame_body(body)
        if frame.get("k") != "obs_trace":
            return None
        value = decode_value(frame.get("p"))
    if not isinstance(value, TraceDump):
        raise CodecError(f"obs trace reply carried {type(value).__name__}")
    return value


def handle_obs_control(
    fmt: Any,
    body: bytes,
    provider: Callable[[], MetricsSnapshot] | None,
    trace_provider: Callable[[], Any] | None = None,
) -> bytes | None:
    """Server-side hook: answer obs requests, ignore everything else.

    Wired into :class:`~repro.realnet.transport.FrameServer` as its
    ``on_control`` callback.  Returns the framed reply to write back,
    or None for frames this layer does not understand (including trace
    requests on nodes without tracing — the client times out rather
    than the node guessing at an answer).
    """
    kind = parse_obs_request_kind(fmt, body)
    if kind == "snapshot" and provider is not None:
        return obs_reply_frame(fmt, provider())
    if kind == "trace" and trace_provider is not None:
        return obs_trace_reply_frame(fmt, trace_provider())
    return None


# -- the polling client ----------------------------------------------------


async def _read_raw_frame(reader: asyncio.StreamReader) -> bytes:
    prefix = await reader.readexactly(_LEN.size)
    (length,) = _LEN.unpack(prefix)
    return await reader.readexactly(length)


async def _negotiate(
    host: str, port: int, codec: str
) -> tuple[asyncio.StreamReader, asyncio.StreamWriter, Any]:
    """Dial one node and run the hello/welcome codec negotiation."""
    reader, writer = await asyncio.open_connection(host, port)
    writer.write(
        encode_frame(
            {
                "k": "hello",
                "src": [-1, 0],  # not a site: an observer
                "codecs": list(supported_formats(codec)),
                "schema": schema_fingerprint(),
            }
        )
    )
    await writer.drain()
    welcome = decode_frame_body(await _read_raw_frame(reader))
    name = welcome.get("codec") if welcome.get("k") == "welcome" else None
    fmt = WIRE_FORMATS[name if name in WIRE_FORMATS else FORMAT_JSON]
    return reader, writer, fmt


async def _fetch_obs(
    host: str,
    port: int,
    *,
    what: str,
    parse: Callable[[Any, bytes], Any],
    codec: str,
    timeout: float,
) -> Any:
    """One negotiated obs request/reply round trip."""

    async def _go() -> Any:
        reader, writer, fmt = await _negotiate(host, port, codec)
        try:
            body = obs_request_body(fmt, what)
            writer.write(_LEN.pack(len(body)) + body)
            await writer.drain()
            while True:
                reply = parse(fmt, await _read_raw_frame(reader))
                if reply is not None:
                    return reply
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except OSError:
                pass

    return await asyncio.wait_for(_go(), timeout=timeout)


async def fetch_snapshot(
    host: str,
    port: int,
    *,
    codec: str = "bin",
    timeout: float = _REQUEST_TIMEOUT,
) -> MetricsSnapshot:
    """Dial one node, negotiate, request and return its snapshot."""
    return await _fetch_obs(
        host, port, what="snapshot", parse=parse_obs_reply,
        codec=codec, timeout=timeout,
    )


async def fetch_trace(
    host: str,
    port: int,
    *,
    codec: str = "bin",
    timeout: float = _REQUEST_TIMEOUT,
) -> Any:
    """Pull one node's flight recorder (a TraceDump) over 0x02.

    Times out (the node never answers) when the node has no tracer.
    """
    return await _fetch_obs(
        host, port, what="trace", parse=parse_obs_trace_reply,
        codec=codec, timeout=timeout,
    )


#: Errors that mean "this node is down / mid-restart", not "the poll is
#: broken": every per-node fetch swallows these and yields None so one
#: dead socket can never abort a whole poll round.  IncompleteReadError
#: (a node dying mid-read) is an EOFError, *not* an OSError — its
#: absence here once aborted `repro obs watch` loops on node crashes.
_SKIP_ERRORS = (
    OSError,
    EOFError,
    CodecError,
    asyncio.TimeoutError,
    ConnectionError,
)


async def fetch_snapshots(
    targets: Sequence[tuple[str, int]],
    *,
    codec: str = "bin",
    timeout: float = _REQUEST_TIMEOUT,
    on_skip: Callable[[], None] | None = None,
) -> list[MetricsSnapshot | None]:
    """Poll every target concurrently; unreachable nodes yield None.

    ``on_skip`` is called once per node skipped this round (socket
    down, died mid-read, garbled reply, timeout) — the watch loop's
    skip gauge hangs off it.
    """

    async def _one(host: str, port: int) -> MetricsSnapshot | None:
        try:
            return await fetch_snapshot(host, port, codec=codec, timeout=timeout)
        except _SKIP_ERRORS:
            if on_skip is not None:
                on_skip()
            return None

    return list(
        await asyncio.gather(*(_one(host, port) for host, port in targets))
    )


async def fetch_traces(
    targets: Sequence[tuple[str, int]],
    *,
    codec: str = "bin",
    timeout: float = _REQUEST_TIMEOUT,
) -> list[Any]:
    """Pull every target's flight recorder; traceless nodes yield None."""

    async def _one(host: str, port: int) -> Any:
        try:
            return await fetch_trace(host, port, codec=codec, timeout=timeout)
        except _SKIP_ERRORS:
            return None

    return list(
        await asyncio.gather(*(_one(host, port) for host, port in targets))
    )


# -- console rendering -----------------------------------------------------

_WATCH_COLUMNS = (
    ("views", "view_changes_total"),
    ("eviews", "eview_changes_total"),
    ("mcast", "multicasts_total"),
    ("deliv", "deliveries_total"),
    ("settled", "settlement_sessions_total"),
    ("crashes", "crashes_total"),
)


def render_watch(
    targets: Sequence[tuple[str, int]],
    snapshots: Sequence[MetricsSnapshot | None],
) -> str:
    """One poll's console frame: a row per node plus a merged total row."""
    header = ["node".ljust(22)] + [name.rjust(8) for name, _ in _WATCH_COLUMNS]
    lines = ["".join(header)]
    # A snapshot's source names its *registry*.  Co-located nodes
    # (in-process RealCluster) share one registry and all answer with
    # source="cluster"; dedupe by source so the merged row only sums
    # genuinely distinct registries (multi-process deployments).
    alive: list[MetricsSnapshot] = []
    seen: set[str] = set()
    for s in snapshots:
        if s is not None and s.source not in seen:
            seen.add(s.source)
            alive.append(s)
    for (host, port), snap in zip(targets, snapshots):
        label = f"{host}:{port}".ljust(22)
        if snap is None:
            lines.append(label + "unreachable".rjust(8))
            continue
        cells = [
            format(int(snap.total(metric)), "d").rjust(8)
            for _, metric in _WATCH_COLUMNS
        ]
        lines.append(label + "".join(cells))
    if len(alive) > 1:
        merged = merge_snapshots(*alive)
        cells = [
            format(int(merged.total(metric)), "d").rjust(8)
            for _, metric in _WATCH_COLUMNS
        ]
        lines.append("(merged)".ljust(22) + "".join(cells))
    return "\n".join(lines)


def watch(
    targets: Sequence[tuple[str, int]],
    *,
    interval: float = 2.0,
    count: int = 0,
    codec: str = "bin",
    out: Callable[[str], None] = print,
    registry: Any = None,
) -> int:
    """Poll ``targets`` every ``interval`` seconds, ``count`` times
    (0 = until interrupted).  Returns 0 if the final poll reached at
    least one node.

    Down nodes are skipped for the round, never fatal; cumulative skips
    are exported as the ``watch_nodes_skipped_total`` gauge on
    ``registry`` (one is created if not supplied) and shown per frame.
    """
    if registry is None:
        from repro.obs.registry import MetricsRegistry

        registry = MetricsRegistry(clock=time.time, runtime="watch")
    skips = [0]

    def on_skip() -> None:
        skips[0] += 1

    registry.gauge_callback(
        "watch_nodes_skipped_total",
        "Node polls skipped because the node's socket was down",
        lambda: float(skips[0]),
    )
    polls = 0
    any_alive = False
    try:
        while True:
            snapshots = asyncio.run(
                fetch_snapshots(targets, codec=codec, on_skip=on_skip)
            )
            any_alive = any(s is not None for s in snapshots)
            stamp = time.strftime("%H:%M:%S")
            out(f"-- {stamp} --")
            out(render_watch(targets, snapshots))
            if skips[0]:
                out(f"(skipped node polls so far: {skips[0]})")
            polls += 1
            if count and polls >= count:
                break
            time.sleep(interval)
    except KeyboardInterrupt:  # pragma: no cover - interactive
        pass
    return 0 if any_alive else 1
