"""Live metrics console: poll snapshots from running realnet nodes.

``repro obs watch`` dials each node's normal listening socket, performs
the standard ``hello``/``welcome`` negotiation (so it works against
JSON-only and binary nodes alike), then sends one **obs request** frame
and reads back one **obs reply** carrying a
:class:`~repro.obs.snapshot.MetricsSnapshot` in the negotiated format:

* JSON: request ``{"k": "obs_req"}``, reply ``{"k": "obs_snap", "p":
  <tagged snapshot>}``.
* bin1: a body opening with the frame-kind byte :data:`OBS_KIND`
  (``0x02``); the reply carries the bin1-encoded snapshot after the
  kind byte.

On the node, :class:`~repro.realnet.transport.FrameServer` hands any
non-``msg`` frame to its ``on_control`` hook, which
:func:`handle_obs_control` serves — protocol traffic and observability
share one socket, one negotiation, and one codec registry.
"""

from __future__ import annotations

import asyncio
import time
from typing import Any, Callable, Sequence

from repro.errors import CodecError
from repro.obs.snapshot import MetricsSnapshot, merge_snapshots
from repro.realnet.codec import _LEN, decode_frame_body, encode_frame
from repro.realnet.codec import decode_value, encode_value
from repro.realnet.codec_bin import (
    FORMAT_JSON,
    WIRE_FORMATS,
    decode_value_bin,
    encode_value_bin,
    schema_fingerprint,
    supported_formats,
)

__all__ = [
    "OBS_KIND",
    "handle_obs_control",
    "fetch_snapshot",
    "fetch_snapshots",
    "render_watch",
    "watch",
]

#: Frame-kind byte for bin1 observability frames (``msg`` is 0x01).
OBS_KIND = 0x02

_REQUEST_TIMEOUT = 5.0


# -- frame builders / parsers (both codecs) --------------------------------


def obs_request_body(fmt: Any) -> bytes:
    if fmt.binary:
        return bytes([OBS_KIND])
    import json

    return json.dumps({"k": "obs_req"}).encode("utf-8")


def obs_reply_frame(fmt: Any, snapshot: MetricsSnapshot) -> bytes:
    """One framed obs reply in the connection's negotiated format."""
    if fmt.binary:
        body = bytes([OBS_KIND]) + encode_value_bin(snapshot)
        return _LEN.pack(len(body)) + body
    return encode_frame({"k": "obs_snap", "p": encode_value(snapshot)})


def parse_obs_request(fmt: Any, body: bytes) -> bool:
    """Is this non-``msg`` frame body an obs request?"""
    if fmt.binary:
        return len(body) == 1 and body[0] == OBS_KIND
    try:
        frame = decode_frame_body(body)
    except CodecError:
        return False
    return frame.get("k") == "obs_req"


def parse_obs_reply(fmt: Any, body: bytes) -> MetricsSnapshot | None:
    if fmt.binary:
        if not body or body[0] != OBS_KIND:
            return None
        value = decode_value_bin(body[1:])
    else:
        frame = decode_frame_body(body)
        if frame.get("k") != "obs_snap":
            return None
        value = decode_value(frame.get("p"))
    if not isinstance(value, MetricsSnapshot):
        raise CodecError(f"obs reply carried {type(value).__name__}")
    return value


def handle_obs_control(
    fmt: Any,
    body: bytes,
    provider: Callable[[], MetricsSnapshot] | None,
) -> bytes | None:
    """Server-side hook: answer obs requests, ignore everything else.

    Wired into :class:`~repro.realnet.transport.FrameServer` as its
    ``on_control`` callback.  Returns the framed reply to write back,
    or None for frames this layer does not understand.
    """
    if provider is None or not parse_obs_request(fmt, body):
        return None
    return obs_reply_frame(fmt, provider())


# -- the polling client ----------------------------------------------------


async def _read_raw_frame(reader: asyncio.StreamReader) -> bytes:
    prefix = await reader.readexactly(_LEN.size)
    (length,) = _LEN.unpack(prefix)
    return await reader.readexactly(length)


async def fetch_snapshot(
    host: str,
    port: int,
    *,
    codec: str = "bin",
    timeout: float = _REQUEST_TIMEOUT,
) -> MetricsSnapshot:
    """Dial one node, negotiate, request and return its snapshot."""

    async def _go() -> MetricsSnapshot:
        reader, writer = await asyncio.open_connection(host, port)
        try:
            offer = supported_formats(codec)
            writer.write(
                encode_frame(
                    {
                        "k": "hello",
                        "src": [-1, 0],  # not a site: an observer
                        "codecs": list(offer),
                        "schema": schema_fingerprint(),
                    }
                )
            )
            await writer.drain()
            welcome = decode_frame_body(await _read_raw_frame(reader))
            name = welcome.get("codec") if welcome.get("k") == "welcome" else None
            fmt = WIRE_FORMATS[name if name in WIRE_FORMATS else FORMAT_JSON]
            body = obs_request_body(fmt)
            writer.write(_LEN.pack(len(body)) + body)
            await writer.drain()
            while True:
                reply = parse_obs_reply(fmt, await _read_raw_frame(reader))
                if reply is not None:
                    return reply
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except OSError:
                pass

    return await asyncio.wait_for(_go(), timeout=timeout)


async def fetch_snapshots(
    targets: Sequence[tuple[str, int]],
    *,
    codec: str = "bin",
    timeout: float = _REQUEST_TIMEOUT,
) -> list[MetricsSnapshot | None]:
    """Poll every target concurrently; unreachable nodes yield None."""

    async def _one(host: str, port: int) -> MetricsSnapshot | None:
        try:
            return await fetch_snapshot(host, port, codec=codec, timeout=timeout)
        except (OSError, CodecError, asyncio.TimeoutError, ConnectionError):
            return None

    return list(
        await asyncio.gather(*(_one(host, port) for host, port in targets))
    )


# -- console rendering -----------------------------------------------------

_WATCH_COLUMNS = (
    ("views", "view_changes_total"),
    ("eviews", "eview_changes_total"),
    ("mcast", "multicasts_total"),
    ("deliv", "deliveries_total"),
    ("settled", "settlement_sessions_total"),
    ("crashes", "crashes_total"),
)


def render_watch(
    targets: Sequence[tuple[str, int]],
    snapshots: Sequence[MetricsSnapshot | None],
) -> str:
    """One poll's console frame: a row per node plus a merged total row."""
    header = ["node".ljust(22)] + [name.rjust(8) for name, _ in _WATCH_COLUMNS]
    lines = ["".join(header)]
    # A snapshot's source names its *registry*.  Co-located nodes
    # (in-process RealCluster) share one registry and all answer with
    # source="cluster"; dedupe by source so the merged row only sums
    # genuinely distinct registries (multi-process deployments).
    alive: list[MetricsSnapshot] = []
    seen: set[str] = set()
    for s in snapshots:
        if s is not None and s.source not in seen:
            seen.add(s.source)
            alive.append(s)
    for (host, port), snap in zip(targets, snapshots):
        label = f"{host}:{port}".ljust(22)
        if snap is None:
            lines.append(label + "unreachable".rjust(8))
            continue
        cells = [
            format(int(snap.total(metric)), "d").rjust(8)
            for _, metric in _WATCH_COLUMNS
        ]
        lines.append(label + "".join(cells))
    if len(alive) > 1:
        merged = merge_snapshots(*alive)
        cells = [
            format(int(merged.total(metric)), "d").rjust(8)
            for _, metric in _WATCH_COLUMNS
        ]
        lines.append("(merged)".ljust(22) + "".join(cells))
    return "\n".join(lines)


def watch(
    targets: Sequence[tuple[str, int]],
    *,
    interval: float = 2.0,
    count: int = 0,
    codec: str = "bin",
    out: Callable[[str], None] = print,
) -> int:
    """Poll ``targets`` every ``interval`` seconds, ``count`` times
    (0 = until interrupted).  Returns 0 if the final poll reached at
    least one node."""
    polls = 0
    any_alive = False
    try:
        while True:
            snapshots = asyncio.run(fetch_snapshots(targets, codec=codec))
            any_alive = any(s is not None for s in snapshots)
            stamp = time.strftime("%H:%M:%S")
            out(f"-- {stamp} --")
            out(render_watch(targets, snapshots))
            polls += 1
            if count and polls >= count:
                break
            time.sleep(interval)
    except KeyboardInterrupt:  # pragma: no cover - interactive
        pass
    return 0 if any_alive else 1
