"""Frozen snapshot types for metric export and wire transport.

A :class:`MetricsSnapshot` is a point-in-time copy of a registry: a flat
tuple of :class:`MetricSample` rows, sorted by ``(name, labels)`` so two
snapshots of equal state serialize byte-identically.  Both types are
plain frozen dataclasses built from the wire codec's value vocabulary
(strings, floats, ints, nested tuples), so they are registered with the
JSON and bin1 codecs (see :mod:`repro.realnet.codec`) and travel the
link protocol for ``repro obs watch``.

Merging snapshots sums counters, gauges and histograms key-wise.  That
matches the merge semantics of the underlying quantities (per-node
counters add up to cluster totals); it is associative as long as the
summed values are exactly representable, which holds for all counts and
for virtual-time sums in the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["MetricSample", "MetricsSnapshot", "merge_snapshots"]


@dataclass(frozen=True)
class MetricSample:
    """One exported time series at one instant.

    ``value`` is the counter/gauge value, or the running sum for a
    histogram.  ``count`` and ``buckets`` are only populated for
    histograms; ``buckets`` holds cumulative ``(upper_bound, count)``
    pairs ending with ``(inf, count)``, i.e. Prometheus ``le`` form.
    """

    name: str
    kind: str  # "counter" | "gauge" | "histogram"
    labels: tuple[tuple[str, str], ...]
    value: float
    count: int = 0
    buckets: tuple[tuple[float, int], ...] = ()

    def label_dict(self) -> dict[str, str]:
        return dict(self.labels)


@dataclass(frozen=True)
class MetricsSnapshot:
    """A registry's state at one instant, ready for export or the wire."""

    source: str  # who took it: "cluster", "site3", "merged", ...
    runtime: str  # "sim" | "realnet"
    time: float  # registry clock at snapshot time (virtual or wall)
    samples: tuple[MetricSample, ...]

    def sample(self, name: str, **labels: str) -> MetricSample | None:
        """First sample matching ``name`` and the given label subset."""
        want = labels.items()
        for s in self.samples:
            if s.name == name and all(
                dict(s.labels).get(k) == v for k, v in want
            ):
                return s
        return None

    def total(self, name: str) -> float:
        """Sum of ``value`` over every sample named ``name``."""
        return sum(s.value for s in self.samples if s.name == name)

    def names(self) -> tuple[str, ...]:
        return tuple(sorted({s.name for s in self.samples}))


def _merge_buckets(
    a: tuple[tuple[float, int], ...], b: tuple[tuple[float, int], ...]
) -> tuple[tuple[float, int], ...]:
    if not a:
        return b
    if not b:
        return a
    merged: dict[float, int] = {}
    for le, cnt in a:
        merged[le] = merged.get(le, 0) + cnt
    for le, cnt in b:
        merged[le] = merged.get(le, 0) + cnt
    return tuple(sorted(merged.items()))


def merge_snapshots(
    *snapshots: MetricsSnapshot, source: str = "merged"
) -> MetricsSnapshot:
    """Key-wise sum of any number of snapshots.

    Counters, gauges, histogram sums/counts and bucket counts all add;
    the merged time is the max of the inputs.  The runtime is preserved
    when all inputs agree and reported as ``"mixed"`` otherwise.
    """
    keyed: dict[tuple[str, str, tuple[tuple[str, str], ...]], MetricSample] = {}
    runtimes: list[str] = []
    at = 0.0
    for snap in snapshots:
        if snap.runtime and snap.runtime not in runtimes:
            runtimes.append(snap.runtime)
        at = max(at, snap.time)
        for s in snap.samples:
            key = (s.name, s.kind, s.labels)
            prev = keyed.get(key)
            if prev is None:
                keyed[key] = s
            else:
                keyed[key] = MetricSample(
                    name=s.name,
                    kind=s.kind,
                    labels=s.labels,
                    value=prev.value + s.value,
                    count=prev.count + s.count,
                    buckets=_merge_buckets(prev.buckets, s.buckets),
                )
    samples = tuple(
        keyed[key] for key in sorted(keyed, key=lambda k: (k[0], k[2], k[1]))
    )
    runtime = runtimes[0] if len(runtimes) == 1 else ("mixed" if runtimes else "")
    return MetricsSnapshot(source=source, runtime=runtime, time=at, samples=samples)
