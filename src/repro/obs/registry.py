"""Dependency-free metrics registry: counters, gauges, histograms.

The registry is the single store both runtimes write into.  Its clock
is injected: the simulator passes virtual time (metric values become a
deterministic function of the seed), the realnet runtime passes the
wall clock.  Everything else is runtime-agnostic.

Three instrument kinds, all labeled:

* **counter** — monotone float, ``inc()``.
* **gauge** — settable float, ``set()``/``inc()``; or a *callback*
  gauge whose value is read from a function at snapshot time.  Callback
  gauges cost nothing on the hot path, which is how scheduler/network
  counters that already exist are exported without double counting.
* **histogram** — fixed log-scale buckets (:data:`DEFAULT_BUCKETS`,
  powers of two from 2^-10 to 2^10) chosen to cover both virtual-time
  durations (tens to hundreds of units) and wall-clock seconds
  (sub-millisecond to minutes) without per-runtime configuration.

Snapshots (:meth:`MetricsRegistry.snapshot`) are sorted by name and
label values, so equal registry state exports byte-identically.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Callable, Iterable

from repro.obs.snapshot import MetricSample, MetricsSnapshot

__all__ = ["DEFAULT_BUCKETS", "MetricsRegistry"]

#: Log-scale histogram boundaries: powers of two, 2^-10 .. 2^10.
#: ~1 ms to ~17 min when observing wall seconds; fractions of a unit to
#: ~1000 units when observing virtual time.
DEFAULT_BUCKETS: tuple[float, ...] = tuple(2.0**e for e in range(-10, 11))

_INF = float("inf")


class Counter:
    """A monotone value.  Never decrement."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


class Gauge:
    """A settable value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


class Histogram:
    """Fixed-bucket histogram with Prometheus ``le`` semantics."""

    __slots__ = ("boundaries", "bucket_counts", "sum", "count")

    def __init__(self, boundaries: tuple[float, ...]) -> None:
        self.boundaries = boundaries
        # one slot per finite boundary plus the +Inf overflow slot
        self.bucket_counts = [0] * (len(boundaries) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        # first boundary >= value: the le bucket the value falls in
        self.bucket_counts[bisect_left(self.boundaries, value)] += 1
        self.sum += value
        self.count += 1

    def cumulative(self) -> tuple[tuple[float, int], ...]:
        """Cumulative ``(le, count)`` pairs, ending with ``(inf, count)``."""
        out = []
        running = 0
        for bound, cnt in zip(self.boundaries, self.bucket_counts):
            running += cnt
            out.append((bound, running))
        out.append((_INF, self.count))
        return tuple(out)


class Family:
    """All children (label combinations) of one metric name."""

    __slots__ = ("name", "help", "kind", "labelnames", "_buckets", "_children")

    def __init__(
        self,
        name: str,
        help: str,
        kind: str,
        labelnames: tuple[str, ...],
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> None:
        self.name = name
        self.help = help
        self.kind = kind
        self.labelnames = labelnames
        self._buckets = buckets
        self._children: dict[tuple[str, ...], Any] = {}

    def labels(self, *values: str) -> Any:
        """The child for one label-value combination (created on demand)."""
        child = self._children.get(values)
        if child is None:
            if len(values) != len(self.labelnames):
                raise ValueError(
                    f"{self.name}: expected {len(self.labelnames)} label "
                    f"values {self.labelnames}, got {values!r}"
                )
            if self.kind == "counter":
                child = Counter()
            elif self.kind == "gauge":
                child = Gauge()
            else:
                child = Histogram(self._buckets)
            self._children[values] = child
        return child

    def items(self) -> Iterable[tuple[tuple[str, ...], Any]]:
        return sorted(self._children.items())


class _Callback:
    """A gauge whose value is computed at snapshot time."""

    __slots__ = ("fn",)

    def __init__(self, fn: Callable[[], float]) -> None:
        self.fn = fn


class MetricsRegistry:
    """One registry per cluster; shared by every site's stack."""

    def __init__(self, clock: Callable[[], float], runtime: str) -> None:
        self._clock = clock
        self.runtime = runtime
        self._families: dict[str, Family] = {}
        # name -> (help, {labelvalues: callback})
        self._callbacks: dict[
            str, tuple[str, tuple[str, ...], dict[tuple[str, ...], _Callback]]
        ] = {}

    def now(self) -> float:
        return self._clock()

    # -- registration ------------------------------------------------------

    def _family(
        self,
        name: str,
        help: str,
        kind: str,
        labelnames: tuple[str, ...],
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> Family:
        fam = self._families.get(name)
        if fam is not None:
            if fam.kind != kind or fam.labelnames != labelnames:
                raise ValueError(
                    f"metric {name!r} re-registered with a different shape"
                )
            return fam
        if name in self._callbacks:
            raise ValueError(f"metric {name!r} already registered as a callback")
        fam = Family(name, help, kind, labelnames, buckets)
        self._families[name] = fam
        return fam

    def counter(
        self, name: str, help: str, labelnames: tuple[str, ...] = ()
    ) -> Family:
        return self._family(name, help, "counter", labelnames)

    def gauge(
        self, name: str, help: str, labelnames: tuple[str, ...] = ()
    ) -> Family:
        return self._family(name, help, "gauge", labelnames)

    def histogram(
        self,
        name: str,
        help: str,
        labelnames: tuple[str, ...] = (),
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> Family:
        return self._family(name, help, "histogram", labelnames, buckets)

    def gauge_callback(
        self,
        name: str,
        help: str,
        fn: Callable[[], float],
        labelnames: tuple[str, ...] = (),
        labelvalues: tuple[str, ...] = (),
    ) -> None:
        """Register a read-at-snapshot gauge (zero hot-path cost)."""
        if name in self._families:
            raise ValueError(f"metric {name!r} already registered as a family")
        if len(labelnames) != len(labelvalues):
            raise ValueError(f"{name}: labelnames/labelvalues length mismatch")
        entry = self._callbacks.get(name)
        if entry is None:
            entry = (help, labelnames, {})
            self._callbacks[name] = entry
        elif entry[1] != labelnames:
            raise ValueError(f"metric {name!r} re-registered with different labels")
        entry[2][labelvalues] = _Callback(fn)

    # -- reads -------------------------------------------------------------

    def value(self, name: str, *labelvalues: str) -> float:
        """Current value of one series; the read path bench harnesses use.

        Counters and gauges return their value, histograms their count,
        callbacks are evaluated.  Raises KeyError on unknown series.
        """
        entry = self._callbacks.get(name)
        if entry is not None:
            return float(entry[2][labelvalues].fn())
        fam = self._families[name]
        child = fam._children[labelvalues]
        if fam.kind == "histogram":
            return float(child.count)
        return float(child.value)

    def snapshot(self, source: str = "cluster") -> MetricsSnapshot:
        """Point-in-time copy, sorted for deterministic export."""
        samples: list[MetricSample] = []
        for name in sorted(set(self._families) | set(self._callbacks)):
            fam = self._families.get(name)
            if fam is not None:
                for values, child in fam.items():
                    labels = tuple(zip(fam.labelnames, values))
                    if fam.kind == "histogram":
                        samples.append(
                            MetricSample(
                                name=name,
                                kind="histogram",
                                labels=labels,
                                value=float(child.sum),
                                count=int(child.count),
                                buckets=child.cumulative(),
                            )
                        )
                    else:
                        samples.append(
                            MetricSample(
                                name=name,
                                kind=fam.kind,
                                labels=labels,
                                value=float(child.value),
                            )
                        )
            else:
                _help, labelnames, children = self._callbacks[name]
                for values in sorted(children):
                    samples.append(
                        MetricSample(
                            name=name,
                            kind="gauge",
                            labels=tuple(zip(labelnames, values)),
                            value=float(children[values].fn()),
                        )
                    )
        return MetricsSnapshot(
            source=source,
            runtime=self.runtime,
            time=float(self._clock()),
            samples=tuple(samples),
        )

    def help_texts(self) -> dict[str, str]:
        """name -> help, for the Prometheus exposition HELP lines."""
        out = {name: fam.help for name, fam in self._families.items()}
        out.update({name: entry[0] for name, entry in self._callbacks.items()})
        return out
