"""Snapshot exporters: Prometheus text format and JSONL.

Both formats are pure functions of a :class:`MetricsSnapshot`, whose
samples are already sorted — so for the simulator the exported bytes
are a deterministic function of the seed, and two identical seeded runs
produce byte-identical files.

Prometheus exposition (text format 0.0.4): one ``# TYPE`` line per
family, histogram samples expanded into ``_bucket{le=...}`` /
``_sum`` / ``_count`` series.  The snapshot's ``runtime`` travels as a
``runtime`` label on every series so sim and realnet scrapes of the
same workload coexist in one store.

JSONL: a meta line followed by one JSON object per sample — the format
``repro obs report --jsonl`` writes and downstream tooling greps.
"""

from __future__ import annotations

import json
import math
from typing import Mapping

from repro.obs.snapshot import MetricSample, MetricsSnapshot

__all__ = ["to_prometheus", "to_jsonl", "write_prometheus", "write_jsonl"]


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _fmt_bound(bound: float) -> str:
    if math.isinf(bound):
        return "+Inf"
    return repr(bound)


def _fmt_value(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _labelstr(labels: tuple[tuple[str, str], ...]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{_escape(v)}"' for k, v in labels)
    return "{" + inner + "}"


def to_prometheus(
    snapshot: MetricsSnapshot, help_texts: Mapping[str, str] | None = None
) -> str:
    """Render a snapshot in the Prometheus text exposition format."""
    help_texts = help_texts or {}
    lines: list[str] = []
    last_name: str | None = None
    for s in snapshot.samples:
        labels = s.labels + (("runtime", snapshot.runtime),)
        if s.name != last_name:
            text = help_texts.get(s.name)
            if text:
                lines.append(f"# HELP {s.name} {_escape(text)}")
            lines.append(f"# TYPE {s.name} {s.kind}")
            last_name = s.name
        if s.kind == "histogram":
            for bound, cum in s.buckets:
                blabels = labels + (("le", _fmt_bound(bound)),)
                lines.append(f"{s.name}_bucket{_labelstr(blabels)} {cum}")
            lines.append(f"{s.name}_sum{_labelstr(labels)} {_fmt_value(s.value)}")
            lines.append(f"{s.name}_count{_labelstr(labels)} {s.count}")
        else:
            lines.append(f"{s.name}{_labelstr(labels)} {_fmt_value(s.value)}")
    return "\n".join(lines) + "\n"


def _sample_obj(s: MetricSample) -> dict:
    obj: dict = {
        "name": s.name,
        "kind": s.kind,
        "labels": dict(s.labels),
        "value": s.value,
    }
    if s.kind == "histogram":
        obj["count"] = s.count
        obj["buckets"] = [
            ["+Inf" if math.isinf(le) else le, cum] for le, cum in s.buckets
        ]
    return obj


def to_jsonl(snapshot: MetricsSnapshot) -> str:
    """Render a snapshot as JSONL: one meta line, then one line per sample."""
    lines = [
        json.dumps(
            {
                "source": snapshot.source,
                "runtime": snapshot.runtime,
                "time": snapshot.time,
                "samples": len(snapshot.samples),
            },
            sort_keys=True,
        )
    ]
    for s in snapshot.samples:
        lines.append(json.dumps(_sample_obj(s), sort_keys=True))
    return "\n".join(lines) + "\n"


def write_prometheus(
    snapshot: MetricsSnapshot,
    path: str,
    help_texts: Mapping[str, str] | None = None,
) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(to_prometheus(snapshot, help_texts))


def write_jsonl(snapshot: MetricsSnapshot, path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(to_jsonl(snapshot))
