"""ClusterObs: the hook hub the protocol stacks report into.

One :class:`ClusterObs` per cluster, shared by every site's stack via
``stack.obs``.  Every hook is a small, allocation-light method; hot
paths in the stacks guard calls with ``if obs is not None`` so a
cluster built with ``metrics=False`` (the bench harnesses' fast path)
pays nothing.

Span bookkeeping lives here, not in the stacks: the gms layer reports
"flush started" / "view installed" and this class turns the pair into a
``view_change_duration`` observation.  Mode residency is integrated the
same way :func:`repro.trace.stats.mode_residency` integrates the trace
— per-process intervals credited on transition and crash, open
intervals credited at read time — so the live metric and the
trace-derived aggregate are directly comparable.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.obs.registry import MetricsRegistry
from repro.obs.spans import SpanMap
from repro.obs.tracing import TraceCtx, Tracer

__all__ = ["ClusterObs"]

_MODES = ("N", "R", "S")


def _site(pid: Any) -> int:
    """Site number for span lanes; -1 for non-ProcessId reporters."""
    return getattr(pid, "site", -1)


class _ModeTracker:
    """Per-process mode-interval integrator (process-time per mode)."""

    __slots__ = ("_clock", "_open", "_acc")

    def __init__(self, clock: Callable[[], float]) -> None:
        self._clock = clock
        self._open: dict[str, tuple[str, float]] = {}  # pid -> (mode, since)
        self._acc: dict[str, float] = {m: 0.0 for m in _MODES}

    def change(self, pid: str, mode: str, at: float) -> None:
        previous = self._open.get(pid)
        if previous is not None and at > previous[1]:
            self._acc[previous[0]] = self._acc.get(previous[0], 0.0) + (
                at - previous[1]
            )
        self._open[pid] = (mode, at)

    def crash(self, pid: str, at: float) -> None:
        previous = self._open.pop(pid, None)
        if previous is not None and at > previous[1]:
            self._acc[previous[0]] = self._acc.get(previous[0], 0.0) + (
                at - previous[1]
            )

    def residency(self, mode: str) -> float:
        now = self._clock()
        total = self._acc.get(mode, 0.0)
        for open_mode, since in self._open.values():
            if open_mode == mode and now > since:
                total += now - since
        return total


class ClusterObs:
    """Instrument families + span state for one cluster's registry.

    ``tracer`` (optional, attached by the cluster when tracing is on)
    turns the same hook calls into causal :class:`SpanEvent` records:
    the stacks report protocol events exactly once, and this class
    fans them out to metrics and to the flight recorder.  Every
    tracing path is guarded by ``self.tracer is None`` so a cluster
    with metrics but no tracing pays a single attribute check.
    """

    def __init__(
        self, registry: MetricsRegistry, tracer: Tracer | None = None
    ) -> None:
        self.registry = registry
        self.tracer = tracer
        r = registry
        self.view_changes = r.counter(
            "view_changes_total", "Views installed, per process", ("pid",)
        )
        self.view_change_duration = r.histogram(
            "view_change_duration",
            "Flush start to view install, per process",
            ("pid",),
        )
        self.eview_changes = r.counter(
            "eview_changes_total", "E-view changes applied, per process", ("pid",)
        )
        self.multicasts = r.counter(
            "multicasts_total", "View-synchronous multicasts sent", ("pid",)
        )
        self.deliveries = r.counter(
            "deliveries_total", "Application deliveries", ("pid",)
        )
        self.delivery_latency = r.histogram(
            "multicast_delivery_latency",
            "Multicast send to each delivery (the tail is the last delivery)",
            ("pid",),
        )
        self.settlements = r.counter(
            "settlement_sessions_total",
            "Settlement sessions resolved, by outcome",
            ("pid", "outcome"),
        )
        self.settlement_duration = r.histogram(
            "settlement_duration",
            "Settlement start to reconciliation, per process and kind",
            ("pid", "kind"),
        )
        self.mode_transitions = r.counter(
            "mode_transitions_total",
            "Figure-1 mode automaton edges taken",
            ("transition",),
        )
        self.transfer_duration = r.histogram(
            "state_transfer_duration",
            "Chunked state transfer start to final ack, per sender",
            ("pid",),
        )
        self.crashes = r.counter(
            "crashes_total", "Process crashes injected", ("pid",)
        )
        self.gossip_digests = r.counter(
            "gossip_digests_sent_total",
            "Gossip failure-detector digests pushed, per process",
            ("pid",),
        )
        self.transfer_chunks = r.counter(
            "state_transfer_chunks_total",
            "State-transfer chunks sent, per sender and stream kind",
            ("pid", "kind"),
        )
        self.transfer_resumes = r.counter(
            "state_transfer_resumes_total",
            "Chunked transfers resumed from a persisted cursor",
            ("pid",),
        )
        self.spans_evicted = r.counter(
            "spans_evicted_total",
            "Open spans evicted from bounded span maps before closing"
            " (each one is a lost latency observation)",
            ("map",),
        )
        self._mcast = SpanMap(  # msg_id -> multicast time
            4096, on_evict=lambda _key: self.spans_evicted.labels("mcast").inc()
        )
        self._transfers = SpanMap(  # (pid, peer) -> start time
            512, on_evict=lambda _key: self.spans_evicted.labels("transfer").inc()
        )
        self._flush: dict[str, float] = {}  # pid -> flush start
        self._settle: dict[str, tuple] = {}  # pid -> (start, kind, ctx)
        self._view_ctx: dict[str, TraceCtx] = {}  # pid -> last install ctx
        self._modes = _ModeTracker(r.now)
        for mode in _MODES:
            r.gauge_callback(
                "mode_residency",
                "Process-time spent per mode (trace-stats semantics)",
                (lambda m: lambda: self._modes.residency(m))(mode),
                ("mode",),
                (mode,),
            )

    # -- gms: view changes -------------------------------------------------

    def view_trigger(
        self, pid: Any, at: float, cause: TraceCtx | None = None
    ) -> TraceCtx | None:
        """Root span of a view change, minted where it was triggered.

        Returns the context to put on ``VcPropose`` / hand to the local
        round; None when tracing is off.
        """
        t = self.tracer
        if t is None:
            return None
        return t.span("view.change", pid, _site(pid), at, parent=cause)

    def view_agree_ctx(self, root: TraceCtx | None) -> TraceCtx | None:
        """Child context for a round's agree span (travels in
        ``VcPrepare``/``VcInstall``; the event itself is emitted by
        :meth:`view_agreed` when the round decides)."""
        t = self.tracer
        if t is None or root is None:
            return None
        return t.mint(root)

    def view_agreed(
        self, pid: Any, ctx: TraceCtx | None, t0: float, t1: float, attrs=()
    ) -> None:
        """Coordinator decided: emit the agree span for ``ctx``."""
        t = self.tracer
        if t is not None and ctx is not None:
            t.span("view.agree", pid, _site(pid), t0, t1, ctx=ctx, attrs=attrs)

    def view_change_started(
        self, pid: Any, at: float, trace: TraceCtx | None = None
    ) -> None:
        self._flush.setdefault(str(pid), at)
        t = self.tracer
        if t is not None and trace is not None:
            t.span("view.flush", pid, _site(pid), at, parent=trace)

    def view_installed(
        self, pid: Any, at: float, trace: TraceCtx | None = None, view: Any = None
    ) -> None:
        label = str(pid)
        self.view_changes.labels(label).inc()
        start = self._flush.pop(label, None)
        if start is not None:
            self.view_change_duration.labels(label).observe(at - start)
        t = self.tracer
        if t is not None and trace is not None:
            attrs = (("view", str(view)),) if view is not None else ()
            ctx = t.span(
                "view.install",
                pid,
                _site(pid),
                start if start is not None else at,
                at,
                parent=trace,
                attrs=attrs,
            )
            # Settlement rounds triggered by this install parent here.
            self._view_ctx[label] = ctx

    # -- evs ---------------------------------------------------------------

    def eview_changed(self, pid: Any) -> None:
        self.eview_changes.labels(str(pid)).inc()

    # -- vsync: multicast and delivery ------------------------------------

    def multicast_sent(
        self, pid: Any, msg_id: Any, at: float, parent: TraceCtx | None = None
    ) -> TraceCtx | None:
        """Returns the send's causal context (rides on the Message), or
        None when tracing is off.  With tracing on, a *caused* multicast
        (a client put, a settlement message) always gets a send span
        parented under its cause; an uncaused one (steady workload
        traffic) is root-sampled 1-in-``tracer.root_sample`` to keep the
        span pipeline off the hottest path — see
        :meth:`Tracer.sample_root`."""
        self.multicasts.labels(str(pid)).inc()
        self._mcast.open(msg_id, at)
        t = self.tracer
        if t is None:
            return None
        if parent is None and not t.sample_root():
            return None
        return t.span("mcast.send", pid, _site(pid), at, parent=parent)

    def message_delivered(
        self, pid: Any, msg_id: Any, at: float, trace: TraceCtx | None = None
    ) -> None:
        label = str(pid)
        self.deliveries.labels(label).inc()
        start = self._mcast.get(msg_id)
        if start is not None:
            self.delivery_latency.labels(label).observe(at - start)
        t = self.tracer
        if t is not None and trace is not None:
            t.span(
                "mcast.deliver",
                label,  # already stringified for the metric labels
                _site(pid),
                start if start is not None else at,
                at,
                parent=trace,
            )

    # -- settlement --------------------------------------------------------

    def settlement_event(self, pid: Any, tag: str, kind: str, at: float) -> None:
        label = str(pid)
        t = self.tracer
        if tag == "settle_start":
            ctx = None
            if t is not None:
                ctx = t.mint(self._view_ctx.get(label))
            self._settle[label] = (at, kind, ctx)
        elif tag == "settle_done":
            entry = self._settle.pop(label, None)
            if entry is not None:
                self.settlement_duration.labels(label, entry[1]).observe(
                    at - entry[0]
                )
                if t is not None and entry[2] is not None:
                    t.span(
                        "settle.round",
                        pid,
                        _site(pid),
                        entry[0],
                        at,
                        ctx=entry[2],
                        attrs=(("kind", entry[1]), ("outcome", "done")),
                    )
            self.settlements.labels(label, "done").inc()
        elif tag == "settle_abandon":
            entry = self._settle.pop(label, None)
            if entry is not None and t is not None and entry[2] is not None:
                t.span(
                    "settle.round",
                    pid,
                    _site(pid),
                    entry[0],
                    at,
                    ctx=entry[2],
                    attrs=(("kind", entry[1]), ("outcome", "abandoned")),
                )
            self.settlements.labels(label, "abandoned").inc()

    def settle_ctx(self, pid: Any) -> TraceCtx | None:
        """The open settlement round's context (for StateRequest et al)."""
        entry = self._settle.get(str(pid))
        return entry[2] if entry is not None else None

    def settle_offer(
        self, pid: Any, at: float, trace: TraceCtx | None
    ) -> None:
        """Donor answered a state request (instant, child of the round)."""
        t = self.tracer
        if t is not None and trace is not None:
            t.span("settle.offer", pid, _site(pid), at, parent=trace)

    def settle_adopt(
        self, pid: Any, at: float, trace: TraceCtx | None
    ) -> None:
        """Member adopted settled state (instant, child of the round)."""
        t = self.tracer
        if t is not None and trace is not None:
            t.span("settle.adopt", pid, _site(pid), at, parent=trace)

    # -- client service ----------------------------------------------------

    def client_ctx(self, trace: TraceCtx | None = None) -> TraceCtx | None:
        """Root context for one client request.

        Echoes a caller-supplied context (a tracing client) or mints a
        fresh root; passes ``trace`` through unchanged when tracing is
        off, so untraced servers still echo client contexts back."""
        t = self.tracer
        if t is None or trace is not None:
            return trace
        return t.mint()

    def client_op(
        self, pid: Any, op: str, ctx: TraceCtx | None,
        t0: float, t1: float, status: str,
    ) -> None:
        """The request's root span (dispatch to reply), named by op."""
        t = self.tracer
        if t is not None and ctx is not None:
            t.span(
                "client." + op, pid, _site(pid), t0, t1,
                ctx=ctx, attrs=(("status", status),),
            )

    def put_route(self, pid: Any, at: float, parent: TraceCtx | None) -> None:
        """Put handed to the store (instant, child of the request)."""
        t = self.tracer
        if t is not None and parent is not None:
            t.span("put.route", pid, _site(pid), at, parent=parent)

    def put_quorum(
        self, pid: Any, t0: float, t1: float,
        parent: TraceCtx | None, status: str,
    ) -> None:
        """Put dispatch to quorum certificate (or abort)."""
        t = self.tracer
        if t is not None and parent is not None:
            t.span(
                "put.quorum", pid, _site(pid), t0, t1,
                parent=parent, attrs=(("status", status),),
            )

    # -- modes -------------------------------------------------------------

    def mode_changed(self, pid: Any, new: Any, transition: Any, at: float) -> None:
        self.mode_transitions.labels(str(transition)).inc()
        self._modes.change(str(pid), str(new), at)

    # -- failure detection -------------------------------------------------

    def gossip_digest_sent(self, pid: Any, count: int) -> None:
        self.gossip_digests.labels(str(pid)).inc(count)

    # -- state transfer ----------------------------------------------------

    def transfer_chunk_sent(self, pid: Any, kind: str) -> None:
        self.transfer_chunks.labels(str(pid), kind).inc()

    def transfer_resumed(self, pid: Any) -> None:
        self.transfer_resumes.labels(str(pid)).inc()

    def transfer_started(self, pid: Any, peer: Any, at: float) -> None:
        self._transfers.open((str(pid), str(peer)), at)

    def transfer_done(
        self, pid: Any, peer: Any, at: float, trace: TraceCtx | None = None
    ) -> None:
        duration = self._transfers.close((str(pid), str(peer)), at)
        if duration is not None:
            self.transfer_duration.labels(str(pid)).observe(duration)
        t = self.tracer
        if t is not None and trace is not None:
            t.span(
                "transfer.stream",
                pid,
                _site(pid),
                at - duration if duration is not None else at,
                at,
                parent=trace,
                attrs=(("peer", str(peer)),),
            )

    # -- faults ------------------------------------------------------------

    def process_crashed(self, pid: Any, at: float) -> None:
        label = str(pid)
        self.crashes.labels(label).inc()
        self._modes.crash(label, at)
        self._flush.pop(label, None)
        self._settle.pop(label, None)
