"""ClusterObs: the hook hub the protocol stacks report into.

One :class:`ClusterObs` per cluster, shared by every site's stack via
``stack.obs``.  Every hook is a small, allocation-light method; hot
paths in the stacks guard calls with ``if obs is not None`` so a
cluster built with ``metrics=False`` (the bench harnesses' fast path)
pays nothing.

Span bookkeeping lives here, not in the stacks: the gms layer reports
"flush started" / "view installed" and this class turns the pair into a
``view_change_duration`` observation.  Mode residency is integrated the
same way :func:`repro.trace.stats.mode_residency` integrates the trace
— per-process intervals credited on transition and crash, open
intervals credited at read time — so the live metric and the
trace-derived aggregate are directly comparable.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.obs.registry import MetricsRegistry
from repro.obs.spans import SpanMap

__all__ = ["ClusterObs"]

_MODES = ("N", "R", "S")


class _ModeTracker:
    """Per-process mode-interval integrator (process-time per mode)."""

    __slots__ = ("_clock", "_open", "_acc")

    def __init__(self, clock: Callable[[], float]) -> None:
        self._clock = clock
        self._open: dict[str, tuple[str, float]] = {}  # pid -> (mode, since)
        self._acc: dict[str, float] = {m: 0.0 for m in _MODES}

    def change(self, pid: str, mode: str, at: float) -> None:
        previous = self._open.get(pid)
        if previous is not None and at > previous[1]:
            self._acc[previous[0]] = self._acc.get(previous[0], 0.0) + (
                at - previous[1]
            )
        self._open[pid] = (mode, at)

    def crash(self, pid: str, at: float) -> None:
        previous = self._open.pop(pid, None)
        if previous is not None and at > previous[1]:
            self._acc[previous[0]] = self._acc.get(previous[0], 0.0) + (
                at - previous[1]
            )

    def residency(self, mode: str) -> float:
        now = self._clock()
        total = self._acc.get(mode, 0.0)
        for open_mode, since in self._open.values():
            if open_mode == mode and now > since:
                total += now - since
        return total


class ClusterObs:
    """Instrument families + span state for one cluster's registry."""

    def __init__(self, registry: MetricsRegistry) -> None:
        self.registry = registry
        r = registry
        self.view_changes = r.counter(
            "view_changes_total", "Views installed, per process", ("pid",)
        )
        self.view_change_duration = r.histogram(
            "view_change_duration",
            "Flush start to view install, per process",
            ("pid",),
        )
        self.eview_changes = r.counter(
            "eview_changes_total", "E-view changes applied, per process", ("pid",)
        )
        self.multicasts = r.counter(
            "multicasts_total", "View-synchronous multicasts sent", ("pid",)
        )
        self.deliveries = r.counter(
            "deliveries_total", "Application deliveries", ("pid",)
        )
        self.delivery_latency = r.histogram(
            "multicast_delivery_latency",
            "Multicast send to each delivery (the tail is the last delivery)",
            ("pid",),
        )
        self.settlements = r.counter(
            "settlement_sessions_total",
            "Settlement sessions resolved, by outcome",
            ("pid", "outcome"),
        )
        self.settlement_duration = r.histogram(
            "settlement_duration",
            "Settlement start to reconciliation, per process and kind",
            ("pid", "kind"),
        )
        self.mode_transitions = r.counter(
            "mode_transitions_total",
            "Figure-1 mode automaton edges taken",
            ("transition",),
        )
        self.transfer_duration = r.histogram(
            "state_transfer_duration",
            "Chunked state transfer start to final ack, per sender",
            ("pid",),
        )
        self.crashes = r.counter(
            "crashes_total", "Process crashes injected", ("pid",)
        )
        self.gossip_digests = r.counter(
            "gossip_digests_sent_total",
            "Gossip failure-detector digests pushed, per process",
            ("pid",),
        )
        self.transfer_chunks = r.counter(
            "state_transfer_chunks_total",
            "State-transfer chunks sent, per sender and stream kind",
            ("pid", "kind"),
        )
        self.transfer_resumes = r.counter(
            "state_transfer_resumes_total",
            "Chunked transfers resumed from a persisted cursor",
            ("pid",),
        )
        self._mcast = SpanMap(4096)  # msg_id -> multicast time
        self._transfers = SpanMap(512)  # (pid, peer) -> start time
        self._flush: dict[str, float] = {}  # pid -> flush start
        self._settle: dict[str, tuple[float, str]] = {}  # pid -> (start, kind)
        self._modes = _ModeTracker(r.now)
        for mode in _MODES:
            r.gauge_callback(
                "mode_residency",
                "Process-time spent per mode (trace-stats semantics)",
                (lambda m: lambda: self._modes.residency(m))(mode),
                ("mode",),
                (mode,),
            )

    # -- gms: view changes -------------------------------------------------

    def view_change_started(self, pid: Any, at: float) -> None:
        self._flush.setdefault(str(pid), at)

    def view_installed(self, pid: Any, at: float) -> None:
        label = str(pid)
        self.view_changes.labels(label).inc()
        start = self._flush.pop(label, None)
        if start is not None:
            self.view_change_duration.labels(label).observe(at - start)

    # -- evs ---------------------------------------------------------------

    def eview_changed(self, pid: Any) -> None:
        self.eview_changes.labels(str(pid)).inc()

    # -- vsync: multicast and delivery ------------------------------------

    def multicast_sent(self, pid: Any, msg_id: Any, at: float) -> None:
        self.multicasts.labels(str(pid)).inc()
        self._mcast.open(msg_id, at)

    def message_delivered(self, pid: Any, msg_id: Any, at: float) -> None:
        label = str(pid)
        self.deliveries.labels(label).inc()
        start = self._mcast.get(msg_id)
        if start is not None:
            self.delivery_latency.labels(label).observe(at - start)

    # -- settlement --------------------------------------------------------

    def settlement_event(self, pid: Any, tag: str, kind: str, at: float) -> None:
        label = str(pid)
        if tag == "settle_start":
            self._settle[label] = (at, kind)
        elif tag == "settle_done":
            entry = self._settle.pop(label, None)
            if entry is not None:
                self.settlement_duration.labels(label, entry[1]).observe(
                    at - entry[0]
                )
            self.settlements.labels(label, "done").inc()
        elif tag == "settle_abandon":
            self._settle.pop(label, None)
            self.settlements.labels(label, "abandoned").inc()

    # -- modes -------------------------------------------------------------

    def mode_changed(self, pid: Any, new: Any, transition: Any, at: float) -> None:
        self.mode_transitions.labels(str(transition)).inc()
        self._modes.change(str(pid), str(new), at)

    # -- failure detection -------------------------------------------------

    def gossip_digest_sent(self, pid: Any, count: int) -> None:
        self.gossip_digests.labels(str(pid)).inc(count)

    # -- state transfer ----------------------------------------------------

    def transfer_chunk_sent(self, pid: Any, kind: str) -> None:
        self.transfer_chunks.labels(str(pid), kind).inc()

    def transfer_resumed(self, pid: Any) -> None:
        self.transfer_resumes.labels(str(pid)).inc()

    def transfer_started(self, pid: Any, peer: Any, at: float) -> None:
        self._transfers.open((str(pid), str(peer)), at)

    def transfer_done(self, pid: Any, peer: Any, at: float) -> None:
        duration = self._transfers.close((str(pid), str(peer)), at)
        if duration is not None:
            self.transfer_duration.labels(str(pid)).observe(duration)

    # -- faults ------------------------------------------------------------

    def process_crashed(self, pid: Any, at: float) -> None:
        label = str(pid)
        self.crashes.labels(label).inc()
        self._modes.crash(label, at)
        self._flush.pop(label, None)
        self._settle.pop(label, None)
