"""Unified observability layer: metrics, spans and exports.

One instrumentation surface for both runtimes.  The simulator feeds the
registry from virtual time, so every metric value is a deterministic
function of the seed; the realnet runtime feeds it from the wall clock.
Both emit the same metric names, so a sim run and a realnet run of the
same workload can be compared row by row.

Modules:

* :mod:`repro.obs.registry` — dependency-free counters, gauges and
  log-bucketed histograms, labeled, with callback gauges for values
  that already live elsewhere (scheduler/network counters).
* :mod:`repro.obs.snapshot` — frozen, codec-friendly snapshot types
  (:class:`MetricSample`, :class:`MetricsSnapshot`) and snapshot merge.
* :mod:`repro.obs.spans` — bounded maps of open causal intervals
  (multicast -> delivery, flush -> install, settle start -> resolve).
* :mod:`repro.obs.instrument` — :class:`ClusterObs`, the hook hub the
  protocol stacks call into (guarded by ``stack.obs is not None``).
* :mod:`repro.obs.export` — Prometheus text format and JSONL writers.
* :mod:`repro.obs.report` — the ``repro obs report`` renderer: live
  metrics next to the trace-derived aggregates of
  :mod:`repro.trace.stats`.
* :mod:`repro.obs.watch` — the ``repro obs watch`` client: polls metric
  snapshots from live realnet nodes over the link protocol.

See docs/observability.md for the metric catalog and span semantics.
"""

from repro.obs.registry import DEFAULT_BUCKETS, MetricsRegistry
from repro.obs.snapshot import MetricSample, MetricsSnapshot, merge_snapshots

__all__ = [
    "DEFAULT_BUCKETS",
    "MetricsRegistry",
    "MetricSample",
    "MetricsSnapshot",
    "merge_snapshots",
]
