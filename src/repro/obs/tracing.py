"""Causal tracing: wire contexts, span events and the flight recorder.

The PR-5 metrics layer answers "how much / how fast"; this module
answers "why": a compact causal context — ``(trace_id, span_id,
parent)`` — is minted at each *root event* (a client request, a
view-change trigger, a settlement round), carried on the wire in new
optional trailing fields of the protocol dataclasses, and every
instrumented interval emits one :class:`SpanEvent` into a per-node
bounded :class:`FlightRecorder`.  The recorder is the black box of the
chaos-soak roadmap item: a byte-budgeted ring that always holds the
most recent causal history and dumps to disk when a checker trips, or
on demand over the 0x02 obs frame.

Determinism: span identifiers come from a per-tracer counter salted
with the node's site, never from randomness or wall time, so a seeded
simulator run produces byte-identical traces.  Tracing is off by
default; when off, every context field stays ``None`` and costs zero
bytes on the wire (both codecs elide ``None``-default fields).

Span taxonomy (see docs/observability.md for the full contract):

=================  =====================================================
``view.change``    root, minted where the view change was triggered
``view.flush``     member: prepare received -> flush sent
``view.agree``     coordinator: round start -> install decided
``view.install``   member: flush start -> view installed
``settle.round``   settlement leader: session start -> done/abandon
``settle.offer``   donor: state offer sent
``settle.adopt``   member: settlement state adopted
``transfer.stream``  receiver: chunked transfer start -> final chunk
``mcast.send``     sender: view-synchronous multicast issued
``mcast.deliver``  receiver: multicast send -> this delivery
``client.put/get`` root, store service: request in -> reply out
``put.route``      store service: request routed to the group object
``put.quorum``     store service: multicast issued -> quorum commit
=================  =====================================================
"""

from __future__ import annotations

import hashlib
import json
import os
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Iterable

__all__ = [
    "TraceCtx",
    "SpanEvent",
    "TraceDump",
    "Tracer",
    "FlightRecorder",
    "load_dump",
    "dump_on_violations",
]


@dataclass(frozen=True)
class TraceCtx:
    """Causal context carried on the wire: ~10 bytes in ``bin1``.

    ``trace_id`` names the causal tree (it is the root span's id);
    ``span_id`` is the event this context *is*; ``parent`` is the span
    that caused it (0 for roots).  Contexts are immutable — deriving a
    child means minting a fresh ``span_id`` via :meth:`Tracer.mint`.
    """

    trace_id: int
    span_id: int
    parent: int = 0


@dataclass(frozen=True)
class SpanEvent:
    """One completed (or instantaneous) causal interval.

    ``t0 == t1`` marks an instant event.  Times are the emitting node's
    scheduler clock; cross-node merging adds the recorder's wall
    ``epoch`` first (zero on the simulator, where all nodes share one
    virtual clock).  ``attrs`` is a flat tuple of ``(key, value)``
    string pairs.
    """

    trace_id: int
    span_id: int
    parent: int
    name: str
    pid: str
    site: int
    t0: float
    t1: float
    attrs: tuple = ()


@dataclass(frozen=True)
class TraceDump:
    """One node's flight-recorder contents, as shipped over 0x02."""

    node: str
    runtime: str
    epoch: float  # wall-clock seconds at scheduler time 0 (0.0 on sim)
    dropped: int
    events: tuple = ()


def _event_cost(event: SpanEvent) -> int:
    """Approximate serialized size of one span event, in bytes.

    The budget math must stay off the critical path (every traced
    multicast pays it), so this estimates the ``bin1`` encoding —
    varint ids, 8-byte doubles, length-prefixed strings — instead of
    running the codec.  The estimate is intentionally a slight
    over-count, so the serialized dump stays inside the budget too.
    """
    cost = 40 + len(event.name) + len(event.pid)
    for pair in event.attrs:
        for part in pair:
            cost += len(str(part)) + 2
    return cost


class FlightRecorder:
    """Byte-budgeted ring buffer of span events (the black box).

    Appends are O(1); when the budget would be exceeded the oldest
    events are evicted and counted in :attr:`dropped`.  The recorder
    never exceeds ``budget`` bytes of (estimated) event payload, no
    matter the workload — crash storms included.
    """

    __slots__ = (
        "node",
        "runtime",
        "budget",
        "epoch",
        "_events",
        "_bytes",
        "dropped",
        "high_water",
        "_dumped",
    )

    def __init__(
        self,
        node: str = "node",
        runtime: str = "sim",
        *,
        budget: int = 256 * 1024,
        epoch: float = 0.0,
    ) -> None:
        if budget <= 0:
            raise ValueError("flight-recorder budget must be positive")
        self.node = node
        self.runtime = runtime
        self.budget = budget
        self.epoch = epoch
        self._events: deque[tuple[int, SpanEvent]] = deque()
        self._bytes = 0
        self.dropped = 0
        self.high_water = 0
        self._dumped: set[str] = set()

    def __len__(self) -> int:
        return len(self._events)

    @property
    def bytes(self) -> int:
        return self._bytes

    def append(self, event: SpanEvent) -> None:
        cost = _event_cost(event)
        if cost > self.budget:  # a single pathological event: drop it
            self.dropped += 1
            return
        events = self._events
        while self._bytes + cost > self.budget and events:
            old_cost, _ = events.popleft()
            self._bytes -= old_cost
            self.dropped += 1
        events.append((cost, event))
        self._bytes += cost
        if self._bytes > self.high_water:
            self.high_water = self._bytes

    def dump(self) -> TraceDump:
        """Snapshot the ring as an immutable, wire-ready dump."""
        return TraceDump(
            node=self.node,
            runtime=self.runtime,
            epoch=self.epoch,
            dropped=self.dropped,
            events=tuple(event for _, event in self._events),
        )

    @classmethod
    def from_dump(cls, dump: TraceDump) -> "FlightRecorder":
        """Rehydrate a recorder from a shipped dump.

        The realnet-proc driver pulls each child's ring over the control
        protocol and rebuilds local recorders so violation dumps work
        uniformly across backends.  The budget is sized to hold every
        shipped event (the child's own budget already bounded the ring),
        and ``dropped`` reports the *child-side* evictions.
        """
        budget = max(1, sum(_event_cost(event) for event in dump.events))
        recorder = cls(dump.node, dump.runtime, budget=budget, epoch=dump.epoch)
        for event in dump.events:
            recorder.append(event)
        recorder.dropped = dump.dropped
        return recorder

    # -- disk dumps --------------------------------------------------------

    def dump_to_file(self, path: str, reason: str = "") -> str:
        """Write the ring to ``path`` as plain JSON (no codec needed)."""
        write_dump_file(path, self.dump(), reason=reason)
        return path

    def violation_dump(self, violation: str, out_dir: str) -> str | None:
        """Dump-on-violation, exactly once per distinct violation.

        Returns the file path on the first call for ``violation``, and
        ``None`` on every repeat — a checker that trips on thousands of
        trace events must not write thousands of identical dumps.
        """
        if violation in self._dumped:
            return None
        self._dumped.add(violation)
        digest = hashlib.sha256(violation.encode("utf-8")).hexdigest()[:8]
        os.makedirs(out_dir, exist_ok=True)
        path = os.path.join(out_dir, f"flight-{self.node}-{digest}.json")
        return self.dump_to_file(path, reason=violation)


class Tracer:
    """Mints causal contexts and records their span events.

    One tracer per node (realnet) or per cluster (sim).  ``salt``
    disambiguates span ids minted by different nodes without any
    coordination: the id is ``(counter << 12) | salt``, so ids are
    unique as long as salts are (sites are) and runs stay under 2^52
    spans per node.  Everything is deterministic under a fixed seed.
    """

    __slots__ = ("recorder", "_clock", "_salt", "_next", "root_sample", "_roots")

    def __init__(
        self,
        recorder: FlightRecorder,
        clock: Callable[[], float],
        salt: int = 0,
        root_sample: int = 16,
    ) -> None:
        if root_sample < 1:
            raise ValueError("root_sample must be >= 1")
        self.recorder = recorder
        self._clock = clock
        self._salt = salt & 0xFFF
        self._next = 0
        self.root_sample = root_sample
        self._roots = 0

    @property
    def now(self) -> float:
        return self._clock()

    def sample_root(self) -> bool:
        """Deterministic 1-in-``root_sample`` gate for *uncaused* spans.

        Spans with a causal parent (a client put's multicast, a view
        change's installs) are always traced — they are why tracing
        exists.  Uncaused root events (steady workload multicasts) are
        sampled instead: tracing every one would put a full span
        pipeline on the hottest path in the system for traffic whose
        spans are all identical single-hop trees.  The counter-based
        gate keeps seeded runs deterministic; the first uncaused event
        is always sampled so short runs still populate the black box.
        """
        self._roots += 1
        return self._roots % self.root_sample == 1 or self.root_sample == 1

    def mint(self, parent: TraceCtx | None = None) -> TraceCtx:
        """A fresh context: a new root, or a child of ``parent``."""
        self._next += 1
        span_id = (self._next << 12) | self._salt
        if parent is None:
            return TraceCtx(trace_id=span_id, span_id=span_id, parent=0)
        return TraceCtx(
            trace_id=parent.trace_id, span_id=span_id, parent=parent.span_id
        )

    def span(
        self,
        name: str,
        pid: Any,
        site: int,
        t0: float,
        t1: float | None = None,
        *,
        parent: TraceCtx | None = None,
        ctx: TraceCtx | None = None,
        attrs: Iterable[tuple] = (),
    ) -> TraceCtx:
        """Record one span event and return its context.

        Pass ``ctx`` to emit an event for an already-minted context
        (e.g. the agree span whose id travelled in ``VcPrepare``);
        otherwise a new context is minted under ``parent``.
        """
        if ctx is None:
            ctx = self.mint(parent)
        self.recorder.append(
            SpanEvent(
                trace_id=ctx.trace_id,
                span_id=ctx.span_id,
                parent=ctx.parent,
                name=name,
                pid=str(pid),
                site=site,
                t0=t0,
                t1=t1 if t1 is not None else t0,
                attrs=tuple(attrs),
            )
        )
        return ctx


# -- disk dump format ------------------------------------------------------
#
# Dumps are plain JSON — readable with jq, loadable without either wire
# codec — because post-mortems happen on machines that may not have the
# repo's codec registry at the crashed build's fingerprint.

_EVENT_KEYS = (
    "trace_id", "span_id", "parent", "name", "pid", "site", "t0", "t1",
)


def write_dump_file(path: str, dump: TraceDump, reason: str = "") -> None:
    payload = {
        "format": "repro-flight-v1",
        "node": dump.node,
        "runtime": dump.runtime,
        "epoch": dump.epoch,
        "dropped": dump.dropped,
        "reason": reason,
        "events": [
            {
                **{key: getattr(event, key) for key in _EVENT_KEYS},
                "attrs": [list(pair) for pair in event.attrs],
            }
            for event in dump.events
        ],
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=1)
        fh.write("\n")


def load_dump(path: str) -> TraceDump:
    """Load a disk dump back into a :class:`TraceDump`."""
    with open(path, "r", encoding="utf-8") as fh:
        payload = json.load(fh)
    if payload.get("format") != "repro-flight-v1":
        raise ValueError(f"{path}: not a repro flight-recorder dump")
    events = tuple(
        SpanEvent(
            **{key: raw[key] for key in _EVENT_KEYS},
            attrs=tuple(tuple(pair) for pair in raw.get("attrs", ())),
        )
        for raw in payload.get("events", ())
    )
    return TraceDump(
        node=payload.get("node", "?"),
        runtime=payload.get("runtime", "?"),
        epoch=payload.get("epoch", 0.0),
        dropped=payload.get("dropped", 0),
        events=events,
    )


def dump_on_violations(
    cluster: Any, violations: Iterable[str], out_dir: str | None = None
) -> list[str]:
    """Write flight dumps for a run that tripped checkers.

    Called by the workload runners after the property checks: every
    flight recorder the cluster exposes writes at most one dump per
    distinct violation into ``out_dir`` (default: ``$REPRO_FLIGHT_DIR``
    or ``flight_dumps/``).  A no-op when tracing is off or the backend
    has no recorders.  Returns the paths written.
    """
    recorders_fn = getattr(cluster, "flight_recorders", None)
    if recorders_fn is None:
        return []
    recorders = recorders_fn()
    if not recorders:
        return []
    out_dir = out_dir or os.environ.get("REPRO_FLIGHT_DIR", "flight_dumps")
    paths = []
    for violation in violations:
        for recorder in recorders:
            path = recorder.violation_dump(violation, out_dir)
            if path is not None:
                paths.append(path)
    return paths
