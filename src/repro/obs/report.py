"""Post-run observability report: live metrics next to trace aggregates.

``repro obs report`` (and ``repro run --metrics``) render this after a
checked workload.  The report puts the registry's live metrics side by
side with the trace-derived aggregates of :mod:`repro.trace.stats` —
two independent measurement paths over the same run — so a mismatch is
immediately visible, and prints a ``dropped_events`` warning when the
trace ring buffer overflowed (in which case the trace column, not the
metric column, undercounts).
"""

from __future__ import annotations

import math
from typing import Any

from repro.obs.snapshot import MetricSample, MetricsSnapshot
from repro.trace.recorder import TraceRecorder
from repro.trace.stats import summarize

__all__ = ["render_report", "quantile"]


def quantile(sample: MetricSample, q: float) -> float:
    """Upper-bound estimate of the q-quantile from cumulative buckets."""
    if sample.count == 0 or not sample.buckets:
        return 0.0
    rank = max(1, math.ceil(q * sample.count))
    for bound, cum in sample.buckets:
        if cum >= rank:
            return bound
    return sample.buckets[-1][0]


def _fmt(value: float) -> str:
    if isinstance(value, float) and math.isinf(value):
        return "inf"
    if float(value) == int(value) and abs(value) < 1e12:
        return str(int(value))
    return f"{value:.4g}"


def _rows(table: list[tuple[str, str, str]]) -> list[str]:
    widths = [max(len(row[i]) for row in table) for i in range(3)]
    return [
        "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)).rstrip()
        for row in table
    ]


def _dropped_warning(trace: TraceRecorder) -> list[str]:
    if not trace.dropped:
        return []
    by_source = getattr(trace, "dropped_by_source", None) or {}
    detail = ""
    if by_source:
        parts = ", ".join(
            f"{src}: {n}" for src, n in sorted(by_source.items())
        )
        detail = f" ({parts})"
    return [
        f"WARNING: dropped_events={trace.dropped} — the trace ring buffer "
        f"overflowed{detail}; trace-derived counts below undercount. "
        "Raise trace_capacity or lower trace_level.",
        "",
    ]


def render_report(
    snapshot: MetricsSnapshot,
    trace: TraceRecorder | None = None,
    *,
    title: str = "observability report",
) -> str:
    """Render the post-run report as plain text."""
    lines: list[str] = []
    header = (
        f"{title} — runtime={snapshot.runtime or '?'} "
        f"source={snapshot.source} t={_fmt(snapshot.time)}"
    )
    lines.append(header)
    lines.append("=" * len(header))
    lines.append("")

    if trace is not None:
        lines.extend(_dropped_warning(trace))
        stats = summarize(trace)
        resid = stats.residency
        live_resid = {
            m: (snapshot.sample("mode_residency", mode=m) or _ZERO).value
            for m in ("N", "R", "S")
        }
        live_total = sum(live_resid.values())

        def frac(value: float, total: float) -> str:
            return f"{value / total:.3f}" if total > 0 else "0.000"

        table: list[tuple[str, str, str]] = [
            ("quantity", "trace", "live metric"),
            (
                "view installs",
                str(stats.view_installs),
                _fmt(snapshot.total("view_changes_total")),
            ),
            (
                "eview changes",
                str(stats.eview_changes),
                _fmt(snapshot.total("eview_changes_total")),
            ),
            (
                "multicasts",
                str(stats.multicasts),
                _fmt(snapshot.total("multicasts_total")),
            ),
            (
                "deliveries",
                str(stats.deliveries),
                _fmt(snapshot.total("deliveries_total")),
            ),
            (
                "crashes",
                str(stats.crashes),
                _fmt(snapshot.total("crashes_total")),
            ),
            (
                "mode transitions",
                str(sum(stats.mode_transitions.values())),
                _fmt(snapshot.total("mode_transitions_total")),
            ),
            (
                "settlement sessions",
                str(stats.settlement_sessions),
                _fmt(
                    sum(
                        s.value
                        for s in snapshot.samples
                        if s.name == "settlement_sessions_total"
                        and dict(s.labels).get("outcome") == "done"
                    )
                    + sum(
                        s.value
                        for s in snapshot.samples
                        if s.name == "settlement_sessions_total"
                        and dict(s.labels).get("outcome") == "abandoned"
                    )
                ),
            ),
            (
                "mode residency N",
                frac(resid.normal, resid.total),
                frac(live_resid["N"], live_total),
            ),
            (
                "mode residency R",
                frac(resid.reduced, resid.total),
                frac(live_resid["R"], live_total),
            ),
            (
                "mode residency S",
                frac(resid.settling, resid.total),
                frac(live_resid["S"], live_total),
            ),
            (
                "view rate (/100 units)",
                _fmt(
                    100.0 * stats.view_installs / stats.duration
                    if stats.duration
                    else 0.0
                ),
                _fmt(
                    100.0 * snapshot.total("view_changes_total") / snapshot.time
                    if snapshot.time
                    else 0.0
                ),
            ),
        ]
        lines.append("trace vs live metrics (independent measurement paths):")
        lines.extend("  " + row for row in _rows(table))
        lines.append("")

    hist = [s for s in snapshot.samples if s.kind == "histogram"]
    scalars = [s for s in snapshot.samples if s.kind != "histogram"]

    if hist:
        lines.append("spans (histograms; p50/p95 are bucket upper bounds):")
        table = [("series", "count", "mean / p50 / p95")]
        for s in hist:
            mean = s.value / s.count if s.count else 0.0
            table.append(
                (
                    s.name + _labelsuffix(s),
                    str(s.count),
                    f"{_fmt(mean)} / {_fmt(quantile(s, 0.5))} / "
                    f"{_fmt(quantile(s, 0.95))}",
                )
            )
        lines.extend("  " + row for row in _rows(table))
        lines.append("")

    if scalars:
        lines.append("counters and gauges:")
        table = [("series", "value", "")]
        for s in scalars:
            table.append((s.name + _labelsuffix(s), _fmt(s.value), ""))
        lines.extend("  " + row for row in _rows(table))
        lines.append("")

    return "\n".join(lines)


def _labelsuffix(sample: MetricSample) -> str:
    if not sample.labels:
        return ""
    return "{" + ",".join(f"{k}={v}" for k, v in sample.labels) + "}"


class _Zero:
    value = 0.0


_ZERO: Any = _Zero()
