"""Fuzz corpus: serialized runs that reached novel protocol coverage.

A corpus entry is everything needed to replay one fuzz run
byte-identically on either runtime: the fault schedule, the workload
shape (application plus client mix), the cluster seed, and — for
bookkeeping — the coverage signature and checker verdicts of the run
that produced it.  Entries serialize to plain JSON via
:meth:`FaultSchedule.to_json_obj`, so a shrunk reproducer checked into
the repository replays the same way on the simulator, on in-process
realnet, or on a multi-process cluster.

The :class:`Corpus` itself is optionally directory-backed: pass a
directory and every added entry lands there as ``<entry-id>.json``; the
seen-feature set is rebuilt from the entries on load, so a fuzz
campaign resumes where the previous one stopped.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Callable, Sequence

from repro.errors import ReproError
from repro.net.faults import FaultSchedule
from repro.fuzz.signature import (
    Feature,
    signature_from_json,
    signature_to_json,
)

#: Workload client kinds -> driver constructors (resolved lazily so the
#: corpus module stays importable without a cluster).
CLIENT_KINDS = ("mcast", "file", "lock", "query", "store")


def _client_factory(kind: str, interval: float) -> Callable:
    from repro.workload import clients as _clients

    ctor = {
        "mcast": _clients.MulticastClient,
        "file": _clients.FileClient,
        "lock": _clients.LockClient,
        "query": _clients.QueryClient,
        "store": _clients.StoreClient,
    }.get(kind)
    if ctor is None:
        raise ReproError(
            f"unknown workload client kind {kind!r}; known: {CLIENT_KINDS}"
        )
    return lambda cluster: ctor(cluster, interval=interval)


@dataclass
class WorkloadSpec:
    """The reproducible workload shape of one fuzz run."""

    app: str = "file"
    n_sites: int = 5
    clients: tuple[tuple[str, float], ...] = (("mcast", 10.0), ("file", 15.0))
    tail: float = 250.0  # scenario units of quiet after the last fault

    def __post_init__(self) -> None:
        self.clients = tuple((str(k), float(i)) for k, i in self.clients)
        for kind, _interval in self.clients:
            if kind not in CLIENT_KINDS:
                raise ReproError(
                    f"unknown workload client kind {kind!r}; "
                    f"known: {CLIENT_KINDS}"
                )

    def client_factories(self) -> list[Callable]:
        return [_client_factory(kind, ivl) for kind, ivl in self.clients]

    def to_json_obj(self) -> dict[str, Any]:
        return {
            "app": self.app,
            "n_sites": self.n_sites,
            "clients": [[kind, ivl] for kind, ivl in self.clients],
            "tail": self.tail,
        }

    @classmethod
    def from_json_obj(cls, payload: dict[str, Any]) -> "WorkloadSpec":
        return cls(
            app=payload.get("app", "file"),
            n_sites=int(payload.get("n_sites", 5)),
            clients=tuple(
                (kind, ivl) for kind, ivl in payload.get("clients", [])
            ),
            tail=float(payload.get("tail", 250.0)),
        )


@dataclass
class CorpusEntry:
    """One replayable fuzz run plus the verdicts it earned."""

    schedule: FaultSchedule
    workload: WorkloadSpec = field(default_factory=WorkloadSpec)
    seed: int = 0
    loss_prob: float = 0.0
    kind: str = "seed"  # seed | mutant | shrunk
    parent: str | None = None  # entry id this one was mutated from
    #: Bug deliberately planted for the run (test-only hook); replay
    #: re-plants it so the reproducer actually reproduces.
    planted_bug: str | None = None
    signature: frozenset[Feature] = frozenset()
    failing_checkers: tuple[str, ...] = ()
    violations: tuple[str, ...] = ()

    @property
    def entry_id(self) -> str:
        """Content hash over the replay-relevant fields — stable across
        sessions, so a corpus directory never collects duplicates."""
        payload = json.dumps(
            {
                "schedule": self.schedule.to_json_obj(),
                "workload": self.workload.to_json_obj(),
                "seed": self.seed,
                "loss_prob": self.loss_prob,
                "planted_bug": self.planted_bug,
            },
            sort_keys=True,
        )
        digest = hashlib.sha256(payload.encode()).hexdigest()[:12]
        return f"{self.kind}-{digest}"

    @property
    def failed(self) -> bool:
        return bool(self.failing_checkers)

    def with_schedule(self, schedule: FaultSchedule) -> "CorpusEntry":
        """A shrink/mutation candidate: same run, different schedule,
        verdicts reset (they belong to the old schedule)."""
        return replace(
            self,
            schedule=schedule,
            signature=frozenset(),
            failing_checkers=(),
            violations=(),
        )

    def to_json_obj(self) -> dict[str, Any]:
        return {
            "schedule": self.schedule.to_json_obj(),
            "workload": self.workload.to_json_obj(),
            "seed": self.seed,
            "loss_prob": self.loss_prob,
            "kind": self.kind,
            "parent": self.parent,
            "planted_bug": self.planted_bug,
            "signature": signature_to_json(self.signature),
            "failing_checkers": list(self.failing_checkers),
            "violations": list(self.violations),
        }

    @classmethod
    def from_json_obj(cls, payload: dict[str, Any]) -> "CorpusEntry":
        if "schedule" not in payload:
            raise ReproError("corpus entry JSON lacks a 'schedule'")
        return cls(
            schedule=FaultSchedule.from_json_obj(payload["schedule"]),
            workload=WorkloadSpec.from_json_obj(payload.get("workload", {})),
            seed=int(payload.get("seed", 0)),
            loss_prob=float(payload.get("loss_prob", 0.0)),
            kind=payload.get("kind", "seed"),
            parent=payload.get("parent"),
            planted_bug=payload.get("planted_bug"),
            signature=signature_from_json(payload.get("signature", [])),
            failing_checkers=tuple(payload.get("failing_checkers", [])),
            violations=tuple(payload.get("violations", [])),
        )

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_json_obj(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "CorpusEntry":
        return cls.from_json_obj(json.loads(text))

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.write_text(self.to_json() + "\n")
        return path

    @classmethod
    def load(cls, path: str | Path) -> "CorpusEntry":
        return cls.from_json(Path(path).read_text())


class Corpus:
    """The evolving population of coverage-novel entries."""

    def __init__(self, directory: str | Path | None = None) -> None:
        self.directory = Path(directory) if directory is not None else None
        self.entries: dict[str, CorpusEntry] = {}
        self.seen: set[Feature] = set()
        #: How many corpus entries exhibit each feature — the basis of
        #: rarity-weighted parent selection; rebuilt on load so a
        #: resumed campaign weighs exactly like an uninterrupted one.
        self.feature_counts: dict[Feature, int] = {}
        if self.directory is not None and self.directory.is_dir():
            for path in sorted(self.directory.glob("*.json")):
                try:
                    entry = CorpusEntry.load(path)
                except (ReproError, json.JSONDecodeError):
                    continue  # foreign JSON in the corpus dir; skip
                self.entries[entry.entry_id] = entry
                self.seen |= entry.signature
                self._count(entry)

    def _count(self, entry: CorpusEntry) -> None:
        for feature in entry.signature:
            self.feature_counts[feature] = self.feature_counts.get(feature, 0) + 1

    def novel_features(self, signature: frozenset[Feature]) -> set[Feature]:
        return set(signature) - self.seen

    def add(self, entry: CorpusEntry) -> set[Feature]:
        """Record the entry; returns the features it contributed."""
        fresh = self.novel_features(entry.signature)
        self.seen |= entry.signature
        self.entries[entry.entry_id] = entry
        self._count(entry)
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
            entry.save(self.directory / f"{entry.entry_id}.json")
        return fresh

    def rarity_weight(self, entry: CorpusEntry) -> float:
        """Mutation-parent weight: ``1 + sum(1/count(f))`` over the
        entry's features, so an entry holding features few others have
        is proportionally more likely to be picked, while the constant
        keeps every entry — and empty signatures — in play."""
        return 1.0 + sum(
            1.0 / self.feature_counts[f]
            for f in entry.signature
            if self.feature_counts.get(f)
        )

    @property
    def failing(self) -> list[CorpusEntry]:
        return [e for e in self.entries.values() if e.failed]

    def stats(self) -> dict[str, Any]:
        kinds: dict[str, int] = {}
        for entry in self.entries.values():
            kinds[entry.kind] = kinds.get(entry.kind, 0) + 1
        return {
            "entries": len(self.entries),
            "features": len(self.seen),
            "failing": len(self.failing),
            "kinds": kinds,
        }
