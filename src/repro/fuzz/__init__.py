"""Coverage-guided protocol fuzzer with pluggable trace checkers.

The fuzzer *generates* fault schedules plus client workloads, executes
them on any :class:`~repro.ports.ClusterPort` runtime through
:func:`~repro.workload.runner.run_checked_workload`, extracts a
protocol-coverage signature from the merged trace (view-graph shapes,
e-view merge patterns, mode-transition sequences, cluster
decompositions — :mod:`repro.fuzz.signature`), and keeps mutating the
corpus entries that reach novel signatures (:mod:`repro.fuzz.engine`).
A failing schedule is shrunk to a minimal reproducer
(:mod:`repro.fuzz.shrink`) serialized as JSON (:mod:`repro.fuzz.corpus`)
so it replays byte-identically in sim or over real sockets.

Checkers are pluggable objects over the merged trace
(:mod:`repro.fuzz.checkers`), RESTler-style: independent
sequence-pattern detectors registered by name, discovered from entry
points, and run after the paper's six core property checks.

This ``__init__`` stays lazy: :mod:`repro.core.settlement` imports
:mod:`repro.fuzz.bugs` (the planted-bug hooks), so importing the
package must not drag in the engine — which imports the core back.

See ``docs/fuzzing.md`` for the architecture and workflows.
"""

from __future__ import annotations

from typing import Any

_EXPORTS = {
    "FuzzConfig": "repro.fuzz.engine",
    "FuzzEngine": "repro.fuzz.engine",
    "CheckContext": "repro.fuzz.checkers",
    "TraceChecker": "repro.fuzz.checkers",
    "register_checker": "repro.fuzz.checkers",
    "make_checkers": "repro.fuzz.checkers",
    "run_checkers": "repro.fuzz.checkers",
    "coverage_signature": "repro.fuzz.signature",
    "Corpus": "repro.fuzz.corpus",
    "CorpusEntry": "repro.fuzz.corpus",
    "WorkloadSpec": "repro.fuzz.corpus",
    "shrink_entry": "repro.fuzz.shrink",
}

__all__ = sorted(_EXPORTS) + ["bugs"]


def __getattr__(name: str) -> Any:
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)
