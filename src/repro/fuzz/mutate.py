"""Schedule mutations for the coverage-guided loop.

Mutators are closed over :class:`~repro.net.faults.FaultSchedule`: each
takes a parent schedule plus a seeded ``random.Random`` and returns a
*candidate* child.  Candidates are then repaired by
:func:`normalize_schedule`, which restores the well-formedness the
simulator demands (crash/recover parity, a final heal after cuts) while
preserving as much of the mutation as possible — so the fuzzer explores
aggressively but never wastes a run on a schedule ``validate()`` would
reject.
"""

from __future__ import annotations

import random

from repro.net.faults import (
    Crash,
    FaultAction,
    FaultSchedule,
    Heal,
    OneWayCut,
    OneWayHeal,
    Partition,
    Recover,
)


def _sorted_actions(schedule: FaultSchedule) -> list[FaultAction]:
    return sorted(schedule.actions, key=lambda a: (a.time, repr(a)))


def _random_time(rng: random.Random, schedule: FaultSchedule) -> float:
    horizon = max(schedule.horizon, 120.0)
    return round(rng.uniform(60.0, horizon + 120.0), 1)


def _random_split(
    rng: random.Random, n_sites: int
) -> tuple[tuple[int, ...], ...]:
    sites = list(range(n_sites))
    rng.shuffle(sites)
    n_groups = rng.randint(2, max(2, min(3, n_sites)))
    groups: list[list[int]] = [[] for _ in range(n_groups)]
    for index, site in enumerate(sites):
        groups[index % n_groups].append(site)
    return tuple(tuple(sorted(g)) for g in groups if g)


def _random_action(
    rng: random.Random, time: float, n_sites: int
) -> FaultAction:
    kind = rng.choice(("crash", "recover", "partition", "heal", "oneway"))
    if kind == "crash":
        return Crash(time, rng.randrange(n_sites))
    if kind == "recover":
        return Recover(time, rng.randrange(n_sites))
    if kind == "partition":
        return Partition(time, _random_split(rng, n_sites))
    if kind == "heal":
        return Heal(time)
    src = rng.randrange(n_sites)
    dst = (src + 1 + rng.randrange(max(1, n_sites - 1))) % n_sites
    return OneWayCut(time, src, dst)


# -- the mutator library ----------------------------------------------------


def drop_action(
    schedule: FaultSchedule, rng: random.Random, n_sites: int
) -> FaultSchedule:
    """Remove one random action."""
    actions = list(schedule.actions)
    if actions:
        actions.pop(rng.randrange(len(actions)))
    return FaultSchedule(actions)


def insert_action(
    schedule: FaultSchedule, rng: random.Random, n_sites: int
) -> FaultSchedule:
    """Insert one fresh random action at a random time."""
    actions = list(schedule.actions)
    actions.append(_random_action(rng, _random_time(rng, schedule), n_sites))
    return FaultSchedule(actions)


def shift_time(
    schedule: FaultSchedule, rng: random.Random, n_sites: int
) -> FaultSchedule:
    """Jitter one action's time — reorders it relative to its peers,
    which is exactly what exercises view-change races."""
    actions = list(schedule.actions)
    if actions:
        index = rng.randrange(len(actions))
        action = actions[index]
        delta = rng.choice((-80.0, -30.0, -10.0, 10.0, 30.0, 80.0))
        actions[index] = type(action)(
            **{
                **{
                    f: getattr(action, f)
                    for f in action.__dataclass_fields__
                },
                "time": round(max(10.0, action.time + delta), 1),
            }
        )
    return FaultSchedule(actions)


def retarget_site(
    schedule: FaultSchedule, rng: random.Random, n_sites: int
) -> FaultSchedule:
    """Point one site-bearing action at a different site."""
    actions = list(schedule.actions)
    sited = [i for i, a in enumerate(actions) if hasattr(a, "site")]
    if sited:
        index = rng.choice(sited)
        action = actions[index]
        actions[index] = type(action)(
            time=action.time, site=rng.randrange(n_sites)
        )
    return FaultSchedule(actions)


def reshape_partition(
    schedule: FaultSchedule, rng: random.Random, n_sites: int
) -> FaultSchedule:
    """Replace one partition's groups with a fresh random split."""
    actions = list(schedule.actions)
    parts = [i for i, a in enumerate(actions) if isinstance(a, Partition)]
    if parts:
        index = rng.choice(parts)
        actions[index] = Partition(
            actions[index].time, _random_split(rng, n_sites)
        )
    else:
        actions.append(
            Partition(_random_time(rng, schedule), _random_split(rng, n_sites))
        )
    return FaultSchedule(actions)


def splice(
    first: FaultSchedule,
    second: FaultSchedule,
    rng: random.Random,
    n_sites: int,
) -> FaultSchedule:
    """Crossover: the early prefix of one parent plus the late suffix of
    the other."""
    cut = _random_time(rng, first)
    actions = [a for a in first.actions if a.time <= cut]
    actions += [a for a in second.actions if a.time > cut]
    return FaultSchedule(actions)


MUTATORS = (
    drop_action,
    insert_action,
    shift_time,
    retarget_site,
    reshape_partition,
)


def mutate(
    schedule: FaultSchedule,
    rng: random.Random,
    n_sites: int,
    other: FaultSchedule | None = None,
) -> FaultSchedule:
    """One mutation step: a random mutator (or a splice with ``other``),
    then repair."""
    if other is not None and other.actions and rng.random() < 0.2:
        child = splice(schedule, other, rng, n_sites)
    else:
        mutator = rng.choice(MUTATORS)
        child = mutator(schedule, rng, n_sites)
    return normalize_schedule(child, n_sites)


def normalize_schedule(schedule: FaultSchedule, n_sites: int) -> FaultSchedule:
    """Repair a candidate into a well-formed, settleable schedule.

    * actions sorted by time; site indices folded into the universe;
    * crash/recover parity enforced (a crash of a down site or a recover
      of an up site is dropped — mutations made it meaningless);
    * every site left down gets a trailing recovery, and any surviving
      partition or one-way cut gets a trailing heal, so the run can
      settle and the property checks apply.

    The repaired schedule passes :meth:`FaultSchedule.validate`.
    """
    down: set[int] = set()
    open_cuts: set[tuple[int, int]] = set()
    partitioned = False
    repaired: list[FaultAction] = []
    for action in _sorted_actions(schedule):
        if isinstance(action, Crash):
            site = action.site % n_sites
            if site in down:
                continue
            down.add(site)
            action = Crash(action.time, site)
        elif isinstance(action, Recover):
            site = action.site % n_sites
            if site not in down:
                continue
            down.discard(site)
            action = Recover(action.time, site)
        elif isinstance(action, Partition):
            groups = tuple(
                tuple(sorted({s % n_sites for s in group}))
                for group in action.groups
                if group
            )
            covered = {s for g in groups for s in g}
            missing = tuple(sorted(set(range(n_sites)) - covered))
            if missing:
                groups += (missing,)
            if len(groups) < 2:
                continue
            partitioned = True
            open_cuts.clear()
            action = Partition(action.time, groups)
        elif isinstance(action, Heal):
            partitioned = False
            open_cuts.clear()
        elif isinstance(action, OneWayCut):
            src, dst = action.src % n_sites, action.dst % n_sites
            if src == dst or (src, dst) in open_cuts:
                continue
            open_cuts.add((src, dst))
            action = OneWayCut(action.time, src, dst)
        elif isinstance(action, OneWayHeal):
            src, dst = action.src % n_sites, action.dst % n_sites
            if (src, dst) not in open_cuts:
                continue
            open_cuts.discard((src, dst))
            action = OneWayHeal(action.time, src, dst)
        repaired.append(action)
    time = max((a.time for a in repaired), default=0.0)
    for site in sorted(down):
        time += 15.0
        repaired.append(Recover(time, site))
    if partitioned or open_cuts:
        time += 15.0
        repaired.append(Heal(time))
    return FaultSchedule(repaired)
