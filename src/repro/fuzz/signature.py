"""Protocol-coverage signatures over a merged trace.

The fuzzer steers by *protocol states reached*, not code coverage: a
run's signature is the set of structural features its trace exhibits —
view-graph shapes, cluster decompositions (how many concurrent views of
which sizes coexisted), e-view merge patterns, mode-transition
sequences, and settlement activity.  Two runs that visit the same
features are equivalent to the fuzzer; a run contributing *any* unseen
feature is novel and enters the corpus.

Features are small tuples of strings/ints, so signatures are hashable,
comparable across runs and runtimes, and JSON-serializable (each
feature encodes as a list).  Counts are bucketed logarithmically where
they appear, so signatures stay finite.
"""

from __future__ import annotations

from typing import Iterable

from repro.trace.events import (
    AppEvent,
    EViewChangeEvent,
    ModeChangeEvent,
    RecoverEvent,
    ViewInstallEvent,
)
from repro.trace.recorder import TraceRecorder

#: One coverage feature; the first element names its kind.
Feature = tuple

#: JSON encoding of a signature: sorted list of feature lists.


def _bucket(count: int) -> int:
    """Log2 bucket, so unbounded counts yield bounded feature sets."""
    bucket = 0
    while count > 1:
        count >>= 1
        bucket += 1
    return bucket


def _view_graph_features(rec: TraceRecorder) -> set[Feature]:
    """Shapes of the view DAG: transition size pairs and chain depth."""
    feats: set[Feature] = set()
    size_of: dict = {}
    for ev in rec.of_type(ViewInstallEvent):
        size_of[ev.view_id] = len(ev.members)
    depth: dict = {}
    for ev in rec.of_type(ViewInstallEvent):
        if ev.prev_view_id is None:
            feats.add(("vroot", len(ev.members)))
            depth.setdefault(ev.view_id, 0)
            continue
        prev_size = size_of.get(ev.prev_view_id)
        if prev_size is not None:
            relation = (
                "grow"
                if len(ev.members) > prev_size
                else "shrink" if len(ev.members) < prev_size else "same"
            )
            feats.add(("vchg", prev_size, len(ev.members), relation))
        depth[ev.view_id] = depth.get(ev.prev_view_id, 0) + 1
    if depth:
        feats.add(("vdepth", _bucket(max(depth.values()) + 1)))
    feats.add(("nviews", _bucket(len(size_of) + 1)))
    return feats


def _decomposition_features(rec: TraceRecorder) -> set[Feature]:
    """Concurrent-view decompositions: after every install, the multiset
    of live current-view sizes (e.g. ``(4, 2)`` for Figure 2)."""
    feats: set[Feature] = set()
    current: dict = {}  # pid -> view_id
    size_of: dict = {}
    for ev in rec.events:
        if type(ev) is not ViewInstallEvent:
            continue
        size_of[ev.view_id] = len(ev.members)
        current[ev.pid] = ev.view_id
        views = set(current.values())
        sizes = tuple(sorted((size_of[v] for v in views), reverse=True))
        feats.add(("decomp", sizes))
    return feats


def _eview_features(rec: TraceRecorder) -> set[Feature]:
    """E-view merge/split patterns: subview-count steps and the shapes
    (subview size multisets) the structure passes through."""
    feats: set[Feature] = set()
    canonical: dict = {}  # (view, seq) -> subviews snapshot, first seen
    for ev in rec.of_type(EViewChangeEvent):
        canonical.setdefault((ev.view_id, ev.eview_seq), ev.subviews)
    by_view: dict = {}
    for (view_id, seq), subviews in canonical.items():
        by_view.setdefault(view_id, {})[seq] = subviews
    for seq_map in by_view.values():
        for seq in sorted(seq_map):
            subviews = seq_map[seq]
            shape = tuple(
                sorted((len(members) for _, members in subviews), reverse=True)
            )
            feats.add(("eshape", shape))
            before = seq_map.get(seq - 1)
            if before is not None:
                feats.add(("estep", len(before), len(subviews)))
        if seq_map:
            feats.add(("echanges", _bucket(max(seq_map) + 1)))
    return feats


def _mode_features(rec: TraceRecorder) -> set[Feature]:
    """Mode-automaton coverage: edges taken plus per-process transition
    bigrams (which *sequences* of Figure-1 edges occurred)."""
    feats: set[Feature] = set()
    per_pid: dict = {}
    for ev in rec.of_type(ModeChangeEvent):
        feats.add(("mode", ev.old_mode or "-", ev.new_mode, ev.transition))
        per_pid.setdefault(ev.pid, []).append(ev.transition)
    for transitions in per_pid.values():
        for earlier, later in zip(transitions, transitions[1:]):
            feats.add(("mseq", earlier, later))
    return feats


def _env_and_settle_features(rec: TraceRecorder) -> set[Feature]:
    """Settlement activity (tag x kind) and incarnation depth."""
    feats: set[Feature] = set()
    for ev in rec.of_type(AppEvent):
        if ev.tag.startswith("settle"):
            kind = ev.data.get("kind", "") if isinstance(ev.data, dict) else ""
            feats.add(("settle", ev.tag, kind))
    max_inc = 0
    for ev in rec.of_type(RecoverEvent):
        max_inc = max(max_inc, ev.pid.incarnation)
    if max_inc:
        feats.add(("incarnations", _bucket(max_inc + 1)))
    return feats


def coverage_signature(rec: TraceRecorder) -> frozenset[Feature]:
    """The full protocol-coverage signature of one recorded run."""
    feats: set[Feature] = set()
    feats |= _view_graph_features(rec)
    feats |= _decomposition_features(rec)
    feats |= _eview_features(rec)
    feats |= _mode_features(rec)
    feats |= _env_and_settle_features(rec)
    return frozenset(feats)


def signature_to_json(signature: Iterable[Feature]) -> list[list]:
    """Signature as sorted JSON-ready lists (tuples become lists)."""

    def encode(value):
        if isinstance(value, tuple):
            return [encode(v) for v in value]
        return value

    return sorted((encode(f) for f in signature), key=repr)


def signature_from_json(payload: Iterable[list]) -> frozenset[Feature]:
    def decode(value):
        if isinstance(value, list):
            return tuple(decode(v) for v in value)
        return value

    return frozenset(decode(f) for f in payload)
