"""Pluggable trace checkers, RESTler-style.

The paper's six property checks (:mod:`repro.trace.checks`) verify the
*core* view-synchrony contract.  The fuzzer additionally runs a library
of independent sequence-pattern detectors over the same merged trace —
modeled on RESTler's checker architecture: each checker is a small
object that scans the execution history for one bug pattern, is
registered by name, and can be enabled/disabled per run.

Third-party checkers plug in three ways:

* :func:`register_checker` — decorate a subclass of
  :class:`TraceChecker` anywhere that gets imported;
* ``module:attr`` specs — :func:`load_checker` imports them on demand
  (the CLI's ``--checkers`` accepts these);
* entry points — :func:`discover_checkers` scans the
  ``repro.fuzz_checkers`` group of installed distributions.

Every checker receives a :class:`CheckContext` so detectors that reason
about elapsed time work on both runtimes: trace timestamps are backend
time, and ``time_scale`` converts the scenario-unit grace periods.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from repro.errors import ReproError
from repro.trace.checks import CheckReport
from repro.trace.events import (
    AppEvent,
    CrashEvent,
    DeliveryEvent,
    EViewChangeEvent,
    ModeChangeEvent,
    RecoverEvent,
    ViewInstallEvent,
)
from repro.trace.recorder import TraceRecorder

#: Entry-point group scanned by :func:`discover_checkers`.
ENTRY_POINT_GROUP = "repro.fuzz_checkers"


@dataclass
class CheckContext:
    """What a checker may know about the run besides the trace."""

    #: Backend-time cost of one scenario unit (1.0 on the simulator).
    time_scale: float = 1.0
    #: Universe size the cluster was built with (0 when unknown).
    n_sites: int = 0
    #: Free-form extras for third-party checkers.
    extras: dict = field(default_factory=dict)


class TraceChecker:
    """Base class: one bug-pattern detector over a merged trace."""

    #: Registry / report name; subclasses must override.
    name = "?"

    def run(self, rec: TraceRecorder, ctx: CheckContext) -> CheckReport:
        raise NotImplementedError

    def report(self) -> CheckReport:
        return CheckReport(self.name)


#: name -> zero-argument factory producing a fresh checker instance.
_REGISTRY: dict[str, Callable[[], TraceChecker]] = {}


def register_checker(cls: type[TraceChecker]) -> type[TraceChecker]:
    """Class decorator: make ``cls`` constructible by name."""
    if not cls.name or cls.name == "?":
        raise ReproError(f"checker {cls.__name__} needs a name")
    _REGISTRY[cls.name] = cls
    return cls


def registered_checkers() -> dict[str, Callable[[], TraceChecker]]:
    return dict(_REGISTRY)


def load_checker(spec: str) -> TraceChecker:
    """Instantiate a checker from a registry name or ``module:attr``."""
    factory = _REGISTRY.get(spec)
    if factory is not None:
        return factory()
    if ":" in spec:
        import importlib

        module_name, attr = spec.split(":", 1)
        try:
            obj = getattr(importlib.import_module(module_name), attr)
        except (ImportError, AttributeError) as exc:
            raise ReproError(f"cannot load checker {spec!r}: {exc}") from exc
        return obj() if isinstance(obj, type) else obj
    raise ReproError(
        f"unknown checker {spec!r}; registered: {sorted(_REGISTRY)} "
        f"(or pass a module:attr spec)"
    )


def discover_checkers() -> list[str]:
    """Register checkers advertised via package entry points.

    Returns the names added.  Safe without importlib.metadata entry
    points for the group (returns an empty list).
    """
    added: list[str] = []
    try:
        from importlib.metadata import entry_points
    except ImportError:  # pragma: no cover - py>=3.10 always has it
        return added
    try:
        found = entry_points(group=ENTRY_POINT_GROUP)
    except TypeError:  # pragma: no cover - legacy dict API
        found = entry_points().get(ENTRY_POINT_GROUP, ())
    for ep in found:
        try:
            obj = ep.load()
        except Exception:  # one broken plugin must not kill discovery
            continue
        if isinstance(obj, type) and issubclass(obj, TraceChecker):
            register_checker(obj)
            added.append(obj.name)
    return added


def make_checkers(names: Iterable[str] | None = None) -> list[TraceChecker]:
    """Fresh instances: all registered checkers, or the named subset."""
    if names is None:
        return [factory() for _name, factory in sorted(_REGISTRY.items())]
    return [load_checker(name) for name in names]


def run_checkers(
    rec: TraceRecorder,
    checkers: Sequence[TraceChecker],
    ctx: CheckContext | None = None,
) -> list[CheckReport]:
    """Run every checker; one checker crashing becomes a violation of
    its own report instead of aborting the sweep."""
    ctx = ctx if ctx is not None else CheckContext()
    reports: list[CheckReport] = []
    for checker in checkers:
        try:
            reports.append(checker.run(rec, ctx))
        except Exception as exc:  # checker bugs must surface, not abort
            report = checker.report()
            report.violation(f"checker crashed: {exc!r}")
            reports.append(report)
    return reports


# ---------------------------------------------------------------------------
# The seeded detector library
# ---------------------------------------------------------------------------


@register_checker
class StaleStateTransferChecker(TraceChecker):
    """A state transfer/merge adopted less than the best offered state.

    The settlement leader records every ``settle_decide`` with the
    offered versions and the version actually adopted.  Outside state
    *creation* (where last-process-to-fail selection may legitimately
    prefer an older-versioned snapshot), adopting a version below the
    maximum offered silently discards committed operations.
    """

    name = "StaleStateTransfer"

    def run(self, rec: TraceRecorder, ctx: CheckContext) -> CheckReport:
        report = self.report()
        for ev in rec.of_type(AppEvent):
            if ev.tag != "settle_decide" or not isinstance(ev.data, dict):
                continue
            if ev.data.get("kind") not in ("transfer", "merge"):
                continue
            versions = ev.data.get("versions")
            chosen = ev.data.get("chosen_version")
            if not versions or chosen is None:
                continue  # trace predates version accounting
            report.checked += 1
            best = max(versions)
            if chosen < best:
                report.violation(
                    f"{ev.pid} adopted version {chosen} but a donor offered "
                    f"{best} (t={ev.time:g}, kind={ev.data.get('kind')})"
                )
        return report


@register_checker
class LostSettlementChecker(TraceChecker):
    """A process entered S-mode and the settlement never came.

    After the run's settle tail, a process still in SETTLING whose view
    has been stable for longer than the grace period — with no
    settlement activity anywhere in that window, and not parked on the
    legitimate ``settle_wait_all_sites`` state-creation barrier — lost
    its internal operation: the leader never started (or never
    finished) the session that would reconcile it back to N-mode.
    """

    name = "LostSettlement"

    def __init__(self, grace: float = 120.0) -> None:
        #: Scenario units of quiet after which a stuck S counts as lost.
        self.grace = grace

    def run(self, rec: TraceRecorder, ctx: CheckContext) -> CheckReport:
        report = self.report()
        if not rec.events:
            return report
        t_end = max(ev.time for ev in rec.events)
        grace = self.grace * ctx.time_scale
        crashed: set = set()
        recovered_later: set = set()
        for ev in rec.events:
            if type(ev) is CrashEvent:
                crashed.add(ev.pid)
        last_mode: dict = {}
        mode_at: dict = {}
        for ev in rec.of_type(ModeChangeEvent):
            last_mode[ev.pid] = ev.new_mode
            mode_at[ev.pid] = ev.time
        last_install: dict = {}
        for ev in rec.of_type(ViewInstallEvent):
            last_install[ev.pid] = ev.time
        settle_events = [
            ev
            for ev in rec.of_type(AppEvent)
            if ev.tag.startswith("settle")
        ]
        latest_settle = max((ev.time for ev in settle_events), default=None)
        waiting_all_sites = {
            ev.pid
            for ev in settle_events
            if ev.tag == "settle_wait_all_sites" and ev.time > t_end - grace
        }
        del recovered_later
        for pid, mode in sorted(last_mode.items(), key=lambda kv: repr(kv[0])):
            if pid in crashed:
                continue
            report.checked += 1
            if mode != "S":
                continue
            if t_end - last_install.get(pid, t_end) < grace:
                continue  # view changed recently; settlement may be due
            if t_end - mode_at.get(pid, t_end) < grace:
                continue
            if latest_settle is not None and t_end - latest_settle < grace:
                continue  # a session is visibly making progress
            if waiting_all_sites:
                continue  # creation legitimately parked on missing sites
            report.violation(
                f"{pid} stuck in S-mode since t={mode_at.get(pid, 0.0):g} "
                f"with no settlement activity in the last "
                f"{self.grace:g} scenario units"
            )
        return report


@register_checker
class SubviewMergeAtomicityChecker(TraceChecker):
    """Subview merges must be whole and agreed.

    Two patterns (Section 6.2's merge discipline):

    * *whole*: within a view, a later structure's subview must be the
      union of complete earlier subviews — a subview that absorbs only
      part of another was split by the merge, which the paper forbids;
    * *agreed*: processes that survive a view change into the same next
      view must have applied the same number of e-view changes in the
      old view — a survivor that missed a merge violates the
      view-synchronous delivery of e-view changes.
    """

    name = "SubviewMergeAtomicity"

    def run(self, rec: TraceRecorder, ctx: CheckContext) -> CheckReport:
        report = self.report()
        canonical: dict = {}
        max_seq: dict = {}
        for ev in rec.of_type(EViewChangeEvent):
            canonical.setdefault((ev.view_id, ev.eview_seq), ev.subviews)
            key = (ev.pid, ev.view_id)
            if ev.eview_seq > max_seq.get(key, -1):
                max_seq[key] = ev.eview_seq
        by_view: dict = {}
        for (view_id, seq), subviews in canonical.items():
            by_view.setdefault(view_id, {})[seq] = subviews
        # Whole-subview merges within each view.
        for view_id, seq_map in by_view.items():
            for seq in sorted(seq_map):
                before = seq_map.get(seq - 1)
                if before is None:
                    continue
                report.checked += 1
                old_sets = [members for _, members in before]
                for sid, members in seq_map[seq]:
                    parts = [m for m in old_sets if m & members]
                    torn = [m for m in parts if not m <= members]
                    union = frozenset().union(*parts) if parts else frozenset()
                    if torn or (parts and union != members):
                        report.violation(
                            f"partial subview merge at {view_id} seq {seq}: "
                            f"{sid} is not a union of whole prior subviews"
                        )
        # Survivor agreement on the e-view change count.
        successor = rec.successor_views()
        groups: dict = {}
        for (pid, prev), nxt in successor.items():
            groups.setdefault((prev, nxt), set()).add(pid)
        for (prev, _nxt), pids in groups.items():
            counts = {
                pid: max_seq[(pid, prev)]
                for pid in pids
                if (pid, prev) in max_seq
            }
            if len(counts) < 2:
                continue
            report.checked += 1
            if len(set(counts.values())) > 1:
                detail = ", ".join(
                    f"{pid}={count}" for pid, count in sorted(
                        counts.items(), key=lambda kv: repr(kv[0])
                    )
                )
                report.violation(
                    f"survivors of {prev} applied different e-view change "
                    f"counts: {detail}"
                )
        return report


@register_checker
class AckedWriteLossChecker(TraceChecker):
    """No acknowledged client write may vanish from the store.

    :class:`~repro.apps.versioned_store.VersionedStore` records three
    audit events: ``store_ack`` when a put earns its quorum certificate
    (the client saw "ok"), ``store_apply`` when a member appends a
    version, and ``store_state`` whenever a member's whole chain set is
    *replaced* (state adoption after settlement, or a disk restore on
    recovery) — carrying the full provenance inventory it now holds.

    Replaying those per process — ``store_state`` resets the process's
    holdings, ``store_apply`` adds to them — yields what each process
    retains at the end of the run.  Every acked provenance must appear
    in the union over processes still alive at the end: merges are
    provenance-unions, so losing an acked write means a state decision
    discarded a version some client was promised.
    """

    name = "AckedWriteLoss"

    def run(self, rec: TraceRecorder, ctx: CheckContext) -> CheckReport:
        report = self.report()
        acked: dict[tuple, tuple] = {}  # prov -> (time, pid, key)
        holdings: dict = {}  # pid -> set of prov tuples
        # Replay in time order: a later store_state replaces holdings,
        # so ordering against store_apply matters.
        for ev in sorted(rec.of_type(AppEvent), key=lambda e: e.time):
            if not isinstance(ev.data, dict):
                continue
            if ev.tag == "store_ack":
                prov = tuple(ev.data.get("prov", ()))
                if prov:
                    acked.setdefault(prov, (ev.time, ev.pid, ev.data.get("key")))
            elif ev.tag == "store_apply":
                prov = tuple(ev.data.get("prov", ()))
                if prov:
                    holdings.setdefault(ev.pid, set()).add(prov)
            elif ev.tag == "store_state":
                holdings[ev.pid] = {
                    tuple(p) for p in ev.data.get("provs", ())
                }
        if not acked:
            return report
        dead = {ev.pid for ev in rec.events if type(ev) is CrashEvent}
        retained: set = set()
        for pid, provs in holdings.items():
            if pid not in dead:
                retained |= provs
        for prov, (time, pid, key) in sorted(acked.items()):
            report.checked += 1
            if prov not in retained:
                report.violation(
                    f"write {prov} on key {key!r} was acked to its client "
                    f"by {pid} at t={time:g} but no live process retains "
                    f"it at the end of the run"
                )
        return report


@register_checker
class ZombieIncarnationChecker(TraceChecker):
    """No event from a crashed or superseded incarnation.

    A process identifier names one incarnation of a site.  After its
    crash is recorded, no later trace event may carry that pid; and
    once a site recovers under a fresh incarnation, deliveries
    attributed to a *retired* incarnation of the same site are zombie
    deliveries — state surviving where the failure model says it died.
    """

    name = "ZombieIncarnation"

    def run(self, rec: TraceRecorder, ctx: CheckContext) -> CheckReport:
        report = self.report()
        crashed_at: dict = {}
        superseded_at: dict = {}  # pid -> time a newer incarnation started
        for ev in rec.events:
            if type(ev) is CrashEvent:
                crashed_at.setdefault(ev.pid, ev.time)
            elif type(ev) is RecoverEvent:
                site = ev.pid.site
                for inc in range(ev.pid.incarnation):
                    old = type(ev.pid)(site, inc)
                    superseded_at.setdefault(old, ev.time)
        if not crashed_at and not superseded_at:
            return report
        for ev in rec.events:
            if type(ev) in (CrashEvent, RecoverEvent):
                continue
            pid = getattr(ev, "pid", None)
            if pid is None:
                continue
            report.checked += 1
            t_dead = crashed_at.get(pid)
            if t_dead is not None and ev.time > t_dead:
                report.violation(
                    f"{pid} recorded {type(ev).__name__} at t={ev.time:g} "
                    f"after crashing at t={t_dead:g}"
                )
                continue
            if type(ev) is DeliveryEvent:
                t_super = superseded_at.get(pid)
                if t_super is not None and ev.time > t_super:
                    report.violation(
                        f"retired incarnation {pid} delivered {ev.msg_id} "
                        f"at t={ev.time:g} after its site recovered as a "
                        f"newer incarnation at t={t_super:g}"
                    )
        return report
