"""Test-only planted protocol bugs.

The fuzzer's end-to-end regression needs a *known* defect the checkers
must find: a hook in shared stack code that, when armed, makes the
protocol misbehave in a specific way.  The hooks live here, in one
registry, so production code pays a dict lookup only at the few guarded
call sites and tests can arm/disarm them without monkeypatching.

Bugs are armed per *process* (module state), which covers both the
simulator and the in-process ``realnet`` runtime — the same planted bug
reproduces on either side of the :class:`~repro.ports.ClusterPort`.
For child processes (``realnet-proc``) the ``REPRO_FUZZ_BUG``
environment variable arms bugs at import time, comma-separated.

This module must stay dependency-free (no :mod:`repro` imports): it is
imported from :mod:`repro.core.settlement`, far below the fuzz package.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator

#: The bugs shared stack code knows how to express.
KNOWN_BUGS = frozenset(
    {
        # The settlement leader never starts (or retries) a session:
        # every member that entered S-mode stays there forever.
        "lost_settlement",
        # The settlement leader adopts its *own* possibly-stale state
        # instead of the donors' offers on transfer/merge sessions.
        "stale_transfer",
    }
)

_armed: set[str] = set()


def plant(name: str) -> None:
    """Arm a planted bug for this process."""
    if name not in KNOWN_BUGS:
        raise ValueError(
            f"unknown planted bug {name!r}; known: {sorted(KNOWN_BUGS)}"
        )
    _armed.add(name)


def clear(name: str | None = None) -> None:
    """Disarm one bug, or all of them."""
    if name is None:
        _armed.clear()
    else:
        _armed.discard(name)


def active(name: str) -> bool:
    """Is this bug armed?  The guard production call sites use."""
    return name in _armed


def armed() -> frozenset[str]:
    return frozenset(_armed)


@contextmanager
def planted(name: str | None) -> Iterator[None]:
    """Arm ``name`` (no-op when None) for the duration of a block."""
    if name is None:
        yield
        return
    plant(name)
    try:
        yield
    finally:
        clear(name)


for _name in filter(None, os.environ.get("REPRO_FUZZ_BUG", "").split(",")):
    plant(_name.strip())
