"""Automatic schedule shrinking (delta debugging).

A failing fuzz schedule usually carries dozens of irrelevant actions.
:func:`shrink_schedule` reduces it to a minimal reproducer with the
classic ddmin loop — try dropping chunks of actions, re-run, keep the
candidate whenever the *same checkers still fail* — followed by
cheaper cosmetic passes (pull actions earlier, round times) that make
the reproducer humane without changing what it exercises.

The oracle is any callable from a candidate schedule to the set of
failing checker names; the engine's oracle replays the candidate on a
fresh cluster with the same seed, workload and planted bug as the
original failure.  Every oracle call is a full run, so the loop is
budgeted by *oracle calls*, not wall time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from repro.net.faults import FaultAction, FaultSchedule

#: candidate schedule -> names of checkers that fail on it.
ShrinkOracle = Callable[[FaultSchedule], "frozenset[str] | set[str]"]


@dataclass
class ShrinkResult:
    """What the shrinking loop achieved."""

    schedule: FaultSchedule
    target: frozenset[str]  # the checkers every kept candidate fails
    oracle_calls: int = 0
    rounds: int = 0
    #: Action counts along the way, for reporting.
    history: list[int] = field(default_factory=list)

    @property
    def actions(self) -> int:
        return len(self.schedule.actions)


def _still_fails(
    oracle: ShrinkOracle, candidate: FaultSchedule, target: frozenset[str]
) -> bool:
    return target <= frozenset(oracle(candidate))


def _chunks(actions: Sequence[FaultAction], n: int) -> list[list[FaultAction]]:
    """Split into n (nearly) equal contiguous chunks."""
    size, extra = divmod(len(actions), n)
    out: list[list[FaultAction]] = []
    start = 0
    for i in range(n):
        end = start + size + (1 if i < extra else 0)
        out.append(list(actions[start:end]))
        start = end
    return [c for c in out if c]


def shrink_schedule(
    schedule: FaultSchedule,
    oracle: ShrinkOracle,
    *,
    target: Iterable[str] | None = None,
    max_oracle_calls: int = 120,
    repair: Callable[[FaultSchedule], FaultSchedule] | None = None,
) -> ShrinkResult:
    """ddmin the action list, then compress the timeline.

    ``target`` is the set of checker names the reproducer must keep
    failing; by default it is whatever the oracle reports for the input
    schedule (one extra call).  ``repair`` (e.g.
    :func:`~repro.fuzz.mutate.normalize_schedule`) maps every candidate
    to a well-formed schedule before the oracle sees it — dropping a
    chunk can orphan a recovery, and the repaired form is what gets
    kept.  Returns the smallest schedule found — the input itself if
    nothing smaller reproduces.
    """
    calls = 0

    def ask(candidate: FaultSchedule) -> FaultSchedule | None:
        """The repaired candidate if it still reproduces, else None."""
        nonlocal calls
        if repair is not None:
            candidate = repair(candidate)
        calls += 1
        return candidate if _still_fails(oracle, candidate, goal) else None

    if target is None:
        goal = frozenset(oracle(schedule))
        calls += 1
    else:
        goal = frozenset(target)
    result = ShrinkResult(schedule=schedule, target=goal)
    if not goal:
        result.oracle_calls = calls
        return result  # nothing fails: nothing to preserve

    # Phase 1: ddmin on the action list.
    best = sorted(schedule.actions, key=lambda a: (a.time, repr(a)))
    granularity = 2
    rounds = 0
    while len(best) > 1 and calls < max_oracle_calls:
        rounds += 1
        chunks = _chunks(best, min(granularity, len(best)))
        shrunk = False
        # Try each complement (drop one chunk at a time).
        for index in range(len(chunks)):
            if calls >= max_oracle_calls:
                break
            candidate = [
                action
                for ci, chunk in enumerate(chunks)
                if ci != index
                for action in chunk
            ]
            if not candidate or len(candidate) >= len(best):
                continue
            kept = ask(FaultSchedule(list(candidate)))
            if kept is not None and len(kept.actions) < len(best):
                best = sorted(
                    kept.actions, key=lambda a: (a.time, repr(a))
                )
                granularity = max(granularity - 1, 2)
                shrunk = True
                break
        if not shrunk:
            if granularity >= len(best):
                break
            granularity = min(len(best), granularity * 2)
        result.history.append(len(best))

    # Phase 2: timeline compression — shift the whole schedule earlier
    # and round action times; purely cosmetic unless the oracle objects.
    current = FaultSchedule(list(best))
    slack = min((a.time for a in current.actions), default=0.0) - 120.0
    if slack > 1.0 and calls < max_oracle_calls:
        kept = ask(current.shifted(-slack))
        if kept is not None:
            current = kept
    if calls < max_oracle_calls:
        candidate = FaultSchedule(
            [
                type(a)(
                    **{
                        **{
                            f: getattr(a, f)
                            for f in a.__dataclass_fields__
                        },
                        "time": float(round(a.time)),
                    }
                )
                for a in current.actions
            ]
        )
        if candidate != current:
            kept = ask(candidate)
            if kept is not None:
                current = kept

    result.schedule = current
    result.oracle_calls = calls
    result.rounds = rounds
    return result


def shrink_entry(entry, execute, *, max_oracle_calls: int = 120):
    """Shrink a failing corpus entry with an entry-level executor.

    ``execute`` runs a :class:`~repro.fuzz.corpus.CorpusEntry` and
    returns the executed entry (with ``failing_checkers`` filled in) —
    the engine provides this.  Returns ``(shrunk_entry, ShrinkResult)``
    where the entry is marked ``kind="shrunk"`` with ``parent`` set.
    """

    from repro.fuzz.mutate import normalize_schedule

    def oracle(candidate: FaultSchedule):
        ran = execute(entry.with_schedule(candidate))
        return frozenset(ran.failing_checkers)

    # "Unsettled" is a run verdict, not a bug pattern — do not force
    # the minimal reproducer to also fail to converge.
    goal = tuple(n for n in entry.failing_checkers if n != "Unsettled")
    result = shrink_schedule(
        entry.schedule,
        oracle,
        target=goal or None,
        max_oracle_calls=max_oracle_calls,
        repair=lambda s: normalize_schedule(s, entry.workload.n_sites),
    )
    final = execute(entry.with_schedule(result.schedule))
    from dataclasses import replace

    shrunk = replace(final, kind="shrunk", parent=entry.entry_id)
    return shrunk, result
