"""The coverage-guided fuzzing loop.

One iteration = one checked workload run: build a cluster (any
:func:`~repro.ports.make_cluster` runtime), drive it through a fault
schedule plus a client workload, then judge the merged trace twice —
the paper's core property checks
(:func:`~repro.trace.checks.check_cluster`, via
:func:`~repro.workload.runner.run_checked_workload`) and the pluggable
detector library (:mod:`repro.fuzz.checkers`).  The run's
protocol-coverage signature (:mod:`repro.fuzz.signature`) decides its
fate: runs contributing unseen features join the corpus and become
mutation parents; failing runs additionally get shrunk
(:mod:`repro.fuzz.shrink`) into minimal reproducers.

Outcome counters flow through the same :class:`MetricsRegistry` the
runtimes use, so a campaign exports ``fuzz_runs_total{outcome=...}``
next to protocol metrics.
"""

from __future__ import annotations

import os
import random
import time
from dataclasses import dataclass, field, replace
from typing import Any, Callable

from repro.apps.factories import app_factory
from repro.fuzz import bugs
from repro.fuzz.checkers import CheckContext, make_checkers, run_checkers
from repro.fuzz.corpus import Corpus, CorpusEntry, WorkloadSpec
from repro.fuzz.mutate import mutate, normalize_schedule
from repro.fuzz.shrink import ShrinkResult, shrink_entry
from repro.fuzz.signature import coverage_signature
from repro.obs.registry import MetricsRegistry
from repro.ports import make_cluster
from repro.workload.generator import RandomFaultGenerator
from repro.workload.runner import run_checked_workload

#: Checkers rerun on every iteration; instantiate once per engine.


@dataclass
class FuzzConfig:
    """Knobs of one fuzz campaign."""

    runtime: str = "sim"
    n_sites: int = 5
    app: str = "file"
    seed: int = 0
    loss_prob: float = 0.0
    #: Stop after this many iterations (None = no iteration cap).
    iterations: int | None = 50
    #: Stop after this many wall seconds (None = no time cap).
    time_budget_s: float | None = None
    #: Checker names / specs to run (None = the full registry).
    checkers: tuple[str, ...] | None = None
    #: Arm this planted bug for every run (test-only hook).
    planted_bug: str | None = None
    #: Also count core property-check violations as failures.
    core_checks: bool = True
    #: Include asymmetric one-way cuts in generated schedules.
    asymmetric: bool = False
    #: Scenario-unit shape of generated schedules.
    fault_start: float = 120.0
    fault_duration: float = 450.0
    mean_gap: float = 60.0
    tail: float = 250.0
    settle_timeout: float = 600.0
    #: Probability of generating a fresh seed schedule instead of
    #: mutating a corpus parent.
    fresh_prob: float = 0.25
    #: Oracle-call budget for each automatic shrink.
    shrink_budget: int = 80
    #: Shrink failures as they are found (disable to just collect).
    auto_shrink: bool = True

    def workload(self) -> WorkloadSpec:
        return WorkloadSpec(app=self.app, n_sites=self.n_sites, tail=self.tail)


@dataclass
class FuzzStats:
    """What a campaign did, for reports and tests."""

    iterations: int = 0
    failures: int = 0
    novel: int = 0
    features: int = 0
    wall_s: float = 0.0
    shrunk: list[str] = field(default_factory=list)  # entry ids
    first_failure: CorpusEntry | None = None


class FuzzEngine:
    """Drives the generate -> execute -> judge -> mutate loop."""

    def __init__(
        self,
        config: FuzzConfig,
        corpus: Corpus | None = None,
        metrics: MetricsRegistry | None = None,
        log: Callable[[str], None] | None = None,
    ) -> None:
        self.config = config
        self.corpus = corpus if corpus is not None else Corpus()
        self.rng = random.Random(config.seed)
        self.checkers = make_checkers(config.checkers)
        self.metrics = (
            metrics
            if metrics is not None
            else MetricsRegistry(clock=time.monotonic, runtime="fuzz")
        )
        self._runs = self.metrics.counter(
            "fuzz_runs_total",
            "fuzz iterations by outcome (failing/novel/boring/unsettled)",
            ("outcome",),
        )
        self._features = self.metrics.counter(
            "fuzz_features_total", "novel coverage features discovered"
        )
        self._checker_hits = self.metrics.counter(
            "fuzz_checker_violations_total",
            "violations reported, by checker",
            ("checker",),
        )
        self._shrink_runs = self.metrics.counter(
            "fuzz_shrink_oracle_runs_total", "replays spent shrinking"
        )
        self._log = log if log is not None else (lambda line: None)

    # -- one run -----------------------------------------------------------

    def execute_entry(self, entry: CorpusEntry) -> CorpusEntry:
        """Replay one entry on a fresh cluster; fill in its verdicts."""
        config = self.config
        spec = entry.workload
        factory = app_factory(spec.app, spec.n_sites)
        planted = entry.planted_bug
        prior_env = os.environ.get("REPRO_FUZZ_BUG")
        if planted and config.runtime == "realnet-proc":
            # Child processes arm the bug from the environment.
            os.environ["REPRO_FUZZ_BUG"] = planted
        try:
            with bugs.planted(planted):
                cluster = make_cluster(
                    config.runtime,
                    spec.n_sites,
                    factory,
                    seed=entry.seed,
                    loss_prob=entry.loss_prob,
                )
                try:
                    report = run_checked_workload(
                        cluster,
                        entry.schedule,
                        spec.client_factories(),
                        tail=spec.tail,
                        settle_timeout=config.settle_timeout,
                    )
                    time_scale = cluster.time_scale
                finally:
                    cluster.close()
        finally:
            if planted and config.runtime == "realnet-proc":
                if prior_env is None:
                    os.environ.pop("REPRO_FUZZ_BUG", None)
                else:
                    os.environ["REPRO_FUZZ_BUG"] = prior_env
        ctx = CheckContext(time_scale=time_scale, n_sites=spec.n_sites)
        fuzz_reports = run_checkers(report.trace, self.checkers, ctx)
        failing: list[str] = []
        violations: list[str] = []
        reports = list(fuzz_reports)
        if self.config.core_checks:
            reports += report.reports
        for check in reports:
            if not check.ok:
                failing.append(check.name)
                violations.extend(check.violations)
                self._checker_hits.labels(check.name).inc(
                    len(check.violations) or 1
                )
        if not report.settled:
            failing.append("Unsettled")
            violations.append(
                f"membership did not converge within "
                f"{self.config.settle_timeout:g} scenario units"
            )
        return replace(
            entry,
            signature=coverage_signature(report.trace),
            failing_checkers=tuple(failing),
            violations=tuple(violations),
        )

    # -- schedule sources --------------------------------------------------

    def seed_entry(self) -> CorpusEntry:
        """A fresh random entry from the schedule generator."""
        config = self.config
        gen_seed = self.rng.randrange(2**31)
        schedule = RandomFaultGenerator(
            n_sites=config.n_sites,
            seed=gen_seed,
            start=config.fault_start,
            duration=config.fault_duration,
            mean_gap=config.mean_gap,
            asymmetric=config.asymmetric,
        ).generate()
        return CorpusEntry(
            schedule=schedule,
            workload=config.workload(),
            seed=self.rng.randrange(2**31),
            loss_prob=config.loss_prob,
            kind="seed",
            planted_bug=config.planted_bug,
        )

    def mutant_entry(self, parent: CorpusEntry) -> CorpusEntry:
        """Mutate a corpus parent (occasionally splicing another)."""
        others = [
            e
            for e in self.corpus.entries.values()
            if e.entry_id != parent.entry_id
        ]
        other = self.rng.choice(others).schedule if others else None
        child_schedule = mutate(
            parent.schedule, self.rng, self.config.n_sites, other
        )
        child = parent.with_schedule(child_schedule)
        return replace(
            child,
            kind="mutant",
            parent=parent.entry_id,
            seed=self.rng.randrange(2**31),
        )

    def next_entry(self) -> CorpusEntry:
        parents = list(self.corpus.entries.values())
        if not parents or self.rng.random() < self.config.fresh_prob:
            return self.seed_entry()
        # Rarity-weighted parent selection: entries carrying features
        # few corpus members share get proportionally more mutation
        # budget, pushing the campaign toward the frontier instead of
        # re-mutating the crowd around common coverage.
        weights = [self.corpus.rarity_weight(p) for p in parents]
        return self.mutant_entry(self.rng.choices(parents, weights=weights)[0])

    # -- the campaign ------------------------------------------------------

    def run(self) -> FuzzStats:
        """Fuzz until the iteration or time budget is exhausted."""
        config = self.config
        stats = FuzzStats()
        t0 = time.monotonic()
        while True:
            if (
                config.iterations is not None
                and stats.iterations >= config.iterations
            ):
                break
            if (
                config.time_budget_s is not None
                and time.monotonic() - t0 >= config.time_budget_s
            ):
                break
            entry = self.next_entry()
            executed = self.execute_entry(entry)
            stats.iterations += 1
            fresh = self.corpus.novel_features(executed.signature)
            real_failure = any(
                name != "Unsettled" for name in executed.failing_checkers
            )
            if real_failure:
                outcome = "failing"
                stats.failures += 1
                if stats.first_failure is None:
                    stats.first_failure = executed
                self._log(
                    f"[{stats.iterations}] FAIL "
                    f"{','.join(executed.failing_checkers)} "
                    f"({len(executed.schedule.actions)} actions)"
                )
            elif executed.failing_checkers:  # only "Unsettled" left
                outcome = "unsettled"
            elif fresh:
                outcome = "novel"
                stats.novel += 1
                self._log(
                    f"[{stats.iterations}] +{len(fresh)} features "
                    f"({len(self.corpus.seen) + len(fresh)} total)"
                )
            else:
                outcome = "boring"
            self._runs.labels(outcome).inc()
            self._features.labels().inc(len(fresh))
            if fresh or real_failure:
                self.corpus.add(executed)
            if real_failure and config.auto_shrink:
                shrunk, result = self.shrink(executed)
                stats.shrunk.append(shrunk.entry_id)
                self._log(
                    f"    shrunk to {len(shrunk.schedule.actions)} actions "
                    f"in {result.oracle_calls} replays"
                )
        stats.features = len(self.corpus.seen)
        stats.wall_s = time.monotonic() - t0
        return stats

    def shrink(
        self, entry: CorpusEntry, max_oracle_calls: int | None = None
    ) -> tuple[CorpusEntry, ShrinkResult]:
        """Reduce a failing entry to a minimal reproducer; corpus gets
        the shrunk entry."""
        budget = (
            max_oracle_calls
            if max_oracle_calls is not None
            else self.config.shrink_budget
        )

        def execute(candidate: CorpusEntry) -> CorpusEntry:
            self._shrink_runs.labels().inc()
            return self.execute_entry(candidate)

        shrunk, result = shrink_entry(
            entry, execute, max_oracle_calls=budget
        )
        self.corpus.add(shrunk)
        return shrunk, result

    # -- replay ------------------------------------------------------------

    def replay(self, entry: CorpusEntry) -> tuple[bool, CorpusEntry]:
        """Re-execute an entry; True iff it reproduces its verdict.

        A failing entry reproduces when every checker it recorded fails
        again; a clean entry reproduces when no checker fails.
        """
        executed = self.execute_entry(entry)
        if entry.failing_checkers:
            ok = set(entry.failing_checkers) <= set(executed.failing_checkers)
        else:
            ok = not executed.failed
        return ok, executed


def quick_entry(
    schedule_actions: Any = None, **config_kwargs: Any
) -> CorpusEntry:
    """Convenience for tests: an entry around a literal schedule."""
    from repro.net.faults import FaultSchedule

    config = FuzzConfig(**config_kwargs)
    schedule = FaultSchedule(list(schedule_actions or []))
    return CorpusEntry(
        schedule=normalize_schedule(schedule, config.n_sites),
        workload=config.workload(),
        seed=config.seed,
        loss_prob=config.loss_prob,
        planted_bug=config.planted_bug,
    )
