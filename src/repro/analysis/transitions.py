"""Mode-transition analysis (the Figure 1 view of an execution)."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.trace.events import ModeChangeEvent
from repro.trace.recorder import TraceRecorder

#: The six labelled edges of Figure 1 as (transition, old, new) triples.
FIGURE_1_EDGES: frozenset[tuple[str, str, str]] = frozenset(
    {
        ("Failure", "N", "R"),
        ("Failure", "S", "R"),
        ("Repair", "R", "S"),
        ("Reconfigure", "N", "S"),
        ("Reconfigure", "S", "S"),
        ("Reconcile", "S", "N"),
    }
)


@dataclass
class TransitionMatrix:
    """Counts of observed mode transitions, keyed like FIGURE_1_EDGES."""

    counts: dict[tuple[str, str, str], int] = field(default_factory=dict)

    def add(self, transition: str, old: str, new: str) -> None:
        key = (transition, old, new)
        self.counts[key] = self.counts.get(key, 0) + 1

    def merge(self, other: "TransitionMatrix") -> "TransitionMatrix":
        merged = TransitionMatrix(dict(self.counts))
        for key, count in other.counts.items():
            merged.counts[key] = merged.counts.get(key, 0) + count
        return merged

    @property
    def edges(self) -> frozenset[tuple[str, str, str]]:
        """Observed edges, excluding the initial Join pseudo-edge."""
        return frozenset(k for k in self.counts if k[0] != "Join")

    @property
    def illegal_edges(self) -> frozenset[tuple[str, str, str]]:
        """Edges observed that Figure 1 does not admit."""
        return self.edges - FIGURE_1_EDGES

    @property
    def missing_edges(self) -> frozenset[tuple[str, str, str]]:
        """Figure-1 edges the execution never exercised."""
        return FIGURE_1_EDGES - self.edges

    @property
    def conforms(self) -> bool:
        return not self.illegal_edges

    @property
    def complete(self) -> bool:
        return not self.missing_edges


def transition_matrix(rec: TraceRecorder) -> TransitionMatrix:
    """Extract the observed transition matrix from a trace."""
    matrix = TransitionMatrix()
    for event in rec.of_type(ModeChangeEvent):
        matrix.add(event.transition, event.old_mode or "-", event.new_mode)
    return matrix
