"""The shared-state problem log of an execution.

For every S-mode entry in a recorded run, this module lines up the
three classifiers the reproduction implements — omniscient ground
truth, flat-view local reasoning, enriched-view local reasoning — into
one :class:`EventDiagnosis` record.  Experiment E6 is a statistic over
this log; tests and notebooks can inspect individual events.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.classify import (
    EnrichedVerdict,
    classify_enriched,
    classify_flat,
    ground_truth,
)
from repro.core.cuts import cut_at_install
from repro.core.shared_state import Diagnosis
from repro.evs.eview import EView, EViewStructure, Subview, SvSet
from repro.gms.view import View
from repro.trace.events import EViewChangeEvent, ModeChangeEvent
from repro.trace.recorder import TraceRecorder
from repro.types import ProcessId, ViewId


@dataclass(frozen=True)
class EventDiagnosis:
    """One S-mode entry, seen through all three classifiers."""

    pid: ProcessId
    view_id: ViewId
    transition: str
    truth: Diagnosis
    flat_candidates: frozenset[str]
    enriched: EnrichedVerdict

    @property
    def flat_exact(self) -> bool:
        return self.flat_candidates == frozenset({self.truth.label})

    @property
    def enriched_exact(self) -> bool:
        return self.enriched.label == self.truth.label


def _eview_at_install(rec: TraceRecorder, pid: ProcessId, view_id: ViewId) -> EView | None:
    """Rebuild the e-view a process received with a view install."""
    snapshot = next(
        (
            e
            for e in rec.of_type(EViewChangeEvent)
            if e.pid == pid and e.view_id == view_id and e.eview_seq == 0
        ),
        None,
    )
    if snapshot is None:
        return None
    subviews = tuple(Subview(sid, members) for sid, members in snapshot.subviews)
    svsets = tuple(SvSet(ssid, sids) for ssid, sids in snapshot.svsets)
    members = frozenset(p for sv in subviews for p in sv.members)
    return EView(View(view_id, members), EViewStructure(subviews, svsets))


def diagnose_run(
    rec: TraceRecorder,
    n_capable,
    exclusive_full: bool = True,
) -> list[EventDiagnosis]:
    """Every (process, view) S-mode entry of the run, fully classified.

    ``n_capable`` is the mode function's N-condition predicate over
    member sets (see :class:`~repro.core.mode_functions.ModeFunction`).
    """
    entries: list[EventDiagnosis] = []
    seen: set[tuple[ProcessId, ViewId]] = set()
    for event in rec.of_type(ModeChangeEvent):
        if event.new_mode != "S":
            continue
        if event.transition not in ("Repair", "Reconfigure"):
            continue
        key = (event.pid, event.view_id)
        if key in seen:
            continue
        seen.add(key)
        truth = ground_truth(rec, event.view_id)
        cut = cut_at_install(rec, event.view_id)
        if event.pid not in cut:
            continue
        my_prev_mode = cut[event.pid].prev_mode or "R"
        flat = classify_flat(
            my_prev_mode,
            len(truth.s_n | truth.s_r),
            exclusive_full=exclusive_full,
        )
        eview = _eview_at_install(rec, event.pid, event.view_id)
        if eview is None:
            continue
        verdict = classify_enriched(eview, n_capable)
        entries.append(
            EventDiagnosis(
                pid=event.pid,
                view_id=event.view_id,
                transition=event.transition,
                truth=truth,
                flat_candidates=flat,
                enriched=verdict,
            )
        )
    return entries


def classification_score(entries: list[EventDiagnosis]) -> dict[str, float]:
    """Aggregate exactness rates (the E6 statistic)."""
    if not entries:
        return {"events": 0, "flat_exact": 0.0, "enriched_exact": 0.0,
                "avg_flat_candidates": 0.0}
    return {
        "events": len(entries),
        "flat_exact": sum(e.flat_exact for e in entries) / len(entries),
        "enriched_exact": sum(e.enriched_exact for e in entries) / len(entries),
        "avg_flat_candidates": (
            sum(len(e.flat_candidates) for e in entries) / len(entries)
        ),
    }
