"""Post-hoc analysis of recorded executions."""

from repro.analysis.shared_state_log import (
    EventDiagnosis,
    classification_score,
    diagnose_run,
)
from repro.analysis.transitions import (
    FIGURE_1_EDGES,
    TransitionMatrix,
    transition_matrix,
)

__all__ = [
    "EventDiagnosis",
    "diagnose_run",
    "classification_score",
    "FIGURE_1_EDGES",
    "TransitionMatrix",
    "transition_matrix",
]
