"""Unreliable failure detection by heartbeats.

In an asynchronous system, "the inability to communicate with a certain
process cannot be attributed to its real cause" (Section 1): the
detector here is deliberately *unreliable* — a heartbeat delayed past the
timeout produces a false suspicion indistinguishable from a crash, and
the membership service above must cope, exactly as the paper's model
demands.
"""

from repro.fd.heartbeat import Heartbeat, HeartbeatDetector

__all__ = ["Heartbeat", "HeartbeatDetector"]
