"""Heartbeat failure detector.

Every process periodically sends a :class:`Heartbeat` to every site in
the universe.  The detector considers a site reachable iff it heard from
it recently enough; the freshest incarnation heard wins, which is how a
recovered process (fresh identifier, same site) replaces its predecessor
in everyone's estimates without any extra mechanism.

Heartbeats carry the sender's current view identifier.  A heartbeat from
a reachable process whose view differs from ours is evidence that the
component disagrees about membership — the detector surfaces it so the
membership service can trigger a reconciling view change (this is the
anti-divergence rule described in DESIGN.md §4.1).

The all-to-all beacon costs O(n²) messages per interval, which is fine
up to a few dozen sites; :class:`~repro.fd.gossip.GossipDetector` (a
subclass of the :class:`DetectorBase` defined here) replaces the beacon
with an epidemic digest push for larger clusters.  Both detectors expose
the same surface, so the rest of the stack never knows which one runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.types import ProcessId, SiteId, ViewId

if TYPE_CHECKING:  # pragma: no cover
    from repro.vsync.stack import GroupStack


@dataclass(frozen=True)
class Heartbeat:
    """I-am-alive beacon: sender's identifier and current view.

    ``last_seqno`` (the sender's own multicast count in its current
    view) and ``eview_seq`` (its applied e-view change count) piggyback
    so receivers can detect losses inside a *stable* view — without
    them, a dropped multicast or e-view change would only be repaired
    by the next view change, stalling the victim indefinitely.
    """

    sender: ProcessId
    view_id: ViewId | None
    last_seqno: int = 0
    eview_seq: int = 0


class DetectorBase:
    """State and queries shared by every failure-detector flavour.

    Subclasses implement :meth:`_beat` (what goes on the wire each
    interval).  Everything else — the last-heard table, the reachability
    cache, view-disagreement detection and the expiry sweep — is flavour
    independent.
    """

    def __init__(
        self,
        stack: "GroupStack",
        interval: float = 5.0,
        timeout: float = 16.0,
    ) -> None:
        self.stack = stack
        self.interval = interval
        self.timeout = timeout
        self._last_heard: dict[SiteId, tuple[float, ProcessId]] = {}
        self._heard_views: dict[ProcessId, tuple[float, ViewId | None]] = {}
        self._reachable_cache: frozenset[ProcessId] = frozenset({stack.pid})
        # Int mirror of the cache (site -> incarnation): the per-message
        # "already reachable?" probe must not pay a ProcessId hash.
        self._reachable_incs: dict[SiteId, int] = {
            stack.pid.site: stack.pid.incarnation
        }
        self.on_change: Callable[[], None] | None = None
        # Sweep-cost accounting for the perf regression tests: entries
        # examined by the periodic sweep, cumulatively.  Must stay
        # O(live peers), not O(every site ever heard).
        self.sweep_examined = 0

    def start(self) -> None:
        """Arm the beacon and sweep timers.

        The periodic timers are staggered by a deterministic per-process
        phase offset within one interval: without it, every process a
        cluster starts at the same instant beats at the same virtual
        times forever, and each beat tick lands n*(n-1) deliveries on a
        single instant — a pathological same-tick burst the real systems
        being modelled never exhibit.  The offset is a pure function of
        the process identifier, so runs stay reproducible.
        """
        phase = self._phase_offset()
        self.stack.set_timer(phase, self._arm_periodic)
        self._beat()

    def _phase_offset(self) -> float:
        # Golden-ratio hashing spreads consecutive site numbers (and
        # successive incarnations at one site) evenly over the interval.
        pid = self.stack.pid
        frac = (pid.site * 0.6180339887498949 + pid.incarnation * 0.3819660112501051) % 1.0
        return self.interval * frac

    def _arm_periodic(self) -> None:
        self.stack.set_periodic(self.interval, self._beat)
        self.stack.set_periodic(self.interval, self._sweep)
        self._beat()

    # -- sending ----------------------------------------------------------

    def _beat(self) -> None:
        raise NotImplementedError

    # -- receiving --------------------------------------------------------

    def heard(self, src: ProcessId) -> None:
        """Register life evidence for ``src`` (any message counts).

        Fast path: when ``src`` is already in the reachable estimate,
        hearing it again can only refresh its timestamp — no need to
        rebuild the estimate (this runs on *every* message delivery, so
        it must not allocate).  Entries that time out are expired by the
        periodic sweep instead.
        """
        site = src.site
        prev = self._last_heard.get(site)
        if prev is not None and prev[1].incarnation > src.incarnation:
            return  # stale incarnation; ignore
        self._last_heard[site] = (self.stack.scheduler.now, src)
        if self._reachable_incs.get(site) != src.incarnation:
            self._refresh()

    def _sweep(self) -> None:
        """Expire timed-out peers.

        Only the currently-reachable peers need examining: a site that
        is *not* in the cache can only enter it through :meth:`heard`
        (which refreshes immediately), so its ``_last_heard`` entry is
        irrelevant to the sweep.  This keeps sweep work O(live peers)
        even when the universe holds hundreds of long-dead or
        partitioned sites.
        """
        now = self.stack.now
        own = self.stack.pid
        expired = False
        examined = 0
        for pid in self._reachable_cache:
            if pid == own:
                continue
            examined += 1
            entry = self._last_heard.get(pid.site)
            if entry is None or now - entry[0] > self.timeout:
                expired = True
                break
        self.sweep_examined += examined
        if expired:
            self._refresh()

    def on_digest(self, src: ProcessId, digest) -> None:
        """A gossip digest arrived.  The base treatment (used when a
        heartbeat-plane node shares a cluster with gossip-plane nodes)
        is to read it as a plain beacon from its sender; the gossip
        detector overrides this to mine the entries."""
        self._heard_views[src] = (self.stack.now, digest.view_id)
        self.heard(src)

    def force_down(self, site: SiteId) -> None:
        """Expire a site immediately (used for graceful leaves)."""
        self._last_heard.pop(site, None)
        self._refresh()

    def _refresh(self) -> None:
        now = self.stack.now
        alive = {self.stack.pid}
        for site, (when, pid) in self._last_heard.items():
            if site == self.stack.pid.site:
                continue
            if now - when <= self.timeout:
                alive.add(pid)
        new_cache = frozenset(alive)
        if new_cache != self._reachable_cache:
            self._reachable_cache = new_cache
            self._reachable_incs = {p.site: p.incarnation for p in new_cache}
            if self.on_change is not None:
                self.on_change()

    # -- queries ----------------------------------------------------------

    def reachable(self) -> frozenset[ProcessId]:
        """Current estimate of reachable processes (always includes self)."""
        return self._reachable_cache

    def suspects(self, pids: frozenset[ProcessId]) -> frozenset[ProcessId]:
        """The subset of ``pids`` currently *not* believed reachable."""
        return pids - self._reachable_cache

    def heard_view(self, pid: ProcessId) -> ViewId | None:
        """Last view identifier heard from ``pid`` (None if never)."""
        entry = self._heard_views.get(pid)
        return entry[1] if entry is not None else None

    def view_disagreement(self, since: float = 0.0) -> bool:
        """True iff some reachable peer reports a different view id.

        ``since`` filters out heartbeats that predate our own latest
        view installation — a peer's pre-install beacon necessarily
        names an older view and is not evidence of divergence.

        A heard view *older* than ours is also ignored even when fresh:
        the peer may simply not have installed yet, and if it truly
        stalled it is the peer's own trigger (it hears our newer view)
        that reconciles the group.  Only a newer view, or a concurrent
        one with an equal epoch but different coordinator, is evidence
        that we are the ones lagging or diverged.
        """
        mine = self.stack.current_view_id()
        if mine is None:
            return False
        for pid in self._reachable_cache:
            if pid == self.stack.pid:
                continue
            entry = self._heard_views.get(pid)
            if entry is None:
                continue
            when, theirs = entry
            if when < since or theirs is None:
                continue
            if theirs != mine and theirs > mine:
                return True
        return False


class HeartbeatDetector(DetectorBase):
    """The all-to-all beacon flavour: every site, every interval."""

    # -- sending ----------------------------------------------------------

    def _beat(self) -> None:
        beat = Heartbeat(
            self.stack.pid,
            self.stack.current_view_id(),
            last_seqno=self.stack.channels.own_seqno(),
            eview_seq=self.stack.evs.applied_seq,
        )
        own = self.stack.pid.site
        self.stack.send_sites(
            (site for site in self.stack.universe_sites() if site != own), beat
        )

    # -- receiving --------------------------------------------------------

    def on_heartbeat(self, src: ProcessId, beat: Heartbeat) -> None:
        self._heard_views[src] = (self.stack.now, beat.view_id)
        self.heard(src)
