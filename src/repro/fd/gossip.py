"""Epidemic (gossip) failure detector.

The all-to-all heartbeat plane costs O(n²) messages per interval — fine
at a dozen sites, prohibitive at hundreds.  This module replaces the
beacon with van Renesse-style gossip: each site keeps a monotonically
increasing *liveness counter* per known site and, every interval, pushes
a compact digest of its whole table (site → incarnation, counter,
suspicion flag) to ``fanout`` peers sampled from the universe.  Fresh
counters spread epidemically, reaching every site in O(log n / log
fanout) intervals with O(n·fanout) messages per interval total.

Receiving a digest yields two kinds of evidence:

* **direct** — the sender itself is alive (the stack already feeds every
  delivery through :meth:`DetectorBase.heard`); the digest additionally
  carries the sender's view id and traffic positions, so the in-view
  loss-repair piggyback of the heartbeat plane works unchanged;
* **indirect** — an entry whose ``(incarnation, counter)`` is *strictly
  newer* than our recorded one proves the named site was alive recently
  enough for its fresh counter to have gossiped here; we refresh its
  last-heard stamp without ever exchanging a message with it.

Suspicion piggybacks SWIM-style: each entry carries whether the sender
currently believes the site unreachable, and a site seeing itself
suspected under its own incarnation bumps its counter and gossips
immediately (rate-limited to once per interval), so a false suspicion is
refuted in one epidemic round instead of lingering until the suspect
happens to be sampled.

**Determinism at full fanout.**  When ``fanout >= |universe| - 1`` the
detector degenerates, by construction, to the all-to-all plane: digests
go to every other site at exactly the times heartbeats would (same
phase-offset schedule), direct evidence drives ``heard()`` identically,
and indirect evidence never fires — a relayed counter arrives at least
one beat after the origin's own digest delivered it directly, so the
strictly-newer test always fails.  Refutation is suppressed in this
regime (our own direct digests already reach everyone every interval).
Trace-level determinism tests compare installed-view sequences of the
two planes at small n on this property.

The failure timeout must cover a whole epidemic propagation, not one
hop: with interval ``T`` and fanout ``k``, a counter reaches all ``n``
sites in about ``log(n)/log(k+1)`` rounds, so choose ``timeout ≳ T *
(log(n)/log(k+1) + 2)``.  See docs/scaling.md for the worked table.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.fd.heartbeat import DetectorBase
from repro.types import ProcessId, SiteId, ViewId

if TYPE_CHECKING:  # pragma: no cover
    from repro.vsync.stack import GroupStack


@dataclass(frozen=True)
class GossipEntry:
    """One site's liveness row as known by the digest's sender."""

    site: SiteId
    incarnation: int
    counter: int
    suspect: bool = False


@dataclass(frozen=True)
class GossipDigest:
    """The periodic liveness push.

    Like :class:`~repro.fd.heartbeat.Heartbeat` it carries the sender's
    view id and traffic positions (``last_seqno`` / ``eview_seq``) so
    the stack's in-view loss repair works identically under either
    plane; ``entries`` adds the sender's whole liveness table.
    """

    sender: ProcessId
    view_id: ViewId | None
    last_seqno: int = 0
    eview_seq: int = 0
    entries: tuple[GossipEntry, ...] = ()


class GossipDetector(DetectorBase):
    """Gossip-flavoured failure detector; same surface as the heartbeat
    detector, O(n·fanout) messages per interval instead of O(n²)."""

    def __init__(
        self,
        stack: "GroupStack",
        interval: float = 5.0,
        timeout: float = 16.0,
        fanout: int = 3,
    ) -> None:
        super().__init__(stack, interval=interval, timeout=timeout)
        if fanout < 1:
            raise ValueError(f"gossip fanout must be >= 1, got {fanout}")
        self.fanout = fanout
        # Liveness table: site -> (incarnation, counter).  Own counter
        # advances once per beat; peers' rows advance as digests arrive.
        self._counters: dict[SiteId, tuple[int, int]] = {}
        self._counter = 0
        self._last_refute = -1e18
        # Peer sampling is detector-local and seeded from the process
        # identifier, so a run is reproducible without threading the
        # cluster seed through the stack.
        self._rng = random.Random(
            (stack.pid.site << 20) ^ (stack.pid.incarnation << 4) ^ 0x9E3779B9
        )
        self.digests_sent = 0

    # -- sending ----------------------------------------------------------

    def _targets(self) -> list[SiteId]:
        own = self.stack.pid.site
        others = [s for s in self.stack.universe_sites() if s != own]
        if self.fanout >= len(others):
            return others  # degenerate all-to-all regime
        return self._rng.sample(others, self.fanout)

    def _beat(self) -> None:
        self._counter += 1
        self._push(self._targets())

    def _push(self, targets: list[SiteId]) -> None:
        if not targets:
            return
        digest = GossipDigest(
            self.stack.pid,
            self.stack.current_view_id(),
            last_seqno=self.stack.channels.own_seqno(),
            eview_seq=self.stack.evs.applied_seq,
            entries=self._make_entries(),
        )
        self.stack.send_sites(targets, digest)
        self.digests_sent += len(targets)
        obs = self.stack.obs
        if obs is not None:
            obs.gossip_digest_sent(self.stack.pid, len(targets))

    def _make_entries(self) -> tuple[GossipEntry, ...]:
        own = self.stack.pid
        now = self.stack.now
        entries = [GossipEntry(own.site, own.incarnation, self._counter, False)]
        for site, (incarnation, counter) in self._counters.items():
            if site == own.site:
                continue
            heard = self._last_heard.get(site)
            suspect = heard is None or now - heard[0] > self.timeout
            entries.append(GossipEntry(site, incarnation, counter, suspect))
        return tuple(entries)

    # -- receiving --------------------------------------------------------

    def on_digest(self, src: ProcessId, digest: GossipDigest) -> None:
        super().on_digest(src, digest)
        if self.fanout >= self.stack.universe_size() - 1:
            # Degenerate all-to-all regime: every site hears every other
            # directly each interval, so indirect evidence adds nothing
            # in steady state — and across a partition heal it *would*
            # fire (the far side's counters advanced during the cut),
            # breaking bit-for-bit equivalence with the heartbeat plane.
            # Direct evidence only, exactly like a heartbeat.
            return
        own = self.stack.pid
        refute = False
        for entry in digest.entries:
            if entry.site == own.site:
                if entry.suspect and entry.incarnation == own.incarnation:
                    refute = True
                continue
            key = (entry.incarnation, entry.counter)
            cur = self._counters.get(entry.site)
            if cur is not None and key <= cur:
                continue
            self._counters[entry.site] = key
            if entry.site != src.site and not entry.suspect:
                # Indirect evidence: a strictly fresher counter proves
                # the named site beat recently enough for the update to
                # gossip here.  Never fires in the degenerate full-fanout
                # regime — the origin's own digest always lands first.
                self._note_indirect(entry.site, entry.incarnation)
        if refute:
            self._refute()

    def _note_indirect(self, site: SiteId, incarnation: int) -> None:
        prev = self._last_heard.get(site)
        if prev is not None and prev[1].incarnation > incarnation:
            return  # stale incarnation; ignore
        if prev is not None and prev[1].incarnation == incarnation:
            pid = prev[1]  # reuse: keeps identity-based fast paths hot
        else:
            pid = ProcessId(site, incarnation)
        self._last_heard[site] = (self.stack.scheduler.now, pid)
        if self._reachable_incs.get(site) != incarnation:
            self._refresh()

    def _refute(self) -> None:
        """SWIM refutation: we are being suspected under our live
        incarnation — push a fresh counter immediately so the rumor dies
        in one epidemic round.  Suppressed at full fanout, where every
        peer already hears us directly each interval (and where the
        extra send would break bit-for-bit equivalence with the
        heartbeat plane)."""
        if self.fanout >= self.stack.universe_size() - 1:
            return
        now = self.stack.now
        if now - self._last_refute < self.interval:
            return
        self._last_refute = now
        self._counter += 1
        self._push(self._targets())
