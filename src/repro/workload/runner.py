"""One harness, two runtimes: checked workload runs over any cluster.

:func:`run_checked_workload` is the runtime-agnostic successor of the
simulator-only ``run_with_schedule`` flow: it drives an already-built
:class:`~repro.ports.ClusterPort` — simulated or real-network — through
a scenario-unit :class:`~repro.net.faults.FaultSchedule` and a mix of
workload clients, settles, gathers the (merged) trace and runs the
paper's property checks over it.  The CLI's ``run``/``check`` commands,
the realnet workload smoke tests and the sim-vs-realnet bench all call
this one function; none of them name a concrete cluster class.

Every duration parameter is in scenario units; the harness converts via
the cluster's :attr:`~repro.ports.ClusterPort.time_scale`, so the same
call is a 650-virtual-unit simulated run or a ~6.5-wall-second loopback
run.  The cluster is *not* closed here — the caller owns its lifetime
(and may want stats or more traffic afterwards).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.net.faults import FaultSchedule
from repro.obs.tracing import dump_on_violations
from repro.ports import ClusterPort
from repro.trace.checks import CheckReport, check_cluster
from repro.trace.recorder import TraceRecorder

#: Build a workload driver for a cluster (e.g. ``MulticastClient``).
ClientFactory = Callable[[ClusterPort], Any]


@dataclass
class WorkloadReport:
    """Everything a checked workload run produced."""

    runtime_now: float  # backend time when the run finished
    settled: bool
    schedule_actions: int
    horizon: float  # scenario units, including the settle tail
    trace: TraceRecorder
    reports: list[CheckReport] = field(default_factory=list)
    clients: list[Any] = field(default_factory=list)
    check_wall_s: float = 0.0
    #: MetricsSnapshot taken after the checks (None when the backend
    #: predates the metrics surface) — every checked workload gets a
    #: metrics artifact alongside its trace.
    metrics: Any = None

    @property
    def events_checked(self) -> int:
        return sum(r.checked for r in self.reports)

    @property
    def violations(self) -> list[str]:
        return [v for r in self.reports for v in r.violations]

    @property
    def ok(self) -> bool:
        return self.settled and not self.violations


def run_checked_workload(
    cluster: ClusterPort,
    schedule: FaultSchedule | None = None,
    client_factories: Sequence[ClientFactory] = (),
    *,
    tail: float = 250.0,
    settle_timeout: float = 600.0,
    settle_poll: float = 10.0,
    enriched: bool = True,
) -> WorkloadReport:
    """Run ``schedule`` + clients on ``cluster``, settle, check, report.

    The flow, identical on both runtimes:

    1. start one client per factory (ticks arm on the cluster's own
       scheduler, paced by ``time_scale``);
    2. arm the fault schedule (scenario units, relative to now);
    3. let ``schedule.horizon + tail`` scenario units elapse;
    4. stop the clients and wait up to ``settle_timeout`` scenario
       units for membership to converge;
    5. gather the trace — the simulator's shared recorder, or the
       realnet per-node recorders merged — and run the Section 2
       view-synchrony checks (plus the Section 6 enriched-view checks
       unless ``enriched=False``).
    """
    scale = cluster.time_scale
    schedule = schedule if schedule is not None else FaultSchedule()
    clients = [factory(cluster) for factory in client_factories]
    for client in clients:
        client.start()
    cluster.arm(schedule)
    cluster.run_for((schedule.horizon + tail) * scale)
    for client in clients:
        client.stop()
    settled = cluster.settle(
        timeout=settle_timeout * scale, poll=settle_poll * scale
    )
    t0 = time.perf_counter()
    trace = cluster.gather_trace()
    reports = check_cluster(cluster, enriched=enriched, trace=trace)
    check_wall = time.perf_counter() - t0
    snap_fn = getattr(cluster, "metrics_snapshot", None)
    metrics = snap_fn() if callable(snap_fn) else None
    report = WorkloadReport(
        runtime_now=cluster.now,
        settled=settled,
        schedule_actions=len(schedule.actions),
        horizon=schedule.horizon + tail,
        trace=trace,
        reports=reports,
        clients=clients,
        check_wall_s=check_wall,
        metrics=metrics,
    )
    # Black box: a tripped checker freezes each flight recorder's recent
    # causal history to disk (no-op when tracing is off).
    dump_on_violations(cluster, report.violations)
    return report


@dataclass
class ClientLoadReport:
    """A checked run under open-loop client load.

    Bundles the usual :class:`WorkloadReport` (trace, property checks,
    metrics) with what the load generator measured
    (:class:`~repro.workload.openloop.LoadReport`) and the SLO verdict
    derived from the cluster's latency histograms.
    """

    workload: WorkloadReport
    load: Any  # repro.workload.openloop.LoadReport
    verdict: Any  # repro.workload.openloop.SloVerdict

    @property
    def ok(self) -> bool:
        return self.workload.ok and self.load.completed > 0


def run_client_load(
    cluster: ClusterPort,
    spec: Any,
    schedule: FaultSchedule | None = None,
    *,
    tail: float = 250.0,
    settle_timeout: float = 600.0,
    settle_poll: float = 10.0,
    slo_p99: float = 50.0,
    checkers: Sequence[str] | None = ("AckedWriteLoss",),
    enriched: bool = True,
) -> ClientLoadReport:
    """Open-loop client load plus a fault schedule, then the checks.

    The client-tier sibling of :func:`run_checked_workload`: instead of
    closed-loop workload drivers it runs an
    :class:`~repro.workload.openloop.OpenLoopLoad` with ``spec``
    (**backend-time** rate/duration, like the spec itself) against an
    armed scenario-unit fault schedule, settles, and checks the merged
    trace — the paper's property checks plus the named fuzz checkers
    (by default ``AckedWriteLoss``: no write acked to a client may
    vanish across the run's partitions and settlements).  ``slo_p99``
    is in scenario units and converted via ``time_scale``, like every
    other duration here.

    The load starts against a *formed* group (an initial settle), so
    the latency histograms price faults, not bootstrap.
    """
    from repro.fuzz.checkers import CheckContext, make_checkers, run_checkers
    from repro.workload.openloop import OpenLoopLoad, slo_verdict

    scale = cluster.time_scale
    schedule = schedule if schedule is not None else FaultSchedule()
    cluster.settle(timeout=settle_timeout * scale, poll=settle_poll * scale)
    start = cluster.now
    cluster.arm(schedule)
    load_report = OpenLoopLoad(cluster, spec).run()
    # The load grid may end before the fault horizon does; let the rest
    # of the schedule (plus the settle tail) play out before checking.
    remaining = start + schedule.horizon * scale - cluster.now
    cluster.run_for(max(0.0, remaining) + tail * scale)
    settled = cluster.settle(
        timeout=settle_timeout * scale, poll=settle_poll * scale
    )
    t0 = time.perf_counter()
    trace = cluster.gather_trace()
    reports = check_cluster(cluster, enriched=enriched, trace=trace)
    if checkers:
        reports += run_checkers(
            trace, make_checkers(checkers), CheckContext(time_scale=scale)
        )
    check_wall = time.perf_counter() - t0
    snap_fn = getattr(cluster, "metrics_snapshot", None)
    metrics = snap_fn() if callable(snap_fn) else None
    workload = WorkloadReport(
        runtime_now=cluster.now,
        settled=settled,
        schedule_actions=len(schedule.actions),
        horizon=schedule.horizon + tail,
        trace=trace,
        reports=reports,
        check_wall_s=check_wall,
        metrics=metrics,
    )
    dump_on_violations(cluster, workload.violations)
    return ClientLoadReport(
        workload=workload,
        load=load_report,
        verdict=slo_verdict(cluster, slo_p99 * scale),
    )
