"""One harness, two runtimes: checked workload runs over any cluster.

:func:`run_checked_workload` is the runtime-agnostic successor of the
simulator-only ``run_with_schedule`` flow: it drives an already-built
:class:`~repro.ports.ClusterPort` — simulated or real-network — through
a scenario-unit :class:`~repro.net.faults.FaultSchedule` and a mix of
workload clients, settles, gathers the (merged) trace and runs the
paper's property checks over it.  The CLI's ``run``/``check`` commands,
the realnet workload smoke tests and the sim-vs-realnet bench all call
this one function; none of them name a concrete cluster class.

Every duration parameter is in scenario units; the harness converts via
the cluster's :attr:`~repro.ports.ClusterPort.time_scale`, so the same
call is a 650-virtual-unit simulated run or a ~6.5-wall-second loopback
run.  The cluster is *not* closed here — the caller owns its lifetime
(and may want stats or more traffic afterwards).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.net.faults import FaultSchedule
from repro.ports import ClusterPort
from repro.trace.checks import CheckReport, check_cluster
from repro.trace.recorder import TraceRecorder

#: Build a workload driver for a cluster (e.g. ``MulticastClient``).
ClientFactory = Callable[[ClusterPort], Any]


@dataclass
class WorkloadReport:
    """Everything a checked workload run produced."""

    runtime_now: float  # backend time when the run finished
    settled: bool
    schedule_actions: int
    horizon: float  # scenario units, including the settle tail
    trace: TraceRecorder
    reports: list[CheckReport] = field(default_factory=list)
    clients: list[Any] = field(default_factory=list)
    check_wall_s: float = 0.0
    #: MetricsSnapshot taken after the checks (None when the backend
    #: predates the metrics surface) — every checked workload gets a
    #: metrics artifact alongside its trace.
    metrics: Any = None

    @property
    def events_checked(self) -> int:
        return sum(r.checked for r in self.reports)

    @property
    def violations(self) -> list[str]:
        return [v for r in self.reports for v in r.violations]

    @property
    def ok(self) -> bool:
        return self.settled and not self.violations


def run_checked_workload(
    cluster: ClusterPort,
    schedule: FaultSchedule | None = None,
    client_factories: Sequence[ClientFactory] = (),
    *,
    tail: float = 250.0,
    settle_timeout: float = 600.0,
    settle_poll: float = 10.0,
    enriched: bool = True,
) -> WorkloadReport:
    """Run ``schedule`` + clients on ``cluster``, settle, check, report.

    The flow, identical on both runtimes:

    1. start one client per factory (ticks arm on the cluster's own
       scheduler, paced by ``time_scale``);
    2. arm the fault schedule (scenario units, relative to now);
    3. let ``schedule.horizon + tail`` scenario units elapse;
    4. stop the clients and wait up to ``settle_timeout`` scenario
       units for membership to converge;
    5. gather the trace — the simulator's shared recorder, or the
       realnet per-node recorders merged — and run the Section 2
       view-synchrony checks (plus the Section 6 enriched-view checks
       unless ``enriched=False``).
    """
    scale = cluster.time_scale
    schedule = schedule if schedule is not None else FaultSchedule()
    clients = [factory(cluster) for factory in client_factories]
    for client in clients:
        client.start()
    cluster.arm(schedule)
    cluster.run_for((schedule.horizon + tail) * scale)
    for client in clients:
        client.stop()
    settled = cluster.settle(
        timeout=settle_timeout * scale, poll=settle_poll * scale
    )
    t0 = time.perf_counter()
    trace = cluster.gather_trace()
    reports = check_cluster(cluster, enriched=enriched, trace=trace)
    check_wall = time.perf_counter() - t0
    snap_fn = getattr(cluster, "metrics_snapshot", None)
    metrics = snap_fn() if callable(snap_fn) else None
    return WorkloadReport(
        runtime_now=cluster.now,
        settled=settled,
        schedule_actions=len(schedule.actions),
        horizon=schedule.horizon + tail,
        trace=trace,
        reports=reports,
        clients=clients,
        check_wall_s=check_wall,
        metrics=metrics,
    )
